"""Bench: regenerate Fig. 5 (sampling-method comparison).

Paper shape: Node_Merchant / Two_sides / Random_Edge bagging perform
similarly (the stability claim), Node_PIN_Bagging is worst.

Reproduced here: all four variants detect far above chance, and the
merchant/edge/two-side trio stays within a band — the stability claim.

**Documented deviation** (see EXPERIMENTS.md): in our synthetic regime
PIN-side bagging does *not* collapse. A sampled user keeps every one of its
edges, so PIN-sampled fraud fragments stay dense whenever fraud users have
in-block degree ≫ 1 — and φ-detectability itself requires exactly that.
The paper's PIN collapse is therefore a property of the proprietary JD
topology (their §IV-A3 premise is ``Davg(U) ∼ 1``) that no φ-detectable
planted-block surrogate can reproduce mechanically; we assert the robust
subset and report the full ordering.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment
from repro.metrics import CurvePoint, best_f1


def test_fig5_sampling_methods(benchmark, scale, preset):
    result = run_once(benchmark, get_experiment("fig5").run, scale=scale, seed=0)

    curves = defaultdict(list)
    for row in result.rows:
        curves[row["sampler"]].append(
            CurvePoint(
                threshold=row["threshold"],
                n_detected=row["n_detected"],
                precision=row["precision"],
                recall=row["recall"],
                f1=row["f1"],
            )
        )
    f1 = {sampler: best_f1(points).f1 for sampler, points in curves.items()}
    assert len(f1) == 4

    # every variant detects far above chance (chance F1 is ~2x the fraud rate,
    # i.e. ~0.05 here)
    for sampler, value in f1.items():
        assert value > 0.15, (sampler, f1)

    # the paper's stability claim: merchant-side, random-edge and two-side
    # bagging land in a comparable band
    trio = [f1["node_merchant_bagging"], f1["random_edge_bagging"], f1["two_sides_bagging"]]
    assert max(trio) - min(trio) < 0.25, f1

    print()
    print("best F1 per sampling method (paper ordering: node_pin worst — see EXPERIMENTS.md):")
    for sampler, value in sorted(f1.items(), key=lambda kv: -kv[1]):
        print(f"  {sampler}: {value:.4f}")
