"""Bench: zero-copy ensemble fan-out vs the eager pickled-subgraph pipeline.

At ``N = 80`` on jd-like data (jd1), measures for the process backend:

* **transfer bytes** — what the parent pickles into the workers: whole
  sampled subgraphs per chunk (eager) vs one ~100-byte segment layout plus
  the compact per-member :class:`~repro.sampling.SamplePlan` arrays
  (zero-copy). The plan path must ship **≥5x** fewer bytes.
* **peak RSS** — each pipeline runs one full fit in a fresh subprocess so
  ``ru_maxrss`` (self + children) is a per-scenario high-water mark; the
  zero-copy fit must peak measurably lower (eager materializes all N
  subgraphs in the parent before detection starts).
* **wall-clock** of the two fits, for the committed record.
* **hygiene** — no ``repro_gs_*`` shared-memory segment survives the fit.

Pass/fail compares plan-vs-eager measured on the *same* host in the same
run; the committed baseline (``baselines/shm_fanout.json``) records the
reference host's numbers so drifts show up in review. Regenerate it with::

    python benchmarks/bench_shm_fanout.py --update
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, _HERE)

from conftest import run_once  # noqa: E402 - after the path setup, like check_regression

BASELINE_PATH = os.path.join(_HERE, "baselines", "shm_fanout.json")

N_SAMPLES = 80
SAMPLE_RATIO = 0.1
#: jd1 at 5x of its 1/50-scale recipe ≈ 100k edges — big enough that the
#: eager pipeline's N resident subgraphs dominate the parent's footprint
DATASET_SCALE = 5.0
WORKERS = 2
SEED = 0

_SCENARIO = r"""
import json, resource, sys
from repro.datasets import make_jd_dataset
from repro.ensemble import EnsemFDet, EnsemFDetConfig
from repro.ensemble.runner import detect_on_samples
from repro.ensemble.voting import VoteTable
from repro.fdet import FdetConfig
from repro.parallel import ExecutorMode, Timer, peak_rss_bytes
from repro.sampling import RandomEdgeSampler, resolve_rng

pipeline, n_samples, ratio, dataset_scale, workers, seed = (
    sys.argv[1], int(sys.argv[2]), float(sys.argv[3]), float(sys.argv[4]),
    int(sys.argv[5]), int(sys.argv[6]),
)
graph = make_jd_dataset(1, scale=dataset_scale, seed=seed).graph
config = EnsemFDetConfig(
    sampler=RandomEdgeSampler(ratio), n_samples=n_samples,
    fdet=FdetConfig(max_blocks=8), executor=ExecutorMode.PROCESS,
    n_workers=workers, seed=seed,
)
with Timer() as timer:
    if pipeline == "plan":
        result = EnsemFDet(config).fit(graph)
        votes = result.vote_table.user_votes
    else:  # the historical eager pipeline: materialize everything up front
        rng = resolve_rng(config.seed)
        samples = config.sampler.sample_many(graph, config.n_samples, rng)
        detections = detect_on_samples(
            samples, config.fdet, mode=config.executor, n_workers=workers)
        votes = VoteTable.from_detections(
            [d.result.detected_users().tolist() for d in detections],
            [d.result.detected_merchants().tolist() for d in detections],
        ).user_votes
print(json.dumps({
    "wall_sec": timer.elapsed,
    "parent_rss_bytes": peak_rss_bytes(),
    "worker_rss_bytes": peak_rss_bytes(include_children=True),
    "vote_fingerprint": sorted(votes.items())[:50],
}))
"""


def run_scenario(pipeline: str) -> dict:
    """One full fit in a fresh subprocess; returns its wall/RSS record."""
    env = dict(os.environ)
    src = os.path.join(_HERE, "..", "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
    env["REPRO_WORKERS"] = str(WORKERS)
    out = subprocess.run(
        [
            sys.executable, "-c", _SCENARIO, pipeline,
            str(N_SAMPLES), str(SAMPLE_RATIO), str(DATASET_SCALE),
            str(WORKERS), str(SEED),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def measure_transfer_bytes() -> dict:
    """Pickled parent→worker payload bytes of both pipelines (same fit)."""
    from repro.datasets import make_jd_dataset
    from repro.ensemble.runner import _chunked
    from repro.fdet import FdetConfig
    from repro.graph import GraphStore
    from repro.sampling import RandomEdgeSampler, resolve_rng

    graph = make_jd_dataset(1, scale=DATASET_SCALE, seed=SEED).graph
    config = FdetConfig(max_blocks=8)
    sampler = RandomEdgeSampler(SAMPLE_RATIO)

    samples = sampler.sample_many(graph, N_SAMPLES, resolve_rng(SEED))
    eager = sum(
        len(pickle.dumps((config, chunk, False)))
        for chunk in _chunked(samples, WORKERS)
    )

    plans = sampler.plan_many(graph, N_SAMPLES, resolve_rng(SEED))
    shared = GraphStore.from_graph(graph).export_shared()
    try:
        plan = sum(
            len(pickle.dumps((shared.layout, config, chunk, False)))
            for chunk in _chunked(plans, WORKERS)
        )
    finally:
        shared.dispose()
    return {
        "n_edges": graph.n_edges,
        "eager_bytes": eager,
        "plan_bytes": plan,
        "ratio": eager / plan,
    }


def leaked_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith("repro_gs_")]


def measure() -> dict:
    transfer = measure_transfer_bytes()
    eager = run_scenario("eager")
    plan = run_scenario("plan")
    assert plan["vote_fingerprint"] == eager["vote_fingerprint"], (
        "plan-based fit diverged from the eager pipeline"
    )
    keys = ("wall_sec", "parent_rss_bytes", "worker_rss_bytes")
    return {
        "n_samples": N_SAMPLES,
        "sample_ratio": SAMPLE_RATIO,
        "dataset_scale": DATASET_SCALE,
        "workers": WORKERS,
        "transfer": transfer,
        "eager": {k: eager[k] for k in keys},
        "plan": {k: plan[k] for k in keys},
    }


def test_shm_fanout(benchmark):
    stats = run_once(benchmark, measure)
    transfer = stats["transfer"]

    # the headline acceptance: ≥5x fewer parent→worker bytes
    assert transfer["ratio"] >= 5.0, transfer

    # the parent must peak measurably lower: it no longer materializes all
    # N subgraphs before (and keeps them across) the detection stage
    assert stats["plan"]["parent_rss_bytes"] < stats["eager"]["parent_rss_bytes"], stats

    # the fit's shared segment must not survive it
    assert leaked_segments() == []

    print()
    print(
        f"transfer bytes  eager={transfer['eager_bytes']:>12,}  "
        f"plan={transfer['plan_bytes']:>12,}  ({transfer['ratio']:.1f}x smaller)"
    )
    for name in ("eager", "plan"):
        row = stats[name]
        print(
            f"{name:<6} wall={row['wall_sec']:.2f}s  "
            f"parent_rss={row['parent_rss_bytes'] / 1e6:.1f} MB  "
            f"worker_rss={row['worker_rss_bytes'] / 1e6:.1f} MB"
        )
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as handle:
            print(f"committed baseline: {json.load(handle)['transfer']}")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    args = parser.parse_args(argv)
    stats = measure()
    print(json.dumps(stats, indent=2))
    if args.update:
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        stats["meta"] = {"cpu_count": os.cpu_count()}
        with open(BASELINE_PATH, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(_HERE, "..", "src"))
    sys.exit(main())
