"""Bench: the paper's *stability* claim, quantified across seeds.

§V concludes EnsemFDet is "effective, practical, scalable and stable". The
parameter sweeps (Figs. 7–9) cover stability across N/S/T; this bench covers
the remaining axis — randomness of the sampling itself: independent seeds
must produce strongly-overlapping detections and a tight best-F1 band.
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets import make_jd_dataset
from repro.ensemble import EnsemFDetConfig
from repro.fdet import FdetConfig
from repro.metrics import seed_sweep_stability
from repro.sampling import RandomEdgeSampler


def test_stability_across_seeds(benchmark, preset):
    dataset = make_jd_dataset(1, scale=preset.dataset_scale, seed=0)
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(preset.sample_ratio),
        n_samples=preset.n_samples,
        fdet=FdetConfig(max_blocks=preset.max_blocks),
        executor="process",
    )
    summary = run_once(
        benchmark,
        seed_sweep_stability,
        dataset.graph,
        dataset.blacklist,
        config,
        seeds=[1, 2, 3, 4],
        threshold=max(1, preset.n_samples // 4),
    )
    # detections overlap strongly across seeds, and quality stays in a band
    assert summary["detection_jaccard"] > 0.5, summary
    assert summary["f1_spread"] < 0.15, summary
    print()
    print(f"seed stability: jaccard={summary['detection_jaccard']:.3f} "
          f"f1_mean={summary['f1_mean']:.3f} f1_spread={summary['f1_spread']:.3f}")
