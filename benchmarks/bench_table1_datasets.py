"""Bench: regenerate Table I (dataset statistics)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import get_experiment


def test_table1_dataset_statistics(benchmark, scale):
    result = run_once(benchmark, get_experiment("table1").run, scale=scale, seed=0)
    rows = {row["dataset"].split("@")[0]: row for row in result.rows}

    # Table I shape: dataset sizes ordered jd1 < jd2 < jd3 in users and edges
    assert rows["jd1"]["node_pin"] < rows["jd2"]["node_pin"] < rows["jd3"]["node_pin"]
    assert rows["jd1"]["edge"] < rows["jd2"]["edge"] < rows["jd3"]["edge"]

    # fraud-fraction ordering mirrors the paper: jd1 (5.3%) > jd3 (2.3%) > jd2 (0.7%)
    fraction = {
        name: row["fraud_pin"] / row["node_pin"] for name, row in rows.items()
    }
    assert fraction["jd1"] > fraction["jd3"] > fraction["jd2"]

    print()
    print(result.render())
