"""Ablation: FDET edge-weight policy — refresh vs frozen (DESIGN.md §5).

``refresh`` recomputes ``1/log(d_j + c)`` on the residual graph before every
block; ``frozen`` keeps the original graph's degrees. Both are timed and
scored; the bench asserts they stay in the same quality band (the choice is
a convention, not a cliff) and reports the timing difference.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_jd_dataset
from repro.fdet import Fdet, FdetConfig, WeightPolicy
from repro.metrics import detection_confusion
from repro.parallel import time_callable


@pytest.fixture(scope="module")
def dataset(preset):
    return make_jd_dataset(1, scale=preset.dataset_scale, seed=0)


@pytest.mark.parametrize("policy", [WeightPolicy.REFRESH, WeightPolicy.FROZEN])
def test_weight_policy(benchmark, dataset, preset, policy):
    detector = Fdet(FdetConfig(max_blocks=preset.max_blocks, weight_policy=policy))
    result = benchmark.pedantic(detector.detect, args=(dataset.graph,), rounds=1, iterations=1)

    confusion = detection_confusion(result.detected_users(), dataset.blacklist)
    # either policy must land detections far above chance
    chance = len(dataset.blacklist) / dataset.graph.n_users
    assert confusion.precision > 3 * chance, (policy, confusion.as_row())

    print()
    print(f"{policy}: k_hat={result.k_hat} blocks={len(result.all_blocks)} "
          f"P={confusion.precision:.3f} R={confusion.recall:.3f} F1={confusion.f1:.3f}")


def test_policies_land_in_same_band(dataset, preset):
    scores = {}
    for policy in WeightPolicy.ALL:
        detector = Fdet(FdetConfig(max_blocks=preset.max_blocks, weight_policy=policy))
        timing = time_callable(detector.detect, dataset.graph)
        confusion = detection_confusion(timing.value.detected_users(), dataset.blacklist)
        scores[policy] = confusion.f1
    assert abs(scores[WeightPolicy.REFRESH] - scores[WeightPolicy.FROZEN]) < 0.25, scores
