"""Bench: regenerate Table III (EnsemFDet vs Fraudar wall-clock + peak RSS).

Paper shape asserted: on the largest dataset the parallel ensemble beats
sequential Fraudar; both runtimes grow with dataset size. (The paper's 10x
needs its 1/50-larger graphs — at bench scale the pool overhead eats part
of the win; the ratio must still exceed 1 on the biggest dataset.)

Each row also reports the process tree's high-water RSS (``peak_rss_mb``,
monotonic across rows) so a memory regression in the detection stack shows
up here even when wall-clock stays flat.

The win comes from parallelising the ``N`` FDET runs, so it cannot
materialise on a single-core host (the ensemble then pays sampling plus
pool overhead on top of the same serial work): there the assertion is
downgraded to a logged warning instead of failing the whole bench run.
"""

from __future__ import annotations

import warnings

import pytest
from conftest import run_once

from repro.experiments import get_experiment
from repro.fdet import PeelEngine
from repro.parallel import default_workers


@pytest.mark.parametrize("engine", PeelEngine.ALL)
def test_table3_timing(benchmark, scale, engine):
    result = run_once(benchmark, get_experiment("table3").run, scale=scale, seed=0, engine=engine)
    rows = {row["dataset"].split("@")[0]: row for row in result.rows}

    # runtimes grow with dataset size for the sequential baseline
    assert rows["jd1"]["fraudar_sec"] < rows["jd3"]["fraudar_sec"]

    # every row carries the memory column (monotonic high-water > 0)
    assert all(row["peak_rss_mb"] > 0 for row in result.rows)

    # the ensemble wins on the largest dataset — but only parallel hardware
    # can deliver the win; on one core (or REPRO_WORKERS=1) just report it
    if default_workers() > 1:
        assert rows["jd3"]["speedup"] > 1.0, rows["jd3"]
    elif rows["jd3"]["speedup"] <= 1.0:
        warnings.warn(
            "single-core host: ensemble-vs-Fraudar speedup assertion skipped "
            f"(measured {rows['jd3']['speedup']}x on jd3)",
            stacklevel=1,
        )

    print()
    print(result.render())
    print(f"meta: {result.meta}")
