"""Bench: scoring-server load — ingest throughput and query latency.

Boots a real :class:`~repro.serve.ScoringServer` (asyncio HTTP, in a
thread) over a windowed detector at guard scale and measures the two
numbers the serving layer promises:

* **ingest throughput** — streaming edge batches through ``POST /ingest``
  (JSON over loopback, snapshot swap included) must sustain at least
  **1,000 edges/second**;
* **query latency** — ``GET /score/{u}`` and ``GET /top?k=K`` answered
  from the immutable snapshot must keep **p99 under 50 ms**, measured
  over a keep-alive connection while the server is warm.

Run standalone to (re)record the committed baseline::

    python benchmarks/bench_serve_load.py --update   # rewrite baselines/serve_load.json
    python benchmarks/bench_serve_load.py --check    # measure and gate (perf guard)
    python benchmarks/bench_serve_load.py            # measure and print

``check_regression.py --fast`` additionally compares the flattened
guard timings (seconds per 1k ingested edges, query p99 seconds) against
the committed baseline, so a silent serialisation or snapshot-capture
regression fails tier-1.
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH
    sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.datasets import chung_lu_bipartite
from repro.ensemble import EnsemFDetConfig, IncrementalEnsemFDet
from repro.fdet import FdetConfig
from repro.graph import GraphAccumulator, WindowConfig
from repro.sampling import StableEdgeSampler
from repro.serve import DetectionService, start_server_in_thread

BASELINE = os.path.join(_HERE, "baselines", "serve_load.json")

#: guard scale — the bench_window world, streamed over HTTP
GUARD = {
    "n_users": 6_000,
    "n_merchants": 2_400,
    "background_edges": 40_960,
    "batch_edges": 2_048,
    "n_batches": 10,
    "n_queries": 400,
    "top_k": 50,
    "window_batches": 20,
}

MIN_EDGES_PER_SECOND = 1_000.0
MAX_P99_SECONDS = 0.050

#: latency floor for the ratio guard: loopback p99s of a few ms are all
#: "fast enough", and their run-to-run ratios are pure noise — only a
#: drift above this floor is worth comparing against the baseline
GUARD_FLOOR_SECONDS = 0.005


def build_config() -> EnsemFDetConfig:
    return EnsemFDetConfig(
        sampler=StableEdgeSampler(0.1, stripe=1_024),
        n_samples=40,
        fdet=FdetConfig(max_blocks=15),
        executor="serial",
        seed=7,
    )


def _boot(case: dict):
    pool = chung_lu_bipartite(
        case["n_users"],
        case["n_merchants"],
        case["background_edges"] + case["n_batches"] * case["batch_edges"],
        rng=0,
    )
    users = pool.user_labels[pool.edge_users]
    merchants = pool.merchant_labels[pool.edge_merchants]
    n_bg = case["background_edges"]
    seed_acc = GraphAccumulator()
    seed_acc.append(users[:n_bg], merchants[:n_bg])
    detector = IncrementalEnsemFDet(
        build_config(), window=WindowConfig(max_batches=case["window_batches"])
    )
    detector.fit(seed_acc.graph(), timestamp=0.0)
    handle = start_server_in_thread(DetectionService(detector))
    batches = []
    for k in range(case["n_batches"]):
        lo = n_bg + k * case["batch_edges"]
        hi = lo + case["batch_edges"]
        batches.append((users[lo:hi], merchants[lo:hi]))
    return handle, batches


def _request(connection: http.client.HTTPConnection, method: str, path: str, payload=None):
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    headers = {"Content-Type": "application/json"} if body else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    if response.status != 200:
        raise RuntimeError(f"{method} {path} -> {response.status}: {data[:200]!r}")
    return json.loads(data)


def measure(case: dict = GUARD) -> dict:
    handle, batches = _boot(case)
    connection = http.client.HTTPConnection(handle.host, handle.port, timeout=120)
    try:
        # ---- ingest phase: stream every batch through POST /ingest ----
        started = time.perf_counter()
        for k, (users, merchants) in enumerate(batches, start=1):
            _request(
                connection,
                "POST",
                "/ingest",
                {
                    "users": users.tolist(),
                    "merchants": merchants.tolist(),
                    "timestamp": float(k),
                },
            )
        ingest_seconds = time.perf_counter() - started
        edges_streamed = case["n_batches"] * case["batch_edges"]

        # ---- query phase: warm keep-alive reads from the snapshot ----
        snapshot = handle.server.service.snapshot
        rng = np.random.default_rng(1)
        labels = rng.choice(snapshot.user_labels, size=case["n_queries"])
        score_latencies, top_latencies = [], []
        for label in labels.tolist():
            started = time.perf_counter()
            _request(connection, "GET", f"/score/{label}")
            score_latencies.append(time.perf_counter() - started)
            started = time.perf_counter()
            _request(connection, "GET", f"/top?k={case['top_k']}")
            top_latencies.append(time.perf_counter() - started)

        stats = handle.server.service.stats()
        return {
            "ingest": {
                "n_batches": case["n_batches"],
                "batch_edges": case["batch_edges"],
                "edges_streamed": edges_streamed,
                "edges_expired": stats.edges_expired,
                "seconds": round(ingest_seconds, 4),
                "edges_per_second": round(edges_streamed / max(ingest_seconds, 1e-9)),
                "seconds_per_1k_edges": round(
                    ingest_seconds / (edges_streamed / 1_000.0), 6
                ),
                "final_snapshot_version": handle.server.service.snapshot.version,
            },
            "query": {
                "n_queries": case["n_queries"],
                "top_k": case["top_k"],
                "score_p50_ms": _percentile_ms(score_latencies, 50),
                "score_p99_ms": _percentile_ms(score_latencies, 99),
                "top_p50_ms": _percentile_ms(top_latencies, 50),
                "top_p99_ms": _percentile_ms(top_latencies, 99),
            },
        }
    finally:
        connection.close()
        handle.stop()


def _percentile_ms(latencies: list[float], q: int) -> float:
    return round(float(np.percentile(np.asarray(latencies), q)) * 1_000.0, 3)


def guard_timings(stats: dict) -> dict[str, float]:
    """Flatten stats into lower-is-better seconds for the ratio guard.

    Sub-floor latencies are clamped to :data:`GUARD_FLOOR_SECONDS` on both
    sides of the comparison, so millisecond jitter never trips the guard —
    only a real drift out of the "loopback-fast" regime does.
    """
    edges = stats["ingest"]["edges_streamed"]
    return {
        f"serve-ingest-per-1k@{edges}": max(
            stats["ingest"]["seconds_per_1k_edges"], GUARD_FLOOR_SECONDS
        ),
        f"serve-score-p99@{edges}": max(
            stats["query"]["score_p99_ms"] / 1_000.0, GUARD_FLOOR_SECONDS
        ),
        f"serve-top-p99@{edges}": max(
            stats["query"]["top_p99_ms"] / 1_000.0, GUARD_FLOOR_SECONDS
        ),
    }


def _gate(stats: dict) -> list[str]:
    """The absolute floors both the pytest hook and ``--check`` enforce."""
    failures = []
    if stats["ingest"]["edges_per_second"] < MIN_EDGES_PER_SECOND:
        failures.append(
            f"ingest sustained {stats['ingest']['edges_per_second']} edges/s, "
            f"below the {MIN_EDGES_PER_SECOND:.0f}/s floor"
        )
    for endpoint in ("score", "top"):
        p99 = stats["query"][f"{endpoint}_p99_ms"] / 1_000.0
        if p99 >= MAX_P99_SECONDS:
            failures.append(
                f"/{endpoint} p99 {p99 * 1000:.1f}ms breaches the "
                f"{MAX_P99_SECONDS * 1000:.0f}ms bound"
            )
    if stats["ingest"]["final_snapshot_version"] != stats["ingest"]["n_batches"] + 1:
        failures.append("not every ingested batch produced a snapshot swap")
    return failures


def test_serve_load_guard():
    stats = measure()
    print()
    for section, values in stats.items():
        print(f"  [{section}]")
        for key, value in values.items():
            print(f"    {key}: {value}")
    assert not _gate(stats), _gate(stats)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the committed baseline")
    parser.add_argument("--check", action="store_true", help="exit non-zero on any gate failure")
    args = parser.parse_args(argv)

    stats = measure()
    print(json.dumps(stats, indent=2))
    if args.update:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        payload = {"meta": {"cpu_count": os.cpu_count()}, **stats}
        with open(BASELINE, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {BASELINE}")
    failures = _gate(stats)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
