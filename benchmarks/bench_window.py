"""Bench: sliding-window throughput, bounded memory, and windowed speedup.

Two claims of the windowed refactor, measured on the same world size as
``bench_incremental``:

* **1% churn speedup** — after a ≤1% edge delta on a windowed detector,
  ``update`` must stay bit-identical to a cold ``EnsemFDet.fit_window``
  on the live window *and* beat it by at least **5x** at ``N = 40``
  (stripe-locality is preserved through the liveness overlay);
* **sliding steady state** — streaming ≥20 window steps through a full
  rolling window keeps the stored physical rows bounded (expiry +
  threshold compaction: never more than ``1/(1-compact_threshold)``
  times the live edges), while the vote table keeps matching the cold
  window fit.

Run standalone to (re)record the committed baseline::

    python benchmarks/bench_window.py --update   # rewrite baselines/window.json
    python benchmarks/bench_window.py --check    # measure and gate (perf guard)
    python benchmarks/bench_window.py            # measure and print
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH
    sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.datasets import chung_lu_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet
from repro.fdet import FdetConfig
from repro.graph import GraphAccumulator, WindowConfig
from repro.parallel import Timer, time_callable
from repro.sampling import StableEdgeSampler

BASELINE = os.path.join(_HERE, "baselines", "window.json")

N_USERS, N_MERCHANTS, N_EDGES = 6_000, 2_400, 40_960
STRIPE = 1_024
N_SAMPLES = 40
RATIO = 0.1
SEED = 7
DELTA_FRACTION = 0.01
MIN_SPEEDUP = 5.0

#: sliding phase: a full 20-slot window plus 5 steps of genuine expiry
WINDOW_BATCHES = 20
STEP_EDGES = 2_048
N_STEPS = 25
COMPACT_THRESHOLD = 0.5


def build_config() -> EnsemFDetConfig:
    return EnsemFDetConfig(
        sampler=StableEdgeSampler(RATIO, stripe=STRIPE),
        n_samples=N_SAMPLES,
        fdet=FdetConfig(max_blocks=15),
        executor="serial",
        seed=SEED,
    )


def _tables_match(cold, detector) -> bool:
    return cold.vote_table.user_votes == detector.vote_table.user_votes and (
        cold.vote_table.merchant_votes == detector.vote_table.merchant_votes
    )


def measure_churn_speedup() -> dict:
    """Windowed 1% delta: update vs cold ``fit_window``, bit-identical."""
    graph = chung_lu_bipartite(N_USERS, N_MERCHANTS, N_EDGES, rng=0)
    config = build_config()
    # window wide enough that the timed step sees churn, not expiry
    detector = IncrementalEnsemFDet(config, window=WindowConfig(max_batches=64))
    detector.fit(graph)

    n_delta = int(DELTA_FRACTION * graph.n_edges)
    rng = np.random.default_rng(SEED + 1)
    delta_users = rng.integers(0, N_USERS, n_delta)
    delta_merchants = rng.integers(0, N_MERCHANTS, n_delta)
    update = time_callable(detector.update, delta_users, delta_merchants)
    report = update.value

    cold = time_callable(EnsemFDet(config).fit_window, detector.window())
    speedup = cold.seconds / max(update.seconds, 1e-9)
    return {
        "n_live_edges": detector.window().n_live,
        "n_delta_edges": n_delta,
        "n_samples": N_SAMPLES,
        "n_refreshed": report.n_refreshed,
        "cold_fit_window_seconds": round(cold.seconds, 4),
        "update_seconds": round(update.seconds, 4),
        "speedup": round(speedup, 2),
        "identical_to_cold_fit": _tables_match(cold.value, detector),
    }


def measure_sliding() -> dict:
    """Stream N_STEPS slots through a WINDOW_BATCHES-slot rolling window."""
    pool = chung_lu_bipartite(N_USERS, N_MERCHANTS, N_STEPS * STEP_EDGES, rng=2)
    users = pool.user_labels[pool.edge_users]
    merchants = pool.merchant_labels[pool.edge_merchants]

    config = build_config()
    window = WindowConfig(
        max_batches=WINDOW_BATCHES, compact_threshold=COMPACT_THRESHOLD
    )
    detector = IncrementalEnsemFDet(config, window=window)
    seed_acc = GraphAccumulator()
    seed_acc.append(users[:STEP_EDGES], merchants[:STEP_EDGES])
    detector.fit(seed_acc.graph())

    stored_over_live = []
    memory_bounded = True
    n_expired = 0
    with Timer() as timer:
        for step in range(1, N_STEPS):
            lo, hi = step * STEP_EDGES, (step + 1) * STEP_EDGES
            report = detector.update(users[lo:hi], merchants[lo:hi])
            n_expired += report.n_expired_edges
            snapshot = detector.window()
            stored, live = snapshot.graph.n_edges, snapshot.n_live
            stored_over_live.append(round(stored / max(live, 1), 3))
            # the maybe_compact invariant: dead fraction never exceeds the
            # threshold once an update completes
            if stored > live / (1.0 - COMPACT_THRESHOLD) + 1:
                memory_bounded = False

    cold = EnsemFDet(config).fit_window(detector.window())
    edges_streamed = (N_STEPS - 1) * STEP_EDGES
    return {
        "n_steps": N_STEPS,
        "window_batches": WINDOW_BATCHES,
        "step_edges": STEP_EDGES,
        "n_expired_edges": n_expired,
        "final_live_edges": detector.window().n_live,
        "final_watermark": detector.window().watermark,
        "peak_stored_over_live": max(stored_over_live),
        "memory_bounded": memory_bounded,
        "stream_seconds": round(timer.elapsed, 4),
        "edges_per_second": round(edges_streamed / max(timer.elapsed, 1e-9)),
        "identical_to_cold_fit": _tables_match(cold, detector),
    }


def measure() -> dict:
    return {"churn": measure_churn_speedup(), "sliding": measure_sliding()}


def _gate(stats: dict) -> list[str]:
    """The assertions both the pytest hook and ``--check`` enforce."""
    churn, sliding = stats["churn"], stats["sliding"]
    failures = []
    if not churn["identical_to_cold_fit"]:
        failures.append("windowed update diverged from cold fit_window")
    if churn["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"1% churn speedup {churn['speedup']}x below the {MIN_SPEEDUP}x bar"
        )
    if churn["n_refreshed"] >= N_SAMPLES // 2:
        failures.append(
            f"1% churn refreshed {churn['n_refreshed']}/{N_SAMPLES} members"
        )
    if sliding["n_steps"] < 20:
        failures.append("sliding phase must cover at least 20 window steps")
    if not sliding["memory_bounded"]:
        failures.append("stored rows exceeded the compaction bound")
    if sliding["n_expired_edges"] == 0:
        failures.append("sliding phase never expired an edge")
    if not sliding["identical_to_cold_fit"]:
        failures.append("sliding window diverged from cold fit_window")
    return failures


def test_windowed_speedup_memory_and_identity():
    stats = measure()
    print()
    for section, values in stats.items():
        print(f"  [{section}]")
        for key, value in values.items():
            print(f"    {key}: {value}")
    assert not _gate(stats), _gate(stats)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the committed baseline")
    parser.add_argument("--check", action="store_true", help="exit non-zero on any gate failure")
    args = parser.parse_args(argv)

    stats = measure()
    print(json.dumps(stats, indent=2))
    if args.update:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        payload = {"meta": {"cpu_count": os.cpu_count()}, **stats}
        with open(BASELINE, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {BASELINE}")
    failures = _gate(stats)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
