"""Bench: regenerate Fig. 7 (impact of the ensemble size N).

Paper shape asserted: best F1 does not degrade as N grows, the largest N is
at least as good as the smallest, and the whole sweep stays in a narrow band
(the stability claim: N=40 vs N=80 nearly indistinguishable).
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment
from repro.metrics import CurvePoint, best_f1


def test_fig7_impact_of_n(benchmark, scale):
    result = run_once(benchmark, get_experiment("fig7").run, scale=scale, seed=0)

    curves = defaultdict(list)
    for row in result.rows:
        curves[row["n_samples"]].append(
            CurvePoint(
                threshold=row["threshold"],
                n_detected=row["n_detected"],
                precision=row["precision"],
                recall=row["recall"],
                f1=row["f1"],
            )
        )
    f1_by_n = {n: best_f1(points).f1 for n, points in sorted(curves.items())}
    ns = sorted(f1_by_n)

    # more samples should not hurt (small tolerance for sampling noise)
    assert f1_by_n[ns[-1]] >= f1_by_n[ns[0]] - 0.05, f1_by_n
    # stability: the whole sweep sits in a narrow band
    assert max(f1_by_n.values()) - min(f1_by_n.values()) <= 0.25, f1_by_n

    print()
    print("best F1 per N:", {n: round(v, 4) for n, v in f1_by_n.items()})
