#!/usr/bin/env python
"""Overhead of the fault-injection layer when armed but idle.

The contract of ``repro.faults`` is that production paths run unmodified:
a ``fault_point`` is one module-global ``None`` check when disarmed, and
one short spec scan when a plan is armed whose specs never match. This
benchmark measures both against a fault-free fit:

* ``fit_disarmed``   — ``EnsemFDet.fit`` with no plan armed (the default),
* ``fit_armed_idle`` — the same fit with a plan armed that matches a
  member index the ensemble does not have, so every injection point is
  evaluated but nothing ever fires,
* ``point_ns_*``     — nanoseconds per bare ``fault_point`` call,
* ``points_per_fit`` — exact number of ``fault_point`` evaluations one
  fit performs, counted with a plan whose specs match every point but
  have a zero firing budget (``times=0``).

Fits are interleaved (disarmed, armed, disarmed, ...) and the minimum per
mode is compared, which cancels thermal/scheduler drift. That direct
comparison is reported for context, but a fit takes tens of milliseconds
while the armed-idle layer costs single-digit *micro*seconds per fit, so
wall-clock jitter on a shared machine swamps the effect being measured.
``--check`` therefore gates on the *derived* overhead —

    points_per_fit x (point_ns_armed_idle - point_ns_disarmed) / fit time

— which multiplies two stable measurements (a 200k-call timing loop and a
deterministic call count) and must stay within ``--threshold`` (default
2%) of the disarmed fit.

Usage::

    python benchmarks/bench_fault_overhead.py            # print a report
    python benchmarks/bench_fault_overhead.py --check    # exit 1 over threshold
    python benchmarks/bench_fault_overhead.py --update   # rewrite the baseline

The committed baseline (``benchmarks/baselines/fault_overhead.json``)
records the measured numbers for context; the check itself is *relative*
(armed vs disarmed on the same host, same process), so it does not break
when the hardware changes.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.datasets import uniform_bipartite  # noqa: E402
from repro.ensemble import EnsemFDet, EnsemFDetConfig  # noqa: E402
from repro.faults import arm, disarm, fault_point  # noqa: E402
from repro.faults.injection import _HITS  # noqa: E402  (benchmark-only peek)
from repro.fdet import FdetConfig  # noqa: E402
from repro.sampling import RandomEdgeSampler  # noqa: E402

DEFAULT_BASELINE = os.path.join(_HERE, "baselines", "fault_overhead.json")

#: a plan whose specs are scanned at every injection point but never match
IDLE_PLAN = "raise:point=member.detect,index=999999"

#: matches every registered point on every attempt, but times=0 means a
#: zero firing budget — the hit counters then record exactly how many
#: fault_point evaluations a fit performs, without perturbing it
COUNTING_PLAN = ";".join(
    f"raise:point={point},attempt=-1,times=0"
    for point in ("member.detect", "shm.attach", "state.write", "pool.map")
)


def _fit_seconds(config: EnsemFDetConfig, graph) -> float:
    start = time.perf_counter()
    EnsemFDet(config).fit(graph)
    return time.perf_counter() - start


def _point_ns(calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fault_point("member.detect", index=0, attempt=0)
    return (time.perf_counter() - start) / calls * 1e9


def measure(rounds: int = 9, point_calls: int = 200_000) -> dict[str, float]:
    """Interleaved min-of-``rounds`` fit timings plus per-call costs."""
    # big enough that the ~per-member nanoseconds of fault_point are far
    # below the noise floor of a fit, so the 2% budget measures the layer,
    # not scheduler jitter on a millisecond-scale run
    graph = uniform_bipartite(800, 400, 9000, rng=0)
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.3),
        n_samples=12,
        fdet=FdetConfig(max_blocks=10),
        executor="serial",
        seed=0,
    )
    disarm()
    _fit_seconds(config, graph)  # warm caches outside the measurement

    # GC pauses landing in one mode's rounds would swamp the microsecond
    # scale effect being measured, so collect up front and pause the
    # collector for the timed region
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        disarmed, armed = [], []
        for _ in range(rounds):
            disarm()
            disarmed.append(_fit_seconds(config, graph))
            arm(IDLE_PLAN)
            armed.append(_fit_seconds(config, graph))
        disarm()
    finally:
        if gc_was_enabled:
            gc.enable()

    ns_disarmed = _point_ns(point_calls)
    arm(IDLE_PLAN)
    ns_armed = _point_ns(point_calls)

    # exact evaluation count: every spec matches, none may fire, so the
    # per-spec hit counters sum to the number of fault_point calls
    arm(COUNTING_PLAN)
    _fit_seconds(config, graph)
    points_per_fit = sum(_HITS.values())
    disarm()

    fit_disarmed = min(disarmed)
    fit_armed = min(armed)
    derived_sec = points_per_fit * max(0.0, ns_armed - ns_disarmed) / 1e9
    return {
        "fit_disarmed_sec": fit_disarmed,
        "fit_armed_idle_sec": fit_armed,
        "fit_overhead_pct": (fit_armed / fit_disarmed - 1.0) * 100.0,
        "point_ns_disarmed": ns_disarmed,
        "point_ns_armed_idle": ns_armed,
        "points_per_fit": float(points_per_fit),
        "derived_overhead_pct": derived_sec / fit_disarmed * 100.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, help="baseline JSON path")
    parser.add_argument("--update", action="store_true", help="rewrite the baseline")
    parser.add_argument(
        "--check", action="store_true", help="fail when armed-idle overhead exceeds --threshold"
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0, help="max armed-idle fit overhead in percent"
    )
    parser.add_argument("--rounds", type=int, default=9, help="interleaved fit rounds per mode")
    args = parser.parse_args(argv)

    results = measure(rounds=args.rounds)
    print(f"fit disarmed      : {results['fit_disarmed_sec'] * 1000:8.1f} ms")
    print(f"fit armed (idle)  : {results['fit_armed_idle_sec'] * 1000:8.1f} ms")
    print(f"fit overhead      : {results['fit_overhead_pct']:8.3f} %  (direct, noisy)")
    print(f"fault_point call  : {results['point_ns_disarmed']:8.1f} ns disarmed")
    print(f"                    {results['point_ns_armed_idle']:8.1f} ns armed-idle")
    print(f"points per fit    : {results['points_per_fit']:8.0f}")
    print(f"derived overhead  : {results['derived_overhead_pct']:8.5f} %")

    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        payload = {"meta": {"cpu_count": os.cpu_count()}, "results": results}
        with open(args.baseline, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    if args.check and results["derived_overhead_pct"] > args.threshold:
        print(
            f"fault layer armed-idle overhead {results['derived_overhead_pct']:.5f}% "
            f"exceeds the {args.threshold:g}% budget",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print(f"\narmed-idle overhead within the {args.threshold:g}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
