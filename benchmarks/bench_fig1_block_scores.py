"""Bench: regenerate Fig. 1 (per-block density scores on sampled graphs)."""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment


def test_fig1_block_score_curves(benchmark, scale):
    result = run_once(benchmark, get_experiment("fig1").run, scale=scale, seed=0)

    by_sample = defaultdict(list)
    for row in result.rows:
        by_sample[row["sample"]].append(row)

    for sample, rows in by_sample.items():
        rows.sort(key=lambda r: r["block"])
        scores = [r["score"] for r in rows]
        # paper shape: first block clearly denser than the tail floor
        assert scores[0] == max(scores)
        if len(scores) >= 3:
            assert scores[0] > 1.3 * scores[-1], (
                f"sample {sample}: no cliff between first block and floor"
            )
        # k̂ within the paper's observed range (all records < 15)
        assert 1 <= rows[0]["k_hat"] <= 15

    print()
    print(result.render(max_rows=30))
