"""Bench: regenerate Fig. 9 (impact of the voting threshold T).

Paper shape asserted, per dataset: recall falls monotonically with T, the
detected count falls monotonically with T, and precision trends upward
(strictly: the high-T half of the curve has higher median precision than
the low-T half) — the properties that make T a usable business knob.
"""

from __future__ import annotations

import statistics
from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment


def test_fig9_impact_of_t(benchmark, scale):
    result = run_once(benchmark, get_experiment("fig9").run, scale=scale, seed=0)

    by_dataset = defaultdict(list)
    for row in result.rows:
        by_dataset[row["dataset"]].append(row)

    precision_trend_ok = 0
    for dataset, rows in by_dataset.items():
        rows.sort(key=lambda r: r["T"])
        detected = [r["n_detected"] for r in rows]
        recalls = [r["recall"] for r in rows]
        assert detected == sorted(detected, reverse=True), dataset
        assert recalls == sorted(recalls, reverse=True), dataset

        active = [r for r in rows if r["n_detected"] > 0]
        half = len(active) // 2
        if half >= 1:
            low = statistics.median(r["precision"] for r in active[:half])
            high = statistics.median(r["precision"] for r in active[half:])
            if high >= low:
                precision_trend_ok += 1
    assert precision_trend_ok >= 2, "precision should rise with T on most datasets"

    print()
    print(result.render(max_rows=20))
