"""Microbenchmark: greedy peeling throughput and near-linear scaling.

The paper claims ``O(k̂ |E| log(|U|+|V|))`` total work; this bench times one
full peel at three graph sizes and checks the growth is near-linear in |E|
(within a generous log-factor band).
"""

from __future__ import annotations

import pytest

from repro.datasets import chung_lu_bipartite
from repro.fdet import LogWeightedDensity, greedy_peel
from repro.parallel import time_callable

SIZES = [(2_000, 800, 6_000), (8_000, 3_200, 24_000), (32_000, 12_800, 96_000)]


@pytest.mark.parametrize("n_users,n_merchants,n_edges", SIZES)
def test_peel_throughput(benchmark, n_users, n_merchants, n_edges):
    graph = chung_lu_bipartite(n_users, n_merchants, n_edges, rng=0)
    metric = LogWeightedDensity()
    weights = metric.edge_weights(graph)
    result = benchmark.pedantic(greedy_peel, args=(graph, weights), rounds=1, iterations=1)
    assert result.density > 0


def test_peel_scaling_is_near_linear():
    timings = []
    for n_users, n_merchants, n_edges in SIZES:
        graph = chung_lu_bipartite(n_users, n_merchants, n_edges, rng=0)
        weights = LogWeightedDensity().edge_weights(graph)
        timing = time_callable(greedy_peel, graph, weights)
        timings.append((graph.n_edges, timing.seconds))

    (e1, t1), (_, _), (e3, t3) = timings
    edge_ratio = e3 / e1  # ~16x
    time_ratio = t3 / max(t1, 1e-9)
    # near-linear: 16x edges should cost far less than quadratic (256x);
    # allow a log factor plus noise
    assert time_ratio < edge_ratio * 6, timings
    print()
    for edges, seconds in timings:
        print(f"  |E|={edges}: {seconds * 1000:.1f} ms")
