"""Microbenchmark: greedy peeling throughput and near-linear scaling.

The paper claims ``O(k̂ |E| log(|U|+|V|))`` total work; this bench times one
full peel at three graph sizes for **both engines** (so the BENCH json
captures the reference-vs-fast before/after), checks the growth is
near-linear in |E| (within a generous log-factor band), and asserts the
fast engine's headline speedup at the largest size.
"""

from __future__ import annotations

import pytest

from repro.datasets import chung_lu_bipartite
from repro.fdet import LogWeightedDensity, PeelEngine, greedy_peel
from repro.fdet._native import native_available
from repro.parallel import time_callable

SIZES = [(2_000, 800, 6_000), (8_000, 3_200, 24_000), (32_000, 12_800, 96_000)]


@pytest.mark.parametrize("engine", PeelEngine.ALL)
@pytest.mark.parametrize("n_users,n_merchants,n_edges", SIZES)
def test_peel_throughput(benchmark, engine, n_users, n_merchants, n_edges):
    graph = chung_lu_bipartite(n_users, n_merchants, n_edges, rng=0)
    metric = LogWeightedDensity()
    weights = metric.edge_weights(graph)
    result = benchmark.pedantic(
        greedy_peel, args=(graph, weights), kwargs={"engine": engine}, rounds=1, iterations=1
    )
    assert result.density > 0


@pytest.mark.parametrize("engine", PeelEngine.ALL)
def test_peel_scaling_is_near_linear(engine):
    timings = []
    for n_users, n_merchants, n_edges in SIZES:
        graph = chung_lu_bipartite(n_users, n_merchants, n_edges, rng=0)
        weights = LogWeightedDensity().edge_weights(graph)
        timing = time_callable(greedy_peel, graph, weights, engine=engine)
        timings.append((graph.n_edges, timing.seconds))

    (e1, t1), (_, _), (e3, t3) = timings
    edge_ratio = e3 / e1  # ~16x
    time_ratio = t3 / max(t1, 1e-9)
    # near-linear: 16x edges should cost far less than quadratic (256x);
    # allow a log factor plus noise
    assert time_ratio < edge_ratio * 6, timings
    print()
    for edges, seconds in timings:
        print(f"  [{engine}] |E|={edges}: {seconds * 1000:.1f} ms")


def test_fast_engine_speedup():
    """The acceptance bar: fast >= 5x reference at the 32k-user size.

    Requires the native core (any system C compiler); the pure-Python
    fallback is exact but only modestly faster than the reference.
    """
    if not native_available():
        pytest.skip("no C compiler available - fast engine runs its Python fallback")
    n_users, n_merchants, n_edges = SIZES[-1]
    metric = LogWeightedDensity()

    times = {}
    for engine in PeelEngine.ALL:
        graph = chung_lu_bipartite(n_users, n_merchants, n_edges, rng=0)
        weights = metric.edge_weights(graph)
        times[engine] = time_callable(greedy_peel, graph, weights, engine=engine).seconds

    speedup = times[PeelEngine.REFERENCE] / max(times[PeelEngine.FAST], 1e-9)
    print(f"\n  reference={times['reference'] * 1000:.1f} ms "
          f"fast={times['fast'] * 1000:.1f} ms speedup={speedup:.1f}x")
    assert speedup >= 5.0, times
