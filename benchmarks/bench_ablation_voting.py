"""Ablation: raw majority voting vs appearance-normalised voting (DESIGN.md §5).

Normalising a node's votes by how often sampling actually *included* it
corrects the participation bias of raw MVA, at the cost of amplifying
single-appearance noise. The bench scores both over their threshold sweeps.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_jd_dataset
from repro.ensemble import EnsemFDet, EnsemFDetConfig, normalized_majority_vote
from repro.fdet import FdetConfig
from repro.metrics import best_f1, curve_from_detections, ensemble_threshold_curve
from repro.sampling import RandomEdgeSampler


@pytest.fixture(scope="module")
def fitted(preset):
    dataset = make_jd_dataset(1, scale=preset.dataset_scale, seed=0)
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(preset.sample_ratio),
        n_samples=preset.n_samples,
        fdet=FdetConfig(max_blocks=preset.max_blocks),
        executor="process",
        seed=0,
        track_appearances=True,
    )
    return dataset, EnsemFDet(config).fit(dataset.graph)


def test_raw_majority_vote(benchmark, fitted):
    dataset, result = fitted
    curve = benchmark.pedantic(
        ensemble_threshold_curve, args=(result, dataset.blacklist), rounds=1, iterations=1
    )
    best = best_f1(curve)
    assert best.f1 > 0.1
    print()
    print(f"raw MVA best: F1={best.f1:.4f} at T={best.threshold:.0f}")


def test_normalized_vote(benchmark, fitted):
    dataset, result = fitted

    def sweep():
        detections = []
        for percent in range(5, 100, 5):
            fraction = percent / 100.0
            detection = normalized_majority_vote(
                result.vote_table, fraction, min_appearances=2
            )
            detections.append((fraction, detection.user_labels.tolist()))
        return curve_from_detections(detections, dataset.blacklist.labels)

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best = best_f1(curve)
    assert best.f1 > 0.1
    print()
    print(f"normalized vote best: F1={best.f1:.4f} at fraction={best.threshold:.2f}")
