#!/usr/bin/env python
"""Perf-regression guard for the peeling microbenchmark.

Times one greedy peel per (engine, size) on the same Chung-Lu graphs as
``bench_micro_peeling.py``, plus one small batched-vs-per-member ensemble
fit pair (the ``bench_native_ensemble.py`` workload at guard scale), plus
the scoring-server load case from ``bench_serve_load.py`` (HTTP ingest
seconds-per-1k-edges and query p99, compared against
``baselines/serve_load.json``), plus the out-of-core guard case from
``bench_scale.py`` (store write + wide-resident vs sharded-mmap fit
seconds, compared against ``baselines/scale.json``; the measurement
itself asserts the two fits stay bitwise identical), and compares against
a committed baseline JSON (``benchmarks/baselines/micro_peeling.json``). Any entry slower than
``--threshold`` (default 2x — generous enough for machine-to-machine noise,
tight enough to catch an accidental de-vectorisation) fails the run.

Usage::

    python benchmarks/check_regression.py            # compare against baseline
    python benchmarks/check_regression.py --update   # re-measure and rewrite it
    python benchmarks/check_regression.py --fast     # small sizes only (CI/tier-1)

``--fast`` times only the smaller graph sizes and compares just those
baseline entries — quick enough to run inside the regular test suite (see
``tests/test_perf_guard.py``) while still catching an accidental
de-vectorisation of either engine.

The baseline records the host's CPU count for context; regenerate it with
``--update`` whenever the engines change shape intentionally.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, _HERE)

from bench_micro_peeling import SIZES  # noqa: E402 - single source of truth for sizes
from bench_scale import (  # noqa: E402 - guard-scale out-of-core case
    BASELINE as SCALE_BASELINE,
    guard_timings as scale_guard_timings,
    measure as measure_scale,
)
from bench_serve_load import (  # noqa: E402 - guard-scale serving load case
    BASELINE as SERVE_BASELINE,
    guard_timings as serve_guard_timings,
    measure as measure_serve,
)

from repro.datasets import chung_lu_bipartite  # noqa: E402
from repro.fdet import LogWeightedDensity, PeelEngine, greedy_peel  # noqa: E402
from repro.fdet._native import native_available  # noqa: E402
from repro.parallel import time_callable  # noqa: E402

DEFAULT_BASELINE = os.path.join(_HERE, "baselines", "micro_peeling.json")


#: guard-scale batched ensemble: big enough that the kernel dominates,
#: small enough for tier-1 (see tests/test_perf_guard.py)
ENSEMBLE_CASE = {"n_users": 2_000, "n_merchants": 800, "n_edges": 8_000, "n_samples": 12}


def measure_ensemble() -> dict[str, float]:
    """Serial batched vs per-member fit seconds on the guard-scale ensemble."""
    from repro.ensemble import EnsemFDet, EnsemFDetConfig
    from repro.fdet import FdetConfig
    from repro.fdet._native import native_available
    from repro.sampling import RandomEdgeSampler

    if not native_available():
        return {}
    graph = chung_lu_bipartite(
        ENSEMBLE_CASE["n_users"], ENSEMBLE_CASE["n_merchants"], ENSEMBLE_CASE["n_edges"], rng=0
    )
    timings: dict[str, float] = {}
    for label, native_batch in (("ensemble-batched", True), ("ensemble-permember", False)):
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.3),
            n_samples=ENSEMBLE_CASE["n_samples"],
            fdet=FdetConfig(max_blocks=4),
            executor="serial",
            seed=0,
            native_batch=native_batch,
        )
        best = min(
            time_callable(EnsemFDet(config).fit, graph).seconds for _ in range(3)
        )
        timings[f"{label}@{ENSEMBLE_CASE['n_edges']}"] = best
    return timings


def measure(sizes: list[tuple[int, int, int]] | None = None) -> dict[str, float]:
    """Best-of-N peel seconds keyed by ``engine@n_edges``."""
    metric = LogWeightedDensity()
    timings: dict[str, float] = {}
    for engine in PeelEngine.ALL:
        for n_users, n_merchants, n_edges in sizes if sizes is not None else SIZES:
            graph = chung_lu_bipartite(n_users, n_merchants, n_edges, rng=0)
            weights = metric.edge_weights(graph)
            repeats = 1 if engine == PeelEngine.REFERENCE and n_edges >= 90_000 else 3
            best = min(
                time_callable(greedy_peel, graph, weights, engine=engine).seconds
                for _ in range(repeats)
            )
            timings[f"{engine}@{n_edges}"] = best
    timings.update(measure_ensemble())
    timings.update(serve_guard_timings(measure_serve()))
    # parity gate rides along: measure_scale raises if the sharded+mmap
    # vote table ever diverges from the wide resident fit
    timings.update(scale_guard_timings(measure_scale()))
    return timings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, help="baseline JSON path")
    parser.add_argument("--update", action="store_true", help="rewrite the baseline")
    parser.add_argument("--threshold", type=float, default=2.0, help="max slowdown factor")
    parser.add_argument(
        "--fast",
        action="store_true",
        help="measure only the smaller sizes and compare just those baseline entries",
    )
    args = parser.parse_args(argv)

    if args.fast and args.update:
        print("--fast cannot rewrite the baseline; run --update without it", file=sys.stderr)
        return 2

    timings = measure(sizes=SIZES[:-1] if args.fast else None)

    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        payload = {
            "meta": {"cpu_count": os.cpu_count(), "native_kernel": native_available()},
            # serve-*/scale-* cases live in baselines/serve_load.json and
            # baselines/scale.json, rewritten by their own --update runs —
            # never duplicated here
            "timings": {
                case: value
                for case, value in timings.items()
                if not case.startswith(("serve-", "scale-"))
            },
        }
        with open(args.baseline, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first", file=sys.stderr)
        return 2
    with open(args.baseline) as handle:
        payload = json.load(handle)
    baseline = payload["timings"]
    if os.path.exists(SERVE_BASELINE):
        with open(SERVE_BASELINE) as handle:
            serve_payload = json.load(handle)
        baseline.update(
            serve_guard_timings(
                {k: v for k, v in serve_payload.items() if k != "meta"}
            )
        )
    if os.path.exists(SCALE_BASELINE):
        with open(SCALE_BASELINE) as handle:
            scale_payload = json.load(handle)
        baseline.update(scale_payload.get("guard", {}))

    # a native-kernel baseline is meaningless against a python-fallback run
    # (and vice versa): only the reference engine is comparable then
    baseline_native = payload.get("meta", {}).get("native_kernel")
    if baseline_native is not None and baseline_native != native_available():
        baseline = {k: v for k, v in baseline.items() if k.startswith(PeelEngine.REFERENCE)}
        print(
            f"note: baseline native_kernel={baseline_native} but this host's is "
            f"{native_available()}; comparing reference-engine cases only"
        )

    if args.fast:
        baseline = {case: value for case, value in baseline.items() if case in timings}

    failures = []
    print(f"{'case':<20} {'baseline':>10} {'now':>10} {'ratio':>7}")
    for case, reference_seconds in sorted(baseline.items()):
        measured = timings.get(case)
        if measured is None:
            failures.append(f"{case}: missing from current measurement")
            continue
        ratio = measured / max(reference_seconds, 1e-9)
        flag = "" if ratio <= args.threshold else "  <-- REGRESSION"
        print(f"{case:<20} {reference_seconds * 1000:>8.1f}ms {measured * 1000:>8.1f}ms {ratio:>6.2f}x{flag}")
        if ratio > args.threshold:
            failures.append(
                f"{case}: {ratio:.2f}x of baseline exceeds the {args.threshold}x threshold"
            )

    if failures:
        print("\nperf regression guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall cases within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
