"""Bench: out-of-core scale — edges vs wall-clock vs peak RSS, shard sweep.

Exercises the sharded / mmap-backed path end to end at three scales:

* **guard** (in-process, seconds): stream-write a store file, fit it
  unsharded-resident and sharded-mmap, assert the vote tables are
  **bitwise identical**, and report wall-clock per stage. These timings
  feed ``check_regression.py --fast`` via :func:`guard_timings`.
* **smoke** (``--smoke``, CI): a multi-million-edge store fitted in a
  fresh subprocess per configuration so ``ru_maxrss`` is honest. Every
  fit fans members out to a process pool, so ``RUSAGE_SELF`` isolates
  the parent orchestrator and ``RUSAGE_CHILDREN`` the workers. Asserts
  the sharded+mmap fit beats the wide fit on parent peak RSS and stays
  **bounded well below** it on worker peak RSS (no process ever holds
  the full int64 graph), and that all configurations agree bitwise
  (vote fingerprints).
* **full** (``--full``, committed baseline): the 10M-edge / 1M-user
  headline — store write throughput, then a shard sweep (1, 2, 4, 8)
  recording seconds and peak RSS per configuration into
  ``baselines/scale.json``.

Run standalone::

    python benchmarks/bench_scale.py             # guard case, print stats
    python benchmarks/bench_scale.py --update    # rewrite baselines/scale.json (guard)
    python benchmarks/bench_scale.py --smoke     # CI: bounded-RSS assertion
    python benchmarks/bench_scale.py --full --update   # 10M-edge sweep -> baseline
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH
    sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.datasets import write_store
from repro.ensemble import EnsemFDet, EnsemFDetConfig
from repro.fdet import FdetConfig
from repro.graph import BipartiteGraph, GraphStore
from repro.sampling import StableEdgeSampler

BASELINE = os.path.join(_HERE, "baselines", "scale.json")

#: guard scale — small enough for tier-1, big enough that sharding is real
GUARD = {
    "n_users": 20_000,
    "n_merchants": 5_000,
    "n_edges": 150_000,
    "n_samples": 8,
    "ratio": 0.2,
    "stripe": 256,
    "shards": 4,
    "seed": 17,
}

#: CI smoke — millions of edges, fresh subprocess per config for honest RSS
SMOKE = {
    "n_users": 1_000_000,
    "n_merchants": 100_000,
    "n_edges": 10_000_000,
    "n_samples": 8,
    "ratio": 0.1,
    "stripe": 4_096,
    "seed": 17,
}

#: headline scale and the shard sweep recorded in the committed baseline
FULL = dict(SMOKE)
FULL_SHARDS = (1, 2, 4, 8)

#: --smoke bound: the sharded+mmap workers' peak RSS must stay below this
#: fraction of the wide fit's worker peak. Workers are where the
#: out-of-core structure shows up sharpest — a wide worker attaches the
#: full int64 graph segment before materializing its member, a sharded
#: worker maps one shard file — while both parents share the
#: Python-Counter vote-table overhead, which scales with detected nodes,
#: not edges. Observed at 10M edges: ~0.55; the slack absorbs
#: machine-to-machine noise without letting a full-graph attach sneak back
#: in (that alone would push the ratio past 1).
SMOKE_WORKER_RSS_FRACTION = 0.7


def _config(
    case: dict, shards: int, mmap: bool, executor: str = "serial"
) -> EnsemFDetConfig:
    return EnsemFDetConfig(
        sampler=StableEdgeSampler(case["ratio"], stripe=case["stripe"]),
        n_samples=case["n_samples"],
        fdet=FdetConfig(max_blocks=6),
        executor=executor,
        n_workers=2 if executor == "process" else None,
        seed=case["seed"],
        shards=shards,
        mmap=mmap,
    )


def _fingerprint(result) -> str:
    """Order-independent digest of the vote table (bitwise parity check)."""
    digest = hashlib.sha256()
    for counter in (result.vote_table.user_votes, result.vote_table.merchant_votes):
        for label, votes in sorted(counter.items()):
            digest.update(f"{label}:{votes};".encode())
    return digest.hexdigest()


def wide_resident_bytes(case: dict) -> int:
    """The in-RAM footprint of the pre-out-of-core representation: int64
    endpoints and labels, fully materialised."""
    return 8 * (2 * case["n_edges"] + case["n_users"] + case["n_merchants"])


def _write(case: dict, path: str) -> float:
    started = time.perf_counter()
    write_store(
        path,
        case["n_users"],
        case["n_merchants"],
        case["n_edges"],
        kind="chung_lu",
        rng=case["seed"],
    )
    return time.perf_counter() - started


def _wide_graph(store: GraphStore) -> BipartiteGraph:
    """Upcast a store to the wide int64 in-RAM graph (the legacy path)."""
    return BipartiteGraph(
        store.n_users,
        store.n_merchants,
        np.asarray(store.edge_users, dtype=np.int64),
        np.asarray(store.edge_merchants, dtype=np.int64),
        edge_weights=(
            None
            if store.edge_weights is None
            else np.asarray(store.edge_weights, dtype=np.float64)
        ),
        user_labels=np.asarray(store.user_labels, dtype=np.int64),
        merchant_labels=np.asarray(store.merchant_labels, dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# worker mode: one fit in a fresh process, honest ru_maxrss
# ---------------------------------------------------------------------------


def _worker(spec: dict) -> dict:
    """One fit in this fresh process.

    Members always run in pool workers (``executor="process"``), so
    ``RUSAGE_SELF`` is the *parent* fit orchestrator alone — the process
    whose residency the out-of-core path promises to bound — and
    ``RUSAGE_CHILDREN`` is the worker high-water mark.
    """
    case = spec["case"]
    started = time.perf_counter()
    if spec["transport"] == "wide":
        # the legacy path: full int64 graph resident, shm segment export
        graph = _wide_graph(GraphStore.open(spec["path"], mmap=False))
        result = EnsemFDet(
            _config(case, shards=1, mmap=False, executor="process")
        ).fit(graph)
    else:
        store = GraphStore.open(spec["path"], mmap=True)
        result = EnsemFDet(
            _config(
                case, shards=spec["shards"], mmap=spec["mmap"], executor="process"
            )
        ).fit(store)
    seconds = time.perf_counter() - started
    return {
        "seconds": round(seconds, 3),
        "maxrss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
        "workers_maxrss_bytes": resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        * 1024,
        "fingerprint": _fingerprint(result),
    }


def _run_worker(spec: dict) -> dict:
    """Run one fit configuration in a fresh interpreter, return its stats."""
    process = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker", json.dumps(spec)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(_HERE, "..", "src")},
    )
    if process.returncode != 0:
        raise RuntimeError(f"scale worker failed:\n{process.stderr[-2000:]}")
    return json.loads(process.stdout.strip().splitlines()[-1])


# ---------------------------------------------------------------------------
# guard scale (in-process): parity gate + timings for check_regression
# ---------------------------------------------------------------------------


def measure(case: dict = GUARD) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro_scale_") as tmpdir:
        path = os.path.join(tmpdir, "graph.store")
        write_seconds = _write(case, path)
        store_bytes = os.path.getsize(path)

        store = GraphStore.open(path, mmap=False)
        started = time.perf_counter()
        resident = EnsemFDet(_config(case, shards=1, mmap=False)).fit(
            _wide_graph(store)
        )
        resident_seconds = time.perf_counter() - started

        opened = GraphStore.open(path, mmap=True)
        started = time.perf_counter()
        sharded = EnsemFDet(
            _config(case, shards=case["shards"], mmap=True)
        ).fit(opened)
        sharded_seconds = time.perf_counter() - started

    if _fingerprint(resident) != _fingerprint(sharded):
        raise AssertionError(
            "sharded+mmap vote table diverged from the wide resident fit — "
            "bitwise-parity contract broken"
        )
    return {
        "case": dict(case),
        "store_bytes": store_bytes,
        "write_seconds": round(write_seconds, 4),
        "resident_fit_seconds": round(resident_seconds, 4),
        "sharded_fit_seconds": round(sharded_seconds, 4),
        "fingerprint": _fingerprint(resident),
    }


def guard_timings(stats: dict) -> dict[str, float]:
    """Flatten guard stats into lower-is-better seconds for the ratio guard."""
    edges = stats["case"]["n_edges"]
    return {
        f"scale-write@{edges}": stats["write_seconds"],
        f"scale-fit-resident@{edges}": stats["resident_fit_seconds"],
        f"scale-fit-sharded@{edges}": stats["sharded_fit_seconds"],
    }


# ---------------------------------------------------------------------------
# smoke / full: subprocess sweep with RSS accounting
# ---------------------------------------------------------------------------


def sweep(case: dict, shard_counts: tuple[int, ...], keep_dir: str | None = None) -> dict:
    tmpdir = keep_dir or tempfile.mkdtemp(prefix="repro_scale_")
    path = os.path.join(tmpdir, "graph.store")
    print(f"writing {case['n_edges']:,}-edge store to {path} ...", flush=True)
    write_seconds = _write(case, path)
    store_bytes = os.path.getsize(path)
    print(
        f"  wrote {store_bytes / 1e6:.0f} MB in {write_seconds:.1f}s "
        f"({case['n_edges'] / write_seconds / 1e6:.2f} M edges/s)",
        flush=True,
    )

    configs = [{"label": "wide-resident", "transport": "wide", "shards": 1, "mmap": False}]
    configs += [
        {"label": f"mmap-shards-{k}", "transport": "store", "shards": k, "mmap": True}
        for k in shard_counts
    ]
    runs = []
    try:
        for config in configs:
            spec = {**config, "case": case, "path": path}
            print(f"running {config['label']} ...", flush=True)
            stats = _run_worker(spec)
            print(
                f"  {config['label']}: {stats['seconds']}s, "
                f"parent peak RSS {stats['maxrss_bytes'] / 1e6:.0f} MB, "
                f"worker peak RSS {stats['workers_maxrss_bytes'] / 1e6:.0f} MB",
                flush=True,
            )
            runs.append({**config, **stats})
    finally:
        if keep_dir is None:
            import shutil

            shutil.rmtree(tmpdir, ignore_errors=True)

    fingerprints = {run["fingerprint"] for run in runs}
    if len(fingerprints) != 1:
        raise AssertionError(
            f"vote fingerprints diverged across configurations: "
            f"{ {run['label']: run['fingerprint'][:12] for run in runs} }"
        )
    return {
        "case": dict(case),
        "store_bytes": store_bytes,
        "wide_resident_bytes": wide_resident_bytes(case),
        "write_seconds": round(write_seconds, 2),
        "runs": runs,
        "fingerprint": runs[0]["fingerprint"],
    }


def smoke(case: dict = SMOKE) -> int:
    stats = sweep(case, shard_counts=(4,))
    wide = next(r for r in stats["runs"] if r["label"] == "wide-resident")
    sharded = next(r for r in stats["runs"] if r["label"].startswith("mmap-shards"))
    worker_bound = wide["workers_maxrss_bytes"] * SMOKE_WORKER_RSS_FRACTION
    print(
        f"\nwide-resident footprint {stats['wide_resident_bytes'] / 1e6:.0f} MB; "
        f"wide fit: parent {wide['maxrss_bytes'] / 1e6:.0f} MB / "
        f"workers {wide['workers_maxrss_bytes'] / 1e6:.0f} MB; "
        f"sharded+mmap fit: parent {sharded['maxrss_bytes'] / 1e6:.0f} MB / "
        f"workers {sharded['workers_maxrss_bytes'] / 1e6:.0f} MB "
        f"(worker bound {worker_bound / 1e6:.0f} MB)"
    )
    failures = []
    if sharded["maxrss_bytes"] >= wide["maxrss_bytes"]:
        failures.append(
            f"sharded+mmap parent peak RSS {sharded['maxrss_bytes'] / 1e6:.0f} MB "
            f"is not below the wide fit's parent peak "
            f"({wide['maxrss_bytes'] / 1e6:.0f} MB)"
        )
    if sharded["workers_maxrss_bytes"] >= worker_bound:
        failures.append(
            f"sharded+mmap worker peak RSS "
            f"{sharded['workers_maxrss_bytes'] / 1e6:.0f} MB is not below "
            f"{SMOKE_WORKER_RSS_FRACTION:.0%} of the wide fit's worker peak "
            f"({worker_bound / 1e6:.0f} MB)"
        )
    if failures:
        for failure in failures:
            print(f"SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    print("scale smoke OK: bitwise parity and bounded RSS")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite baselines/scale.json")
    parser.add_argument("--smoke", action="store_true", help="CI smoke: bounded-RSS assertion")
    parser.add_argument("--full", action="store_true", help="10M-edge shard sweep")
    parser.add_argument("--worker", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        print(json.dumps(_worker(json.loads(args.worker))))
        return 0
    if args.smoke:
        return smoke()

    stats = measure()
    payload: dict = {
        "meta": {"cpu_count": os.cpu_count()},
        "guard": guard_timings(stats),
    }
    if args.full:
        full = sweep(FULL, shard_counts=FULL_SHARDS)
        payload["full"] = full
        print(json.dumps(full, indent=2))
    else:
        print(json.dumps(stats, indent=2))

    if args.update:
        if not args.full and os.path.exists(BASELINE):
            # keep the committed full-sweep record when only guard reruns
            with open(BASELINE) as handle:
                previous = json.load(handle)
            if "full" in previous:
                payload["full"] = previous["full"]
        with open(BASELINE, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
