"""Microbenchmark: sampler throughput (RES / ONS / TNS)."""

from __future__ import annotations

import pytest

from repro.datasets import chung_lu_bipartite
from repro.sampling import (
    OneSideNodeSampler,
    RandomEdgeSampler,
    Side,
    TwoSideNodeSampler,
)

SAMPLERS = {
    "res": lambda: RandomEdgeSampler(0.1),
    "ons_merchant": lambda: OneSideNodeSampler(0.1, Side.MERCHANT),
    "ons_user": lambda: OneSideNodeSampler(0.1, Side.USER),
    "tns": lambda: TwoSideNodeSampler(0.3),
}


@pytest.fixture(scope="module")
def big_graph():
    return chung_lu_bipartite(50_000, 20_000, 150_000, rng=0)


@pytest.mark.parametrize("name", sorted(SAMPLERS))
def test_sampler_throughput(benchmark, big_graph, name):
    sampler = SAMPLERS[name]()
    sub = benchmark(sampler.sample, big_graph, 0)
    assert sub.n_edges > 0
    assert sub.n_edges < big_graph.n_edges
