"""Shared fixtures for the benchmark suite.

Every ``bench_<expid>`` module regenerates one paper table/figure: it times
the experiment (one round — these are minutes-scale workloads, not
microbenchmarks), asserts the paper's qualitative *shape*, and prints the
series so the numbers can be eyeballed against the paper.

Scale is controlled with ``REPRO_BENCH_SCALE`` (tiny/small/full, default
small — see ``repro.experiments.base.SCALES``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SCALES


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    """The benchmark scale preset name."""
    return bench_scale()


@pytest.fixture(scope="session")
def preset():
    """The resolved scale preset."""
    return SCALES[bench_scale()]


def run_once(benchmark, func, *args, **kwargs):
    """Time ``func`` exactly once (rounds=1) and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
