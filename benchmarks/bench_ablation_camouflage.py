"""Ablation: camouflage resistance of the log-weighted density (DESIGN.md §5).

Fraudsters add purchases at genuinely popular merchants to look normal. The
log-weighted φ discounts exactly those edges, so detection quality should
degrade only mildly as camouflage intensity grows — the property Fraudar's
paper proves and this reproduction inherits. The average-degree objective
(no discounting) is the control: camouflage helps fraudsters more there.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import FraudBlockSpec, chung_lu_bipartite, inject_fraud_blocks
from repro.fdet import AverageDegreeDensity, Fdet, FdetConfig, LogWeightedDensity
from repro.metrics import detection_confusion

CAMOUFLAGE_LEVELS = [0, 2, 5]
N_BLOCKS = 4  # planted blocks per graph


def build(camouflage: int):
    rng = np.random.default_rng(3)
    background = chung_lu_bipartite(8_000, 3_000, 18_000, rng=rng)
    # distinct densities so FDET extracts the blocks one per iteration
    # (equal-density disjoint blocks merge into a single densest prefix)
    specs = [
        FraudBlockSpec(
            n_users=90,
            n_merchants=18,
            density=rho,
            reuse_merchant_fraction=0.3,
            camouflage_per_user=camouflage,
        )
        for rho in (0.7, 0.6, 0.5, 0.42)
    ]
    return inject_fraud_blocks(background, specs, rng)


@pytest.mark.parametrize("camouflage", CAMOUFLAGE_LEVELS)
def test_log_weighted_under_camouflage(benchmark, camouflage):
    injection = build(camouflage)
    detector = Fdet(FdetConfig(metric=LogWeightedDensity(), max_blocks=10))
    result = benchmark.pedantic(detector.detect, args=(injection.graph,), rounds=1, iterations=1)
    # evaluate at the planted block count (k=4) to isolate the metric's
    # camouflage resistance from truncation noise on this synthetic series
    confusion = detection_confusion(result.detected_users(k=N_BLOCKS), injection.blacklist)
    assert confusion.f1 > 0.5, (camouflage, confusion.as_row())
    print()
    print(f"camouflage={camouflage}: F1={confusion.f1:.3f} "
          f"(P={confusion.precision:.3f} R={confusion.recall:.3f})")


def test_camouflage_degradation_is_mild():
    f1 = {}
    for camouflage in CAMOUFLAGE_LEVELS:
        injection = build(camouflage)
        detector = Fdet(FdetConfig(metric=LogWeightedDensity(), max_blocks=10))
        result = detector.detect(injection.graph)
        f1[camouflage] = detection_confusion(
            result.detected_users(k=N_BLOCKS), injection.blacklist
        ).f1
    worst, best = min(f1.values()), max(f1.values())
    assert worst >= 0.5 * best, f1
    print()
    print("log-weighted F1 by camouflage:", {k: round(v, 3) for k, v in f1.items()})


def test_average_degree_objective_is_the_weaker_control():
    """Without degree discounting the detector is at least as camouflage-prone."""
    injection = build(5)
    log_detector = Fdet(FdetConfig(metric=LogWeightedDensity(), max_blocks=10))
    avg_detector = Fdet(FdetConfig(metric=AverageDegreeDensity(), max_blocks=10))
    log_f1 = detection_confusion(
        log_detector.detect(injection.graph).detected_users(k=N_BLOCKS), injection.blacklist
    ).f1
    avg_f1 = detection_confusion(
        avg_detector.detect(injection.graph).detected_users(k=N_BLOCKS), injection.blacklist
    ).f1
    # the log-weighted objective must not lose to the undiscounted control
    assert log_f1 >= avg_f1 - 0.05, (log_f1, avg_f1)
    print()
    print(f"heavy camouflage: log-weighted F1={log_f1:.3f} vs average-degree F1={avg_f1:.3f}")
