"""Bench: regenerate Fig. 8 (impact of the sample ratio S at fixed S×N).

Paper shape asserted: larger S helps somewhat, smaller S stays close (the
stability-under-subsampling claim) — asserted as a bounded degradation from
the largest to the smallest ratio in the sweep.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment
from repro.metrics import CurvePoint, best_f1


def test_fig8_impact_of_s(benchmark, scale):
    result = run_once(benchmark, get_experiment("fig8").run, scale=scale, seed=0)

    curves = defaultdict(list)
    for row in result.rows:
        curves[row["sample_ratio"]].append(
            CurvePoint(
                threshold=row["threshold"],
                n_detected=row["n_detected"],
                precision=row["precision"],
                recall=row["recall"],
                f1=row["f1"],
            )
        )
    f1_by_s = {s: best_f1(points).f1 for s, points in sorted(curves.items())}
    ratios = sorted(f1_by_s)

    # the largest ratio performs at least as well as the smallest (paper: rising S helps)
    assert f1_by_s[ratios[-1]] >= f1_by_s[ratios[0]] - 0.05, f1_by_s
    # stability: even the smallest S keeps a sizeable share of the best F1
    best = max(f1_by_s.values())
    assert min(f1_by_s.values()) >= 0.35 * best, f1_by_s

    print()
    print("best F1 per S:", {s: round(v, 4) for s, v in f1_by_s.items()})
