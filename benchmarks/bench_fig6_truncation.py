"""Bench: regenerate Fig. 6 (auto truncating point vs fixed k = 30).

Paper shape asserted: the auto-truncated variant reaches at least the fixed-k
variant's best F1 (fixed-k recall gains come at near-random precision), and
every observed k̂ stays below 15 — both paper claims.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment
from repro.metrics import CurvePoint, best_f1


def test_fig6_truncation(benchmark, scale):
    result = run_once(benchmark, get_experiment("fig6").run, scale=scale, seed=0)

    curves = defaultdict(list)
    for row in result.rows:
        curves[row["variant"]].append(
            CurvePoint(
                threshold=row["threshold"],
                n_detected=row["n_detected"],
                precision=row["precision"],
                recall=row["recall"],
                f1=row["f1"],
            )
        )
    variants = sorted(curves)
    auto = next(v for v in variants if v.startswith("auto"))
    fixed = next(v for v in variants if v.startswith("fixed"))

    auto_best = best_f1(curves[auto])
    fixed_best = best_f1(curves[fixed])
    assert auto_best.f1 >= fixed_best.f1 - 0.03, (auto_best, fixed_best)

    # the paper reports every observed k̂ < 15
    assert result.meta["max_observed_k_hat"] < 15, result.meta

    print()
    print(f"auto best F1:  {auto_best.f1:.4f} (P={auto_best.precision:.3f} R={auto_best.recall:.3f})")
    print(f"fixed best F1: {fixed_best.f1:.4f} (P={fixed_best.precision:.3f} R={fixed_best.recall:.3f})")
    print(f"k-hat distribution: {result.meta['k_hat_distribution']}")
