"""Bench: regenerate Fig. 4 (smooth curve vs Fraudar's polyline).

Paper shape asserted: EnsemFDet offers strictly more operating points than
Fraudar and its largest jump in #detected (the "span") is smaller — the
practicability claim (Fraudar spans ~20k PINs between adjacent points).
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment


def test_fig4_smoothness(benchmark, scale):
    result = run_once(benchmark, get_experiment("fig4").run, scale=scale, seed=0)

    points = defaultdict(set)
    for row in result.rows:
        points[(row["dataset"], row["method"])].add(row["n_detected"])

    gaps = result.meta["gaps"]
    smoother = 0
    for dataset, gap in gaps.items():
        n_ensemble = len(points[(dataset, "ensemfdet")])
        n_fraudar = len(points[(dataset, "fraudar")])
        assert n_ensemble > n_fraudar, (dataset, n_ensemble, n_fraudar)
        if gap["ensemfdet_max_gap"] < gap["fraudar_max_gap"]:
            smoother += 1
    # smaller max span on at least 2 of the 3 datasets
    assert smoother >= 2, gaps

    print()
    print("max adjacent #detected gaps per dataset:")
    for dataset, gap in gaps.items():
        print(f"  {dataset}: ensemfdet={gap['ensemfdet_max_gap']} fraudar={gap['fraudar_max_gap']}")
