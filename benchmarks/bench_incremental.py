"""Bench: incremental re-detection vs cold re-fit after a small edge delta.

The streaming acceptance bar: after appending a ≤1% edge delta to an
already-fitted graph, ``IncrementalEnsemFDet.update`` must (a) produce
detections **identical** to a cold ``EnsemFDet.fit`` on the grown graph
with the same seed, and (b) run at least **5x faster** than that cold fit
at ``N = 40`` samples — because a stripe-local delta invalidates only
``≈ S·N`` of the ``N`` ensemble members.

Run standalone to (re)record the committed baseline::

    python benchmarks/bench_incremental.py --update   # rewrite baselines/incremental.json
    python benchmarks/bench_incremental.py            # measure and print
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
if __name__ == "__main__":  # allow standalone runs without PYTHONPATH
    sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.datasets import chung_lu_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet
from repro.fdet import FdetConfig
from repro.parallel import time_callable
from repro.sampling import StableEdgeSampler

BASELINE = os.path.join(_HERE, "baselines", "incremental.json")

#: a 1% delta (~400 edges) appended to a ~40k-edge log spans at most two
#: 1024-edge stripes, so only the few members owning those stripes refresh
N_USERS, N_MERCHANTS, N_EDGES = 6_000, 2_400, 40_960
STRIPE = 1_024
N_SAMPLES = 40
RATIO = 0.1
SEED = 7
DELTA_FRACTION = 0.01
MIN_SPEEDUP = 5.0


def build_config() -> EnsemFDetConfig:
    return EnsemFDetConfig(
        sampler=StableEdgeSampler(RATIO, stripe=STRIPE),
        n_samples=N_SAMPLES,
        fdet=FdetConfig(max_blocks=15),
        executor="serial",
        seed=SEED,
    )


def measure() -> dict:
    """Cold-fit vs update wall-clock, plus the identity cross-check."""
    graph = chung_lu_bipartite(N_USERS, N_MERCHANTS, N_EDGES, rng=0)
    config = build_config()
    detector = IncrementalEnsemFDet(config)
    cold_fit = time_callable(detector.fit, graph)

    n_delta = int(DELTA_FRACTION * graph.n_edges)
    rng = np.random.default_rng(SEED + 1)
    delta_users = rng.integers(0, N_USERS, n_delta)
    delta_merchants = rng.integers(0, N_MERCHANTS, n_delta)
    update = time_callable(detector.update, delta_users, delta_merchants)
    report = update.value

    # identity with a cold re-fit on the grown graph, every threshold
    refit = EnsemFDet(config).fit(detector.graph)
    identical = refit.vote_table.user_votes == detector.vote_table.user_votes and (
        refit.vote_table.merchant_votes == detector.vote_table.merchant_votes
    )
    speedup = cold_fit.seconds / max(update.seconds, 1e-9)
    return {
        "n_edges": graph.n_edges,
        "n_delta_edges": n_delta,
        "n_samples": N_SAMPLES,
        "n_refreshed": report.n_refreshed,
        "cold_fit_seconds": round(cold_fit.seconds, 4),
        "update_seconds": round(update.seconds, 4),
        "speedup": round(speedup, 2),
        "identical_to_cold_refit": identical,
    }


def test_incremental_update_speedup_and_identity():
    stats = measure()
    print()
    for key, value in stats.items():
        print(f"  {key}: {value}")
    assert stats["identical_to_cold_refit"], stats
    # a stripe-local 1% delta must leave most members untouched...
    assert stats["n_refreshed"] < N_SAMPLES // 2, stats
    # ...which is what buys the headline speedup
    assert stats["speedup"] >= MIN_SPEEDUP, stats


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the committed baseline")
    args = parser.parse_args(argv)

    stats = measure()
    print(json.dumps(stats, indent=2))
    if args.update:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        payload = {"meta": {"cpu_count": os.cpu_count()}, "incremental": stats}
        with open(BASELINE, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {BASELINE}")
    if not stats["identical_to_cold_refit"] or stats["speedup"] < MIN_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
