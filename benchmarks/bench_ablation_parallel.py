"""Ablation: executor backends for the detection stage (DESIGN.md §5).

Serial vs thread vs process on the same sampled-graph workload. The paper's
parallelism claim corresponds to the process backend; threads are GIL-bound
for this pure-Python peeling loop and serve as a control.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_jd_dataset
from repro.ensemble import detect_on_samples
from repro.fdet import FdetConfig
from repro.parallel import ExecutorMode
from repro.sampling import RandomEdgeSampler


@pytest.fixture(scope="module")
def workload(preset):
    dataset = make_jd_dataset(3, scale=preset.dataset_scale, seed=0)
    samples = RandomEdgeSampler(preset.sample_ratio).sample_many(
        dataset.graph, preset.n_samples, rng=0
    )
    return samples, FdetConfig(max_blocks=preset.max_blocks)


@pytest.mark.parametrize("mode", [ExecutorMode.SERIAL, ExecutorMode.THREAD, ExecutorMode.PROCESS])
def test_executor_mode(benchmark, workload, mode):
    samples, config = workload
    results = benchmark.pedantic(
        detect_on_samples, args=(samples, config), kwargs={"mode": mode},
        rounds=1, iterations=1,
    )
    assert len(results) == len(samples)
    total_blocks = sum(len(r.result.all_blocks) for r in results)
    assert total_blocks >= len(samples)  # every sample yields at least one block
    print()
    print(f"{mode}: {total_blocks} blocks over {len(samples)} samples")
