"""Bench: regenerate Fig. 3 (PR comparison of all methods, all datasets).

Paper shape asserted:
* EnsemFDet and Fraudar dominate the SVD baselines (AUC-PR) on most datasets;
* EnsemFDet is within the parity band of Fraudar on best-F1;
* the SVD methods are unstable (their worst dataset is far below their best).
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import get_experiment
from repro.metrics import CurvePoint, auc_pr, best_f1


def _curves(rows):
    curves = defaultdict(list)
    for row in rows:
        curves[(row["dataset"], row["method"])].append(
            CurvePoint(
                threshold=row["threshold"],
                n_detected=row["n_detected"],
                precision=row["precision"],
                recall=row["recall"],
                f1=row["f1"],
            )
        )
    return curves


def test_fig3_method_comparison(benchmark, scale):
    result = run_once(benchmark, get_experiment("fig3").run, scale=scale, seed=0)
    curves = _curves(result.rows)
    datasets = sorted({dataset for dataset, _ in curves})

    graph_methods_win = 0
    parity = 0
    summary = []
    for dataset in datasets:
        auc = {method: auc_pr(curves[(dataset, method)]) for method in
               ("ensemfdet", "fraudar", "spoken", "fbox")}
        f1 = {method: best_f1(curves[(dataset, method)]).f1 for method in auc}
        summary.append({"dataset": dataset, **{f"auc_{m}": round(v, 4) for m, v in auc.items()},
                        **{f"f1_{m}": round(v, 4) for m, v in f1.items()}})
        if auc["ensemfdet"] > max(auc["spoken"], auc["fbox"]):
            graph_methods_win += 1
        if f1["ensemfdet"] >= 0.5 * f1["fraudar"]:
            parity += 1

    # EnsemFDet beats both SVD methods on at least 2 of 3 datasets
    assert graph_methods_win >= 2, summary
    # and stays within the Fraudar parity band on at least 2 of 3
    assert parity >= 2, summary

    print()
    for row in summary:
        print(row)
