"""Bench: one-pass batched native ensemble vs the per-member kernel loop.

Same workload as ``bench_shm_fanout.py`` (jd1 at 5x, ``N = 80`` members,
10% edge samples, 8 blocks) so the committed fan-out baseline is a direct
basis for the headline number:

* **batched** — one ``repro_fdet_batch`` call detects all N members against
  the shared flattened CSR (``EnsemFDetConfig(native_batch=True)``, serial
  executor: on the reference host the batch replaces the process pool).
* **per-member** — the same fit with ``native_batch=False``: N subgraph
  materialisations + N single-member kernel calls.
* both fits must produce **identical vote fingerprints** (the batch path is
  bitwise-pinned to the reference engine), and the batched wall is compared
  against the committed ``baselines/shm_fanout.json`` *plan* fit wall — the
  pre-batch production pipeline on the same workload — which it must beat
  by **>=3x** on the baseline host.

Regenerate the committed record with::

    python benchmarks/bench_native_ensemble.py --update
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, _HERE)

from bench_shm_fanout import (  # noqa: E402 - single source of truth for the workload
    BASELINE_PATH as FANOUT_BASELINE_PATH,
    DATASET_SCALE,
    N_SAMPLES,
    SAMPLE_RATIO,
    SEED,
)
from conftest import run_once  # noqa: E402

BASELINE_PATH = os.path.join(_HERE, "baselines", "native_ensemble.json")

#: the headline acceptance: batched fit wall vs the committed fan-out wall
TARGET_SPEEDUP = 3.0
ROUNDS = 3

_SCENARIO = r"""
import json, sys, time
from repro.datasets import make_jd_dataset
from repro.ensemble import EnsemFDet, EnsemFDetConfig
from repro.fdet import FdetConfig
from repro.sampling import RandomEdgeSampler

native_batch, n_samples, ratio, dataset_scale, seed, rounds = (
    sys.argv[1] == "1", int(sys.argv[2]), float(sys.argv[3]), float(sys.argv[4]),
    int(sys.argv[5]), int(sys.argv[6]),
)
graph = make_jd_dataset(1, scale=dataset_scale, seed=seed).graph
config = EnsemFDetConfig(
    sampler=RandomEdgeSampler(ratio), n_samples=n_samples,
    fdet=FdetConfig(max_blocks=8), executor="serial", seed=seed,
    native_batch=native_batch,
)
result = EnsemFDet(config).fit(graph)  # warm: kernel build, dataset caches
walls = []
for _ in range(rounds):
    start = time.perf_counter()
    result = EnsemFDet(config).fit(graph)
    walls.append(time.perf_counter() - start)
print(json.dumps({
    "wall_sec": min(walls),
    "walls": walls,
    "vote_fingerprint": sorted(result.vote_table.user_votes.items())[:50],
}))
"""


def run_scenario(native_batch: bool, rounds: int = ROUNDS) -> dict:
    """Best-of-``rounds`` serial fit in a fresh subprocess."""
    env = dict(os.environ)
    src = os.path.join(_HERE, "..", "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [
            sys.executable, "-c", _SCENARIO, "1" if native_batch else "0",
            str(N_SAMPLES), str(SAMPLE_RATIO), str(DATASET_SCALE),
            str(SEED), str(rounds),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def committed_fanout_wall() -> float | None:
    """The plan-pipeline fit wall recorded by the shm_fanout baseline."""
    if not os.path.exists(FANOUT_BASELINE_PATH):
        return None
    with open(FANOUT_BASELINE_PATH) as handle:
        return json.load(handle)["plan"]["wall_sec"]


def measure() -> dict:
    batched = run_scenario(native_batch=True)
    per_member = run_scenario(native_batch=False)
    assert batched["vote_fingerprint"] == per_member["vote_fingerprint"], (
        "batched native fit diverged from the per-member engine"
    )
    stats = {
        "n_samples": N_SAMPLES,
        "sample_ratio": SAMPLE_RATIO,
        "dataset_scale": DATASET_SCALE,
        "rounds": ROUNDS,
        "batched": {"wall_sec": batched["wall_sec"], "walls": batched["walls"]},
        "per_member": {"wall_sec": per_member["wall_sec"], "walls": per_member["walls"]},
        "speedup_vs_per_member": per_member["wall_sec"] / batched["wall_sec"],
    }
    fanout_wall = committed_fanout_wall()
    if fanout_wall is not None:
        stats["fanout_basis_wall_sec"] = fanout_wall
        stats["speedup_vs_committed_fanout"] = fanout_wall / batched["wall_sec"]
    return stats


def test_native_ensemble(benchmark):
    from repro.fdet._native import native_available

    if not native_available():
        import pytest

        pytest.skip("native kernel unavailable (no C compiler)")

    stats = run_once(benchmark, measure)

    # batching the members through one kernel call must beat looping the
    # same kernel per member (both sides share every other optimisation)
    assert stats["batched"]["wall_sec"] < stats["per_member"]["wall_sec"], stats

    # the headline: >=3x over the committed fan-out pipeline wall, asserted
    # on the host class the basis was recorded on (same cpu count)
    if os.path.exists(FANOUT_BASELINE_PATH):
        with open(FANOUT_BASELINE_PATH) as handle:
            fanout_meta = json.load(handle).get("meta", {})
        if fanout_meta.get("cpu_count") == os.cpu_count():
            assert stats["speedup_vs_committed_fanout"] >= TARGET_SPEEDUP, stats

    print()
    print(
        f"batched={stats['batched']['wall_sec']:.3f}s  "
        f"per-member={stats['per_member']['wall_sec']:.3f}s  "
        f"({stats['speedup_vs_per_member']:.2f}x)"
    )
    if "speedup_vs_committed_fanout" in stats:
        print(
            f"vs committed fan-out wall {stats['fanout_basis_wall_sec']:.3f}s: "
            f"{stats['speedup_vs_committed_fanout']:.2f}x"
        )


def main(argv: list[str] | None = None) -> int:
    import argparse

    from repro.fdet._native import native_available

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the baseline JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless the batched fit beats the committed fan-out wall {TARGET_SPEEDUP}x",
    )
    args = parser.parse_args(argv)
    stats = measure()
    print(json.dumps(stats, indent=2))
    if args.update:
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        stats["meta"] = {"cpu_count": os.cpu_count(), "native_kernel": native_available()}
        with open(BASELINE_PATH, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        speedup = stats.get("speedup_vs_committed_fanout")
        if speedup is None:
            print("no committed fan-out baseline to check against", file=sys.stderr)
            return 2
        if speedup < TARGET_SPEEDUP:
            print(
                f"FAILED: batched fit is only {speedup:.2f}x of the committed "
                f"fan-out wall (target {TARGET_SPEEDUP}x)",
                file=sys.stderr,
            )
            return 1
        print(f"ok: {speedup:.2f}x >= {TARGET_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
