"""Legacy setuptools shim.

This environment is offline and lacks the ``wheel`` package, so PEP 660
editable installs (which need ``bdist_wheel``) fail. Keeping a ``setup.py``
lets ``pip install -e . --no-build-isolation`` use the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
