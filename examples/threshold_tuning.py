"""Tuning the voting threshold T as a business knob (paper §V-D3).

A risk-control team has two regimes:

* **conservative** — flagged accounts are frozen automatically, so false
  positives are expensive: pick the smallest detection set whose precision
  clears a floor;
* **aggressive** — flagged accounts only go to manual review, so recall is
  what matters: pick the largest set whose precision stays above a (lower)
  floor.

Because EnsemFDet's precision rises and recall falls *monotonically* with
T (paper Fig. 9), both picks are simple scans over one smooth curve — the
practicability property Fraudar lacks.

Run with::

    python examples/threshold_tuning.py
"""

from __future__ import annotations

from repro import (
    EnsemFDet,
    EnsemFDetConfig,
    RandomEdgeSampler,
    ensemble_threshold_curve,
    make_jd_dataset,
)
from repro.fdet import FdetConfig
from repro.metrics import CurvePoint


def pick_conservative(curve: list[CurvePoint], precision_floor: float) -> CurvePoint | None:
    """Highest-precision point above the floor with the *fewest* flags."""
    eligible = [p for p in curve if p.precision >= precision_floor and p.n_detected > 0]
    return min(eligible, key=lambda p: p.n_detected) if eligible else None


def pick_aggressive(curve: list[CurvePoint], precision_floor: float) -> CurvePoint | None:
    """Largest detection set whose precision still clears the floor."""
    eligible = [p for p in curve if p.precision >= precision_floor and p.n_detected > 0]
    return max(eligible, key=lambda p: p.recall) if eligible else None


def main() -> None:
    dataset = make_jd_dataset(2, scale=0.3, seed=0)
    print(f"dataset {dataset.name}: {dataset.graph.n_users} PINs, "
          f"{len(dataset.blacklist)} blacklisted\n")

    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.25),
        n_samples=20,
        fdet=FdetConfig(max_blocks=12),
        executor="process",
        seed=0,
    )
    result = EnsemFDet(config).fit(dataset.graph)
    curve = ensemble_threshold_curve(result, dataset.blacklist)

    print(" T  detected  precision  recall")
    for point in curve:
        if point.n_detected:
            print(f"{point.threshold:3.0f}  {point.n_detected:8d}  "
                  f"{point.precision:9.3f}  {point.recall:6.3f}")

    conservative = pick_conservative(curve, precision_floor=0.25)
    aggressive = pick_aggressive(curve, precision_floor=0.15)

    print("\nregime picks:")
    if conservative:
        print(f"  conservative (P >= 0.25): T={conservative.threshold:.0f} -> "
              f"{conservative.n_detected} flags, P={conservative.precision:.3f}, "
              f"R={conservative.recall:.3f}")
    if aggressive:
        print(f"  aggressive   (P >= 0.15): T={aggressive.threshold:.0f} -> "
              f"{aggressive.n_detected} flags, P={aggressive.precision:.3f}, "
              f"R={aggressive.recall:.3f}")

    # sanity: the monotonicity that makes these scans valid
    recalls = [p.recall for p in curve]
    assert recalls == sorted(recalls, reverse=True), "recall must fall with T"
    print("\nrecall is monotone in T — the curve is a safe tuning surface.")


if __name__ == "__main__":
    main()
