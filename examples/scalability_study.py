"""Scalability study: EnsemFDet vs Fraudar as the graph grows (Table III).

Measures wall-clock of both methods across dataset sizes and executor
backends, reporting the speedup and the theoretical ``S x T(Fraudar)``
bound from the paper.

Run with::

    python examples/scalability_study.py [--sizes 0.1 0.2 0.4]
"""

from __future__ import annotations

import argparse

from repro import EnsemFDet, EnsemFDetConfig, FraudarDetector, RandomEdgeSampler, make_jd_dataset
from repro.fdet import FdetConfig
from repro.parallel import ExecutorMode, time_callable

SAMPLE_RATIO = 0.2
N_SAMPLES = 16


def run_ensemble(graph, executor: str) -> float:
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(SAMPLE_RATIO),
        n_samples=N_SAMPLES,
        fdet=FdetConfig(max_blocks=12),
        executor=executor,
        seed=0,
    )
    return time_callable(EnsemFDet(config).fit, graph).seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=float, nargs="+", default=[0.1, 0.2, 0.4])
    args = parser.parse_args()

    header = (f"{'scale':>6} {'edges':>9} {'fraudar_s':>10} {'serial_s':>9} "
              f"{'process_s':>10} {'speedup':>8} {'S*fraudar':>10}")
    print(header)
    print("-" * len(header))
    for scale in args.sizes:
        dataset = make_jd_dataset(3, scale=scale, seed=0)
        graph = dataset.graph

        fraudar_s = time_callable(
            FraudarDetector(n_blocks=12).detect, graph
        ).seconds
        serial_s = run_ensemble(graph, ExecutorMode.SERIAL)
        process_s = run_ensemble(graph, ExecutorMode.PROCESS)

        print(
            f"{scale:>6.2f} {graph.n_edges:>9} {fraudar_s:>10.2f} {serial_s:>9.2f} "
            f"{process_s:>10.2f} {fraudar_s / process_s:>8.2f} "
            f"{SAMPLE_RATIO * fraudar_s:>10.2f}"
        )

    print(
        "\nthe paper's bound: Time(EnsemFDet) < S x Time(Fraudar) once the pool"
        "\namortises its overhead — watch the last two columns converge as the"
        "\ngraph grows (paper Table III reports ~10x at their 50x-larger scale)."
    )


if __name__ == "__main__":
    main()
