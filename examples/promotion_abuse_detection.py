"""Promotion-abuse detection on a JD-like transaction snapshot.

The scenario from the paper's introduction: an e-commerce platform runs a
discount campaign; fraud rings register batches of accounts that make bulk
purchases at a small set of colluding merchants. This example generates a
realistic (heavy-tailed, label-noisy) snapshot and compares all four
detection methods the paper evaluates.

Run with::

    python examples/promotion_abuse_detection.py [--scale 0.3]
"""

from __future__ import annotations

import argparse

from repro import (
    EnsemFDet,
    EnsemFDetConfig,
    FBoxDetector,
    FraudarDetector,
    RandomEdgeSampler,
    SpokenDetector,
    auc_pr,
    best_f1,
    ensemble_threshold_curve,
    fraudar_block_curve,
    make_jd_dataset,
    score_curve,
)
from repro.fdet import FdetConfig
from repro.parallel import time_callable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3, help="dataset scale (1.0 = 1/50 of the paper)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = make_jd_dataset(1, scale=args.scale, seed=args.seed)
    graph, blacklist = dataset.graph, dataset.blacklist
    print(f"dataset {dataset.name}: {graph.n_users} PINs, {graph.n_merchants} merchants, "
          f"{graph.n_edges} purchases, {len(blacklist)} blacklisted PINs")
    print("note: the blacklist is noisy (manual-review noise), so no method can reach F1=1\n")

    rows = []

    # EnsemFDet — sample, detect in parallel, vote
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.25),
        n_samples=16,
        fdet=FdetConfig(max_blocks=12),
        executor="process",
        seed=args.seed,
    )
    timing = time_callable(EnsemFDet(config).fit, graph)
    curve = ensemble_threshold_curve(timing.value, blacklist)
    rows.append(("EnsemFDet", curve, timing.seconds))

    # Fraudar — sequential dense-block extraction on the full graph
    timing = time_callable(FraudarDetector(n_blocks=12).detect, graph)
    rows.append(("Fraudar", fraudar_block_curve(timing.value, blacklist), timing.seconds))

    # SpokEn — SVD eigenspokes
    timing = time_callable(SpokenDetector(n_components=25).score_users, graph)
    rows.append(("SpokEn", score_curve(graph, timing.value, blacklist), timing.seconds))

    # FBox — SVD reconstruction error
    timing = time_callable(FBoxDetector(n_components=25).score_users, graph)
    rows.append(("FBox", score_curve(graph, timing.value, blacklist), timing.seconds))

    print(f"{'method':<10} {'best F1':>8} {'precision':>10} {'recall':>8} {'AUC-PR':>8} {'seconds':>8}")
    for name, curve, seconds in rows:
        best = best_f1(curve)
        print(
            f"{name:<10} {best.f1:8.3f} {best.precision:10.3f} {best.recall:8.3f} "
            f"{auc_pr(curve):8.3f} {seconds:8.2f}"
        )

    print("\nexpected shape (paper Fig. 3): EnsemFDet ~ Fraudar >> SpokEn, FBox;")
    print("EnsemFDet's curve has one point per threshold T — Fraudar only one per block.")


if __name__ == "__main__":
    main()
