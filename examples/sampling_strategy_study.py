"""Choosing a sampling strategy for a new graph (paper §IV-A).

Given an unfamiliar bipartite graph, which side should one-side node
sampling pick, and how do the samplers compare on (a) how much structure a
sample retains and (b) end-task detection quality? This example walks the
paper's "task-oriented" and "retain topology" principles on a JD-like
dataset.

Run with::

    python examples/sampling_strategy_study.py
"""

from __future__ import annotations

from repro import (
    EnsemFDet,
    EnsemFDetConfig,
    best_f1,
    ensemble_threshold_curve,
    make_jd_dataset,
    make_sampler,
)
from repro.fdet import FdetConfig
from repro.graph import describe
from repro.sampling import PAPER_FIG5_NAMES, recommend_side

RATIO = 0.25
N_SAMPLES = 16


def main() -> None:
    dataset = make_jd_dataset(3, scale=0.2, seed=0)
    graph = dataset.graph
    stats = describe(graph)
    print(f"dataset {dataset.name}:")
    print(f"  avg PIN degree      = {stats.avg_user_degree:.2f}")
    print(f"  avg merchant degree = {stats.avg_merchant_degree:.2f}")
    print(f"  recommended ONS side (retain-topology rule): {recommend_side(graph)!r}\n")

    print(f"{'sampler':<24} {'sample edges':>12} {'sample nodes':>12} {'best F1':>8}")
    for name in PAPER_FIG5_NAMES:
        sampler = make_sampler(name, RATIO)

        # (a) what one sample retains
        sample = sampler.sample(graph, rng=0)

        # (b) end-task quality through the full ensemble
        config = EnsemFDetConfig(
            sampler=sampler,
            n_samples=N_SAMPLES,
            fdet=FdetConfig(max_blocks=12),
            executor="process",
            seed=0,
        )
        result = EnsemFDet(config).fit(graph)
        best = best_f1(ensemble_threshold_curve(result, dataset.blacklist))
        print(f"{name:<24} {sample.n_edges:>12} {sample.n_nodes:>12} {best.f1:>8.3f}")

    print(
        "\nnotes: two-side sampling keeps ~S^2 of the edges at ratio S (needs a larger"
        "\nS or more samples); merchant-side samples can exceed S x |E| because popular"
        "\nmerchants drag in whole crowds — exactly the trade-offs of paper §IV-A."
    )


if __name__ == "__main__":
    main()
