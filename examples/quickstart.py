"""Quickstart: detect planted fraud rings in a small transaction graph.

Builds the bundled toy dataset (a sparse purchase graph with three planted
fraud blocks), runs EnsemFDet, and evaluates against the ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EnsemFDet,
    EnsemFDetConfig,
    RandomEdgeSampler,
    best_f1,
    ensemble_threshold_curve,
    toy_dataset,
)
from repro.fdet import FdetConfig


def main() -> None:
    # 1. data: ~650 users x ~430 merchants, three dense fraud blocks planted
    dataset = toy_dataset(seed=0)
    graph = dataset.graph
    print(f"graph: {graph.n_users} users, {graph.n_merchants} merchants, {graph.n_edges} edges")
    print(f"ground truth: {len(dataset.blacklist)} blacklisted users\n")

    # 2. configure the ensemble: sample 40% of edges, 24 times, FDET each
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4),   # sampling method M with ratio S
        n_samples=24,                     # ensemble size N
        fdet=FdetConfig(max_blocks=8),    # blocks per sampled graph before truncation
        executor="process",               # the N detections run in parallel
        seed=0,
    )
    result = EnsemFDet(config).fit(graph)
    print(
        f"fitted in {result.total_seconds:.2f}s "
        f"(sampling {result.sampling_seconds:.2f}s + detection {result.detection_seconds:.2f}s)"
    )

    # 3. pick an operating point: sweep the voting threshold T
    curve = ensemble_threshold_curve(result, dataset.blacklist)
    print("\n T  detected  precision  recall    F1")
    for point in curve:
        if point.n_detected == 0:
            continue
        marker = ""
        print(
            f"{point.threshold:3.0f}  {point.n_detected:8d}  {point.precision:9.3f}"
            f"  {point.recall:6.3f}  {point.f1:5.3f}{marker}"
        )

    best = best_f1(curve)
    print(f"\nbest operating point: T={best.threshold:.0f} -> F1={best.f1:.3f}")

    # 4. final detection at the chosen threshold
    detection = result.detect(int(best.threshold))
    print(f"flagged users: {detection.n_users}, flagged merchants: {detection.n_merchants}")
    hits = detection.user_set() & dataset.blacklist.labels
    print(f"true positives among flagged users: {len(hits)}")


if __name__ == "__main__":
    main()
