"""Post-detection ring analysis: from flagged users to fraud-group structure.

Detection gives a flat set of suspicious PINs; investigators want the
*groups*. This example chains three views the library provides:

1. EnsemFDet soft votes — a continuous suspiciousness score per PIN
   (block-density-weighted voting, finer than integer vote counts);
2. the user-user co-purchase projection — fraud rings appear as near-cliques
   among the flagged users;
3. connected components of the flagged subgraph — the recovered groups,
   compared against the planted ones.

Run with::

    python examples/ring_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import EnsemFDet, EnsemFDetConfig, RandomEdgeSampler, toy_dataset
from repro.ensemble import soft_threshold_sweep, soft_votes_from_detections
from repro.fdet import FdetConfig
from repro.graph import connected_components, project_users


def main() -> None:
    dataset = toy_dataset(seed=0)
    graph = dataset.graph

    # 1. fit the ensemble and accumulate density-weighted votes
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4),
        n_samples=24,
        fdet=FdetConfig(max_blocks=8),
        executor="process",
        seed=0,
    )
    result = EnsemFDet(config).fit(graph)
    table = soft_votes_from_detections(list(result.sample_detections))

    print("top-10 suspicious PINs by soft score:")
    ranked = sorted(table.user_scores.items(), key=lambda kv: -kv[1])
    truth = set(dataset.clean_fraud_labels.tolist())
    for label, score in ranked[:10]:
        tag = "FRAUD" if label in truth else "     "
        print(f"  pin {label:4d}  score={score:6.2f}  {tag}")

    # 2. choose an operating point on the soft sweep (aim: high precision)
    sweep = soft_threshold_sweep(table, n_points=30)
    flagged = None
    for threshold, detection in reversed(sweep):  # strictest first
        if detection.n_users >= 40:
            flagged = detection
            print(f"\noperating point: soft threshold {threshold:.2f} "
                  f"-> {detection.n_users} flagged PINs")
            break
    if flagged is None:
        threshold, flagged = sweep[0]
        print(f"\nfallback operating point: {threshold:.2f}")

    # 3. group structure: flagged-user co-purchase subgraph components
    flagged_users = flagged.user_labels
    sub = graph.induced_subgraph(users=flagged_users)
    user_comp, _, n_components = connected_components(sub)
    print(f"flagged subgraph: {sub.n_users} PINs across {n_components} components")

    groups: dict[int, list[int]] = {}
    for local, component in enumerate(user_comp.tolist()):
        groups.setdefault(component, []).append(int(sub.user_labels[local]))
    big_groups = [members for members in groups.values() if len(members) >= 5]
    big_groups.sort(key=len, reverse=True)

    print(f"\nrecovered groups (>=5 members): {len(big_groups)} "
          f"(planted rings: 3)")
    for i, members in enumerate(big_groups):
        overlap = len(set(members) & truth)
        print(f"  group {i}: {len(members)} PINs, {overlap} planted fraud")

    # 4. ring cohesion in the co-purchase projection
    projection = project_users(graph, max_merchant_degree=50)
    for i, members in enumerate(big_groups[:3]):
        idx = np.array(members)
        block = projection[np.ix_(idx, idx)]
        n = idx.size
        density = block.nnz / (n * (n - 1)) if n > 1 else 0.0
        print(f"  group {i} co-purchase clique density: {density:.2f}")


if __name__ == "__main__":
    main()
