"""Smoke + shape tests for every experiment driver at tiny scale.

Each driver must run end-to-end, produce well-formed rows, and satisfy the
cheap structural assertions that the corresponding paper artifact implies.
Heavier qualitative assertions live in the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import all_experiment_ids, get_experiment
from repro.experiments.registry import EXPERIMENTS

SCALE = "tiny"


@pytest.fixture(scope="module")
def results():
    """Run every registered experiment once (module-scoped: they are slow)."""
    return {
        experiment_id: get_experiment(experiment_id).run(scale=SCALE, seed=0)
        for experiment_id in all_experiment_ids()
    }


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(all_experiment_ids()) == set(EXPERIMENTS)
        assert len(all_experiment_ids()) == 11

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_ids_match_classes(self):
        for experiment_id, cls in EXPERIMENTS.items():
            assert cls.id == experiment_id
            assert cls.paper_artifact


class TestAllDriversRun:
    def test_everything_produced_rows(self, results):
        for experiment_id, result in results.items():
            assert result.rows, f"{experiment_id} produced no rows"
            assert result.experiment == experiment_id

    def test_metadata_has_scale(self, results):
        for result in results.values():
            assert result.meta.get("scale") == SCALE


class TestTable1:
    def test_three_datasets(self, results):
        rows = results["table1"].rows
        assert len(rows) == 3
        assert all(row["fraud_pin"] > 0 for row in rows)
        assert all(row["edge"] > row["node_merchant"] for row in rows)


class TestFig1:
    def test_scores_positive_and_kept_prefix(self, results):
        rows = results["fig1"].rows
        assert all(row["score"] > 0 for row in rows)
        # "kept" must be a prefix property: kept implies block <= k_hat
        for row in rows:
            assert row["kept"] == (row["block"] <= row["k_hat"])

    def test_first_block_scores_highest_per_sample(self, results):
        rows = results["fig1"].rows
        by_sample: dict[int, list] = {}
        for row in rows:
            by_sample.setdefault(row["sample"], []).append(row)
        for sample_rows in by_sample.values():
            first = next(r for r in sample_rows if r["block"] == 1)
            assert first["score"] == max(r["score"] for r in sample_rows)


class TestFig3:
    def test_all_methods_on_all_datasets(self, results):
        rows = results["fig3"].rows
        methods = {row["method"] for row in rows}
        assert methods == {"ensemfdet", "fraudar", "spoken", "fbox"}
        datasets = {row["dataset"] for row in rows}
        assert len(datasets) == 3

    def test_rates_bounded(self, results):
        for row in results["fig3"].rows:
            assert 0 <= row["precision"] <= 1
            assert 0 <= row["recall"] <= 1


class TestFig4:
    def test_gap_metadata_present(self, results):
        gaps = results["fig4"].meta["gaps"]
        assert len(gaps) == 3
        for value in gaps.values():
            assert value["fraudar_max_gap"] >= 0
            assert value["ensemfdet_max_gap"] >= 0


class TestTable3:
    def test_timings_positive(self, results):
        for row in results["table3"].rows:
            assert row["ensemfdet_sec"] > 0
            assert row["fraudar_sec"] > 0
            assert row["paper_speedup"] > 5


class TestFig5:
    def test_all_four_samplers(self, results):
        samplers = {row["sampler"] for row in results["fig5"].rows}
        assert len(samplers) == 4


class TestFig6:
    def test_two_variants_and_khat_recorded(self, results):
        result = results["fig6"]
        variants = {row["variant"] for row in result.rows}
        assert len(variants) == 2
        assert result.meta["max_observed_k_hat"] >= 1


class TestFig7:
    def test_n_sweep_shape(self, results):
        ns = sorted({row["n_samples"] for row in results["fig7"].rows})
        assert len(ns) >= 3  # tiny preset may collapse the smallest two
        assert all(ns[i] < ns[i + 1] for i in range(len(ns) - 1))


class TestFig8:
    def test_repetition_roughly_constant(self, results):
        rows = results["fig8"].rows
        repetitions = {
            round(row["sample_ratio"] * row["n_samples"], 1) for row in rows
        }
        # allow rounding slack: all repetition rates within a factor ~1.5
        assert max(repetitions) / min(repetitions) < 1.6


class TestFig9:
    def test_monotone_t_behaviour(self, results):
        rows = [r for r in results["fig9"].rows if r["dataset"].startswith("jd1")]
        rows.sort(key=lambda r: r["T"])
        detected = [r["n_detected"] for r in rows]
        recalls = [r["recall"] for r in rows]
        assert detected == sorted(detected, reverse=True)
        assert recalls == sorted(recalls, reverse=True)


class TestScn:
    def test_full_scenario_coverage(self, results):
        from repro.scenarios import SCENARIO_NAMES

        rows = results["scn"].rows
        assert {row["scenario"] for row in rows} == set(SCENARIO_NAMES)
        assert {row["detector"] for row in rows} == {"ensemfdet", "incremental"}

    def test_metrics_bounded(self, results):
        for row in results["scn"].rows:
            assert 0.0 <= row["best_f1"] <= 1.0
            assert 0.0 <= row["auc_pr"] <= 1.0
            assert 0.0 <= row["precision_at_k"] <= 1.0

    def test_grid_axes_in_meta(self, results):
        meta = results["scn"].meta
        assert meta["grid"]["detectors"] == ["ensemfdet", "incremental"]
        assert meta["grid"]["intensities"] == [1.0]  # tiny preset collapses the sweep
