"""Tests for experiment plumbing: common helpers and the runner."""

from __future__ import annotations

import json

import pytest

from repro.experiments import SCALES, run_experiments
from repro.experiments.common import (
    dataset_for,
    fdet_config_for,
    fit_ensemble,
    threshold_grid,
)
from repro.experiments.runner import main as runner_main
from repro.fdet import FixedKRule
from repro.sampling import RandomEdgeSampler


class TestThresholdGrid:
    def test_small_n_full_grid(self):
        assert threshold_grid(5) == [1, 2, 3, 4, 5]

    def test_large_n_subsampled(self):
        grid = threshold_grid(200, max_points=20)
        assert len(grid) <= 20
        assert grid[0] >= 1
        assert grid[-1] <= 200
        assert grid == sorted(grid)

    def test_boundary(self):
        assert threshold_grid(1) == [1]


class TestCommonHelpers:
    def test_dataset_for_uses_preset_scale(self):
        preset = SCALES["tiny"]
        dataset = dataset_for(1, preset, seed=0)
        assert dataset.params["scale"] == preset.dataset_scale

    def test_fdet_config_for_truncation_override(self):
        preset = SCALES["tiny"]
        config = fdet_config_for(preset, truncation=FixedKRule(3))
        assert isinstance(config.truncation, FixedKRule)
        assert config.max_blocks == preset.max_blocks

    def test_fit_ensemble_overrides(self):
        preset = SCALES["tiny"]
        dataset = dataset_for(1, preset, seed=0)
        result = fit_ensemble(
            dataset,
            preset,
            seed=0,
            sampler=RandomEdgeSampler(0.5),
            n_samples=3,
            executor="serial",
        )
        assert result.n_samples == 3
        assert result.config.sampler.ratio == 0.5


class TestRunner:
    def test_run_experiments_writes_artifacts(self, tmp_path):
        results = run_experiments(["table1"], scale="tiny", seed=0, outdir=tmp_path)
        assert len(results) == 1
        assert (tmp_path / "table1.csv").exists()
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment"] == "table1"
        assert "wall_seconds" in payload["meta"]

    def test_runner_main_cli(self, capsys, tmp_path):
        code = runner_main(["table1", "--scale", "tiny", "--outdir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert (tmp_path / "table1.json").exists()

    def test_runner_unknown_experiment(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_experiments(["fig42"], scale="tiny")
