"""Tests for the experiment infrastructure."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import SCALES, ExperimentResult, render_table
from repro.experiments.base import resolve_scale


class TestScalePresets:
    def test_known_presets(self):
        assert {"tiny", "small", "full"} <= set(SCALES)

    def test_resolve_by_name(self):
        assert resolve_scale("tiny").name == "tiny"

    def test_resolve_passthrough(self):
        preset = SCALES["small"]
        assert resolve_scale(preset) is preset

    def test_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_scale("gigantic")

    def test_full_matches_paper_parameters(self):
        full = SCALES["full"]
        assert full.fraudar_blocks == 30  # paper Table III
        assert full.svd_components == 25  # paper SpokEn setting


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment="demo",
            title="Demo",
            rows=[{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25, "c": "x"}],
            meta={"seed": 0},
        )

    def test_render_contains_all_columns(self):
        text = self.make().render()
        assert "a" in text and "b" in text and "c" in text
        assert "demo" in text

    def test_render_empty(self):
        empty = ExperimentResult(experiment="e", title="t", rows=[])
        assert "(no rows)" in empty.render()

    def test_render_truncation(self):
        result = ExperimentResult(
            experiment="e", title="t", rows=[{"x": i} for i in range(100)]
        )
        text = result.render(max_rows=5)
        assert "more rows" in text

    def test_to_json(self, tmp_path):
        path = tmp_path / "out.json"
        self.make().to_json(path)
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "demo"
        assert len(payload["rows"]) == 2

    def test_to_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        self.make().to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,b,c"
        assert len(lines) == 3

    def test_series(self):
        assert self.make().series("a") == [1, 2]
        assert self.make().series("c") == ["x"]


class TestRenderTable:
    def test_alignment(self):
        text = render_table([{"col": 1}, {"col": 22222}])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all rows same width

    def test_float_formatting(self):
        text = render_table([{"v": 0.123456789}])
        assert "0.1235" in text
