"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import FraudBlockSpec, inject_fraud_blocks, toy_dataset, uniform_bipartite
from repro.graph import BipartiteGraph


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph() -> BipartiteGraph:
    """4 users x 3 merchants, 6 edges — hand-checkable."""
    return BipartiteGraph.from_edges(
        [(0, 0), (0, 1), (1, 0), (2, 2), (3, 1), (3, 2)],
        n_users=4,
        n_merchants=3,
    )


@pytest.fixture
def clique_graph() -> BipartiteGraph:
    """Complete 5x4 bipartite graph — the densest possible block."""
    return BipartiteGraph.from_edges(
        [(u, v) for u in range(5) for v in range(4)], n_users=5, n_merchants=4
    )


@pytest.fixture
def planted_graph(rng):
    """A sparse background with one dense planted block; returns (graph, truth)."""
    background = uniform_bipartite(200, 120, 350, rng=rng)
    injection = inject_fraud_blocks(
        background,
        [FraudBlockSpec(n_users=15, n_merchants=6, density=0.8, reuse_merchant_fraction=0.0)],
        rng,
    )
    return injection.graph, injection


@pytest.fixture(scope="session")
def toy():
    """The shared deterministic toy dataset (session-scoped: it is immutable)."""
    return toy_dataset(seed=0)
