"""Behavioural tests for the EnsemFDet orchestrator (paper Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import EnsemFDet, EnsemFDetConfig, detect_on_samples
from repro.errors import DetectionError
from repro.fdet import FdetConfig
from repro.parallel import ExecutorMode
from repro.sampling import OneSideNodeSampler, RandomEdgeSampler, Side


def small_config(**overrides):
    defaults = dict(
        sampler=RandomEdgeSampler(0.4),
        n_samples=10,
        fdet=FdetConfig(max_blocks=6),
        seed=42,
    )
    defaults.update(overrides)
    return EnsemFDetConfig(**defaults)


class TestConfig:
    def test_invalid_n_samples(self):
        with pytest.raises(DetectionError):
            EnsemFDetConfig(n_samples=0)

    def test_repetition_rate(self):
        config = EnsemFDetConfig(sampler=RandomEdgeSampler(0.1), n_samples=80)
        assert config.repetition_rate == pytest.approx(8.0)

    def test_defaults_match_paper(self):
        config = EnsemFDetConfig()
        assert config.n_samples == 80
        assert config.sampler.ratio == 0.1


class TestFit:
    def test_fit_produces_votes(self, toy):
        result = EnsemFDet(small_config()).fit(toy.graph)
        assert result.n_samples == 10
        assert result.vote_table.max_user_votes() >= 1
        assert len(result.sample_detections) == 10

    def test_seeded_fit_reproducible(self, toy):
        a = EnsemFDet(small_config()).fit(toy.graph)
        b = EnsemFDet(small_config()).fit(toy.graph)
        assert a.vote_table.user_votes == b.vote_table.user_votes

    def test_different_seeds_differ(self, toy):
        a = EnsemFDet(small_config(seed=1)).fit(toy.graph)
        b = EnsemFDet(small_config(seed=2)).fit(toy.graph)
        assert a.vote_table.user_votes != b.vote_table.user_votes

    def test_detect_threshold_sweep_monotone(self, toy):
        result = EnsemFDet(small_config()).fit(toy.graph)
        sizes = [result.detect(t).n_users for t in range(1, 11)]
        assert sizes == sorted(sizes, reverse=True)

    def test_sweep_thresholds_default_grid(self, toy):
        result = EnsemFDet(small_config()).fit(toy.graph)
        sweep = result.sweep_thresholds()
        assert [t for t, _ in sweep] == list(range(1, 11))

    def test_fit_detect_convenience(self, toy):
        detection = EnsemFDet(small_config()).fit_detect(toy.graph, threshold=3)
        assert detection.n_users > 0

    def test_votes_bounded_by_n_samples(self, toy):
        result = EnsemFDet(small_config()).fit(toy.graph)
        assert result.vote_table.max_user_votes() <= result.n_samples

    def test_recovers_planted_fraud_users(self, toy):
        """End-to-end quality gate on the clean-label toy dataset."""
        config = small_config(n_samples=24, sampler=RandomEdgeSampler(0.4))
        result = EnsemFDet(config).fit(toy.graph)
        truth = set(toy.clean_fraud_labels.tolist())
        best_f1 = 0.0
        for t in range(1, 25):
            detected = set(result.detect(t).user_labels.tolist())
            if not detected:
                continue
            precision = len(detected & truth) / len(detected)
            recall = len(detected & truth) / len(truth)
            if precision + recall:
                best_f1 = max(best_f1, 2 * precision * recall / (precision + recall))
        assert best_f1 >= 0.6

    def test_block_score_series_shape(self, toy):
        result = EnsemFDet(small_config()).fit(toy.graph)
        series = result.block_score_series()
        assert len(series) == result.n_samples
        for scores in series:
            assert np.all(scores >= 0)

    def test_track_appearances(self, toy):
        result = EnsemFDet(small_config(track_appearances=True)).fit(toy.graph)
        assert result.vote_table.user_appearances is not None
        # a node cannot be detected more often than it appeared
        for label, votes in result.vote_table.user_votes.items():
            assert votes <= result.vote_table.user_appearances[label]

    def test_memberships_not_kept_by_default(self, toy):
        """With track_appearances=False nothing reads the sampled label
        arrays, so the fit must not keep them alive in its result."""
        result = EnsemFDet(small_config()).fit(toy.graph)
        for detection in result.sample_detections:
            assert detection.sample_users is None
            assert detection.sample_merchants is None

    def test_memberships_kept_when_appearances_tracked(self, toy):
        result = EnsemFDet(small_config(track_appearances=True)).fit(toy.graph)
        for detection in result.sample_detections:
            assert detection.sample_users is not None
            assert detection.sample_merchants is not None

    def test_contradictory_member_tracking_rejected(self, toy):
        detector = EnsemFDet(small_config(track_appearances=True))
        with pytest.raises(DetectionError, match="track_members"):
            detector.fit(toy.graph, track_members=False)

    def test_timings_populated(self, toy):
        result = EnsemFDet(small_config()).fit(toy.graph)
        assert result.sampling_seconds >= 0
        assert result.detection_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.sampling_seconds + result.detection_seconds
        )

    def test_ons_sampler_variant(self, toy):
        config = small_config(sampler=OneSideNodeSampler(0.4, Side.MERCHANT))
        result = EnsemFDet(config).fit(toy.graph)
        assert result.vote_table.max_user_votes() >= 1


class TestExecutors:
    @pytest.mark.parametrize("mode", [ExecutorMode.SERIAL, ExecutorMode.THREAD, ExecutorMode.PROCESS])
    def test_executors_agree(self, toy, mode):
        config = small_config(executor=mode, n_samples=6)
        result = EnsemFDet(config).fit(toy.graph)
        serial = EnsemFDet(small_config(executor=ExecutorMode.SERIAL, n_samples=6)).fit(toy.graph)
        assert result.vote_table.user_votes == serial.vote_table.user_votes

    def test_detect_on_samples_order_preserved(self, toy):
        samples = RandomEdgeSampler(0.3).sample_many(toy.graph, 4, rng=0)
        serial = detect_on_samples(samples, FdetConfig(max_blocks=4), mode=ExecutorMode.SERIAL)
        threaded = detect_on_samples(samples, FdetConfig(max_blocks=4), mode=ExecutorMode.THREAD)
        for a, b in zip(serial, threaded):
            assert a.result.k_hat == b.result.k_hat
            assert np.array_equal(a.result.detected_users(), b.result.detected_users())

    def test_chunked_process_matches_serial(self, toy):
        samples = RandomEdgeSampler(0.3).sample_many(toy.graph, 7, rng=1)
        config = FdetConfig(max_blocks=4)
        serial = detect_on_samples(samples, config, mode=ExecutorMode.SERIAL)
        chunked = detect_on_samples(samples, config, mode=ExecutorMode.PROCESS, n_workers=3)
        assert len(chunked) == len(serial)
        for a, b in zip(serial, chunked):
            assert a.sample_users == b.sample_users
            assert np.array_equal(a.result.detected_users(), b.result.detected_users())

    def test_engine_override_matches(self, toy):
        samples = RandomEdgeSampler(0.3).sample_many(toy.graph, 3, rng=2)
        config = FdetConfig(max_blocks=4, engine="fast")
        fast = detect_on_samples(samples, config, mode=ExecutorMode.SERIAL)
        reference = detect_on_samples(
            samples, config, mode=ExecutorMode.SERIAL, engine="reference"
        )
        for a, b in zip(fast, reference):
            assert np.array_equal(a.result.detected_users(), b.result.detected_users())
            assert np.array_equal(a.result.detected_merchants(), b.result.detected_merchants())

    def test_reusable_pool_fit(self, toy):
        from repro.parallel import ReusablePool

        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            config = small_config(executor=ExecutorMode.PROCESS, n_samples=6)
            pooled = EnsemFDet(config, pool=pool).fit(toy.graph)
            again = EnsemFDet(config, pool=pool).fit(toy.graph)  # warm workers reused
        serial = EnsemFDet(small_config(executor=ExecutorMode.SERIAL, n_samples=6)).fit(toy.graph)
        assert pooled.vote_table.user_votes == serial.vote_table.user_votes
        assert again.vote_table.user_votes == serial.vote_table.user_votes
