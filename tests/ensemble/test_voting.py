"""Unit tests for vote tallying and aggregation (paper Definition 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import (
    VoteTable,
    majority_vote,
    normalized_majority_vote,
)
from repro.errors import AggregationError


def table_from(user_sets, merchant_sets=None):
    merchant_sets = merchant_sets if merchant_sets is not None else [[] for _ in user_sets]
    return VoteTable.from_detections(user_sets, merchant_sets)


class TestVoteTable:
    def test_tally_counts(self):
        table = table_from([[1, 2], [2, 3], [2]])
        assert table.n_samples == 3
        assert table.user_votes[2] == 3
        assert table.user_votes[1] == 1
        assert table.user_votes[99] == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AggregationError):
            VoteTable.from_detections([[1]], [[], []])

    def test_max_user_votes(self):
        table = table_from([[1], [1], [2]])
        assert table.max_user_votes() == 2
        assert table_from([[], []]).max_user_votes() == 0

    def test_vote_histogram(self):
        table = table_from([[1, 2], [1], [1]])
        assert table.vote_histogram() == {1: 1, 3: 1}

    def test_merchant_votes_tallied(self):
        table = VoteTable.from_detections([[], []], [[7], [7]])
        assert table.merchant_votes[7] == 2


class TestMajorityVote:
    def test_threshold_filters(self):
        table = table_from([[1, 2], [2, 3], [2, 3]])
        result = majority_vote(table, threshold=2)
        assert result.user_labels.tolist() == [2, 3]

    def test_threshold_one_is_union(self):
        table = table_from([[1], [5], [3]])
        assert majority_vote(table, 1).user_labels.tolist() == [1, 3, 5]

    def test_threshold_above_all_votes_empty(self):
        table = table_from([[1], [1]])
        result = majority_vote(table, 3)
        assert result.n_users == 0

    def test_invalid_threshold(self):
        with pytest.raises(AggregationError):
            majority_vote(table_from([[1]]), 0)

    def test_monotone_in_threshold(self):
        rng = np.random.default_rng(0)
        sets = [rng.choice(50, size=10, replace=False).tolist() for _ in range(20)]
        table = table_from(sets)
        previous = None
        for threshold in range(1, 21):
            detected = set(majority_vote(table, threshold).user_labels.tolist())
            if previous is not None:
                assert detected <= previous
            previous = detected

    def test_labels_sorted(self):
        table = table_from([[9, 1, 5]])
        assert majority_vote(table, 1).user_labels.tolist() == [1, 5, 9]


class TestNormalizedVote:
    def test_requires_appearances(self):
        table = table_from([[1]])
        with pytest.raises(AggregationError, match="appearance"):
            normalized_majority_vote(table, 0.5)

    def test_normalisation_rescues_rarely_sampled_nodes(self):
        # node 1: sampled twice, detected twice (ratio 1.0, votes 2)
        # node 2: sampled 4x, detected 2x  (ratio 0.5, votes 2)
        table = VoteTable.from_detections(
            [[1, 2], [1, 2], [], []], [[], [], [], []]
        )
        table.attach_appearances(
            [[1, 2], [1, 2], [2], [2]], [[], [], [], []]
        )
        result = normalized_majority_vote(table, fraction=0.9)
        assert result.user_labels.tolist() == [1]

    def test_min_appearances_suppresses_noise(self):
        table = VoteTable.from_detections([[7], []], [[], []])
        table.attach_appearances([[7], []], [[], []])
        accepted = normalized_majority_vote(table, fraction=0.5, min_appearances=2)
        assert accepted.n_users == 0

    def test_invalid_fraction(self):
        table = table_from([[1]])
        table.attach_appearances([[1]], [[]])
        with pytest.raises(AggregationError):
            normalized_majority_vote(table, 0.0)

    def test_appearance_length_mismatch(self):
        table = table_from([[1]])
        with pytest.raises(AggregationError):
            table.attach_appearances([[1], [2]], [[], []])


class TestDetectionResult:
    def test_empty(self):
        from repro.ensemble import DetectionResult

        empty = DetectionResult.empty()
        assert empty.n_users == 0
        assert empty.user_set() == set()

    def test_sets(self):
        from repro.ensemble import DetectionResult

        result = DetectionResult(
            user_labels=np.array([1, 2]), merchant_labels=np.array([5])
        )
        assert result.user_set() == {1, 2}
        assert result.merchant_set() == {5}
        assert result.n_merchants == 1
