"""Property-based tests for vote aggregation invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ensemble import VoteTable, majority_vote


@st.composite
def detection_rounds(draw):
    """Random per-sample detection label sets."""
    n_samples = draw(st.integers(1, 12))
    label_pool = st.integers(0, 30)
    return [
        draw(st.lists(label_pool, max_size=10, unique=True)) for _ in range(n_samples)
    ]


@given(detection_rounds())
@settings(max_examples=80, deadline=None)
def test_threshold_one_equals_union(rounds):
    table = VoteTable.from_detections(rounds, [[] for _ in rounds])
    detected = set(majority_vote(table, 1).user_labels.tolist())
    union = set()
    for labels in rounds:
        union |= set(labels)
    assert detected == union


@given(detection_rounds())
@settings(max_examples=80, deadline=None)
def test_detection_monotone_decreasing_in_threshold(rounds):
    table = VoteTable.from_detections(rounds, [[] for _ in rounds])
    previous = None
    for threshold in range(1, len(rounds) + 2):
        current = set(majority_vote(table, threshold).user_labels.tolist())
        if previous is not None:
            assert current <= previous
        previous = current


@given(detection_rounds())
@settings(max_examples=80, deadline=None)
def test_votes_never_exceed_n_samples(rounds):
    table = VoteTable.from_detections(rounds, [[] for _ in rounds])
    assert table.max_user_votes() <= table.n_samples
    # threshold above N always yields nothing
    assert majority_vote(table, table.n_samples + 1).n_users == 0


@given(detection_rounds())
@settings(max_examples=60, deadline=None)
def test_vote_histogram_accounts_for_every_voted_label(rounds):
    table = VoteTable.from_detections(rounds, [[] for _ in rounds])
    histogram = table.vote_histogram()
    assert sum(histogram.values()) == len(table.user_votes)
    assert all(1 <= votes <= table.n_samples for votes in histogram)


@given(detection_rounds(), st.permutations(range(12)))
@settings(max_examples=40, deadline=None)
def test_vote_counts_order_invariant(rounds, order):
    """Shuffling the sample order must not change any tally."""
    table = VoteTable.from_detections(rounds, [[] for _ in rounds])
    shuffled = [rounds[i % len(rounds)] for i in order[: len(rounds)]]
    # build a permutation of the actual rounds (order trimmed to length)
    if sorted(map(tuple, map(sorted, shuffled))) != sorted(map(tuple, map(sorted, rounds))):
        return  # the trimmed permutation did not cover all rounds; skip
    reshuffled = VoteTable.from_detections(shuffled, [[] for _ in shuffled])
    assert reshuffled.user_votes == table.user_votes
