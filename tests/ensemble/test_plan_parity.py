"""Bitwise parity of the plan/shared-memory fan-out vs the eager pipeline.

The zero-copy refactor's contract: for every sampler and every executor
backend, ``EnsemFDet.fit`` driven by ``plan_many`` + worker-side
materialization produces **exactly** the subgraphs, per-sample detections
and vote table the historical eager ``sample_many`` pipeline produced —
same RNG consumption, deterministic materialization, byte-for-byte arrays.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.ensemble import (
    EnsemFDet,
    EnsemFDetConfig,
    detect_on_plans,
    detect_on_samples,
)
from repro.ensemble.voting import VoteTable
from repro.fdet import Fdet, FdetConfig
from repro.graph import BipartiteGraph, GraphStore, attached_store, detach_all
from repro.parallel import ExecutorMode, ReusablePool
from repro.sampling import (
    OneSideNodeSampler,
    RandomEdgeSampler,
    Side,
    StableEdgeSampler,
    TwoSideNodeSampler,
    materialize_plan,
    resolve_rng,
)

#: all five sampling variants the registry exposes (plus the reweighted RES)
SAMPLER_FACTORIES = {
    "res": lambda: RandomEdgeSampler(0.35),
    "res_reweight": lambda: RandomEdgeSampler(0.35, reweight=True),
    "ons_user": lambda: OneSideNodeSampler(0.4, Side.USER),
    "ons_merchant": lambda: OneSideNodeSampler(0.4, Side.MERCHANT),
    "tns": lambda: TwoSideNodeSampler(0.6),
    "ses": lambda: StableEdgeSampler(0.35, stripe=32),
}

BACKENDS = (ExecutorMode.SERIAL, ExecutorMode.THREAD, ExecutorMode.PROCESS)


@pytest.fixture(scope="module")
def parent() -> BipartiteGraph:
    """A deterministic weighted graph with a dense corner (~2.5k edges)."""
    rng = np.random.default_rng(7)
    users = rng.integers(0, 300, size=2200)
    merchants = rng.integers(0, 80, size=2200)
    block = [(u, m) for u in range(280, 300) for m in range(70, 80)]
    edge_users = np.concatenate([users, np.array([u for u, _ in block])])
    edge_merchants = np.concatenate([merchants, np.array([m for _, m in block])])
    weights = rng.uniform(0.5, 2.0, size=edge_users.size)
    return BipartiteGraph(300, 80, edge_users, edge_merchants, edge_weights=weights)


def assert_graphs_bitwise_equal(a: BipartiteGraph, b: BipartiteGraph) -> None:
    assert (a.n_users, a.n_merchants) == (b.n_users, b.n_merchants)
    assert np.array_equal(a.edge_users, b.edge_users)
    assert np.array_equal(a.edge_merchants, b.edge_merchants)
    assert (a.edge_weights is None) == (b.edge_weights is None)
    if a.edge_weights is not None:
        # bitwise, not approximate: materialization must not re-derive weights
        assert np.array_equal(a.edge_weights, b.edge_weights)
    assert np.array_equal(a.user_labels, b.user_labels)
    assert np.array_equal(a.merchant_labels, b.merchant_labels)


def assert_detections_bitwise_equal(plan_based, eager) -> None:
    assert len(plan_based) == len(eager)
    for p, e in zip(plan_based, eager):
        assert p.result.k_hat == e.result.k_hat
        assert np.array_equal(p.result.densities, e.result.densities)
        assert np.array_equal(p.result.detected_users(), e.result.detected_users())
        assert np.array_equal(
            p.result.detected_merchants(), e.result.detected_merchants()
        )


def eager_reference_fit(parent, config):
    """The historical pipeline: materialize everything, then detect."""
    rng = resolve_rng(config.seed)
    samples = config.sampler.sample_many(parent, config.n_samples, rng)
    detections = detect_on_samples(samples, config.fdet, mode=ExecutorMode.SERIAL)
    table = VoteTable.from_detections(
        [d.result.detected_users().tolist() for d in detections],
        [d.result.detected_merchants().tolist() for d in detections],
    )
    return table, detections


def leaked_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith("repro_gs_")]


class TestPlanMaterializeParity:
    """``materialize(plan(...))`` reproduces the eager sample bit for bit."""

    @pytest.mark.parametrize("name", sorted(SAMPLER_FACTORIES))
    def test_sample_stream_identical(self, parent, name):
        sampler = SAMPLER_FACTORIES[name]()
        eager = sampler.sample_many(parent, 6, rng=11)
        plans = sampler.plan_many(parent, 6, rng=11)
        assert len(plans) == 6
        for subgraph, plan in zip(eager, plans):
            assert_graphs_bitwise_equal(subgraph, materialize_plan(parent, plan))

    @pytest.mark.parametrize("name", sorted(SAMPLER_FACTORIES))
    def test_single_sample_identical(self, parent, name):
        sampler = SAMPLER_FACTORIES[name]()
        eager = sampler.sample(parent, rng=5)
        again = materialize_plan(parent, sampler.plan(parent, rng=5))
        assert_graphs_bitwise_equal(eager, again)

    @pytest.mark.parametrize("name", sorted(SAMPLER_FACTORIES))
    def test_plans_are_compact(self, parent, name):
        """A plan ships far fewer bytes than the subgraph it describes."""
        sampler = SAMPLER_FACTORIES[name]()
        plan = sampler.plan(parent, rng=3)
        subgraph = materialize_plan(parent, plan)
        subgraph_bytes = GraphStore.from_graph(subgraph).nbytes
        if subgraph_bytes:
            assert plan.nbytes < subgraph_bytes

    def test_plan_materializes_against_shm_view(self, parent):
        """Materializing against a read-only shared view is still bitwise."""
        sampler = RandomEdgeSampler(0.35)
        plans = sampler.plan_many(parent, 3, rng=2)
        eager = sampler.sample_many(parent, 3, rng=2)
        shared = GraphStore.from_graph(parent).export_shared()
        try:
            view = attached_store(shared.layout).to_graph()
            assert not view.edge_users.flags.writeable
            for subgraph, plan in zip(eager, plans):
                assert_graphs_bitwise_equal(subgraph, materialize_plan(view, plan))
        finally:
            detach_all()
            shared.dispose()
        assert leaked_segments() == []


class TestFitParity:
    """The plan-based fit equals the eager reference on every backend."""

    @pytest.mark.parametrize("name", sorted(SAMPLER_FACTORIES))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fit_matches_eager_reference(self, parent, name, backend):
        config = EnsemFDetConfig(
            sampler=SAMPLER_FACTORIES[name](),
            n_samples=6,
            fdet=FdetConfig(max_blocks=4),
            executor=backend,
            n_workers=2,
            seed=13,
        )
        reference_table, reference_detections = eager_reference_fit(parent, config)
        result = EnsemFDet(config).fit(parent)
        assert result.vote_table.user_votes == reference_table.user_votes
        assert result.vote_table.merchant_votes == reference_table.merchant_votes
        assert_detections_bitwise_equal(
            list(result.sample_detections), reference_detections
        )
        assert leaked_segments() == []

    def test_shm_and_pickled_store_agree(self, parent):
        config = FdetConfig(max_blocks=4)
        sampler = RandomEdgeSampler(0.35)
        plans = sampler.plan_many(parent, 6, rng=4)
        with_shm = detect_on_plans(
            parent, plans, config, mode=ExecutorMode.PROCESS, n_workers=2,
            shared_memory=True,
        )
        without_shm = detect_on_plans(
            parent, plans, config, mode=ExecutorMode.PROCESS, n_workers=2,
            shared_memory=False,
        )
        assert_detections_bitwise_equal(with_shm, without_shm)
        assert leaked_segments() == []

    def test_fit_on_reusable_pool_matches(self, parent):
        config = EnsemFDetConfig(
            sampler=StableEdgeSampler(0.35, stripe=32),
            n_samples=6,
            fdet=FdetConfig(max_blocks=4),
            executor=ExecutorMode.PROCESS,
            seed=13,
        )
        reference_table, _ = eager_reference_fit(parent, config)
        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            first = EnsemFDet(config, pool=pool).fit(parent)
            second = EnsemFDet(config, pool=pool).fit(parent)
        assert first.vote_table.user_votes == reference_table.user_votes
        assert second.vote_table.user_votes == reference_table.user_votes
        assert leaked_segments() == []

    def test_track_appearances_parity_across_backends(self, parent):
        tables = []
        for backend in BACKENDS:
            config = EnsemFDetConfig(
                sampler=RandomEdgeSampler(0.35),
                n_samples=5,
                fdet=FdetConfig(max_blocks=4),
                executor=backend,
                n_workers=2,
                seed=21,
                track_appearances=True,
            )
            tables.append(EnsemFDet(config).fit(parent).vote_table)
        for table in tables[1:]:
            assert table.user_votes == tables[0].user_votes
            assert table.user_appearances == tables[0].user_appearances
            assert table.merchant_appearances == tables[0].merchant_appearances


class TestTrustedViews:
    """FDET accepts read-only store-backed graphs without re-validation."""

    def test_detect_on_shared_view_matches_original(self, parent):
        shared = GraphStore.from_graph(parent).export_shared()
        try:
            view = attached_store(shared.layout).to_graph()
            direct = Fdet(FdetConfig(max_blocks=4)).detect(parent)
            via_view = Fdet(FdetConfig(max_blocks=4)).detect(view)
            assert np.array_equal(direct.densities, via_view.densities)
            assert np.array_equal(direct.detected_users(), via_view.detected_users())
        finally:
            detach_all()
            shared.dispose()

    def test_segment_gone_after_dispose(self, parent):
        shared = GraphStore.from_graph(parent).export_shared()
        name = shared.layout.segment
        shared.dispose()
        shared.dispose()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
