"""Tests for the density-weighted (soft) vote extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import (
    EnsemFDet,
    EnsemFDetConfig,
    SoftVoteTable,
    soft_threshold_sweep,
    soft_votes_from_detections,
)
from repro.errors import AggregationError
from repro.fdet import FdetConfig
from repro.sampling import RandomEdgeSampler


@pytest.fixture(scope="module")
def fitted(toy):
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4),
        n_samples=12,
        fdet=FdetConfig(max_blocks=6),
        seed=0,
        executor="thread",
    )
    return EnsemFDet(config).fit(toy.graph)


class TestSoftVotes:
    def test_scores_accumulate(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        assert table.n_samples == 12
        assert table.max_user_score() > 0

    def test_normalised_scores_bounded_by_n_samples(self, fitted):
        table = soft_votes_from_detections(
            list(fitted.sample_detections), normalize_per_sample=True
        )
        # each sample contributes at most ~1.0 (the first block's own weight)
        assert table.max_user_score() <= fitted.n_samples + 1e-9

    def test_detect_threshold_filters(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        top = table.max_user_score()
        strict = table.detect(top)
        loose = table.detect(top / 10)
        assert strict.n_users <= loose.n_users

    def test_invalid_threshold(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        with pytest.raises(AggregationError):
            table.detect(0.0)

    def test_sweep_monotone(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        sweep = soft_threshold_sweep(table, n_points=20)
        assert sweep, "sweep should produce points"
        thresholds = [t for t, _ in sweep]
        sizes = [d.n_users for _, d in sweep]
        assert thresholds == sorted(thresholds)
        assert sizes == sorted(sizes, reverse=True)

    def test_soft_votes_rank_fraud_high(self, fitted, toy):
        """Planted fraud users accumulate more density mass than normals."""
        table = soft_votes_from_detections(list(fitted.sample_detections))
        truth = set(toy.clean_fraud_labels.tolist())
        fraud_scores = [s for label, s in table.user_scores.items() if label in truth]
        normal_scores = [s for label, s in table.user_scores.items() if label not in truth]
        assert fraud_scores, "fraud users must receive soft votes"
        if normal_scores:
            assert np.mean(fraud_scores) > np.mean(normal_scores)

    def test_empty_detections(self):
        table = soft_votes_from_detections([])
        assert table.max_user_score() == 0.0
        assert soft_threshold_sweep(table) == []
