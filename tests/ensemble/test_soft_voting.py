"""Tests for the density-weighted (soft) vote extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import (
    EnsemFDet,
    EnsemFDetConfig,
    SoftVoteTable,
    soft_threshold_sweep,
    soft_votes_from_detections,
)
from repro.ensemble.runner import SampleDetection
from repro.errors import AggregationError
from repro.fdet import Block, FdetConfig, FdetResult
from repro.sampling import RandomEdgeSampler


def _fake_detection(blocks: list[tuple[float, list[int], list[int]]]) -> SampleDetection:
    """A SampleDetection holding hand-built blocks of (density, users, merchants)."""
    built = tuple(
        Block(
            index=index,
            user_labels=np.array(users, dtype=np.int64),
            merchant_labels=np.array(merchants, dtype=np.int64),
            density=density,
            n_edges=len(users) * len(merchants),
        )
        for index, (density, users, merchants) in enumerate(blocks)
    )
    return SampleDetection(result=FdetResult(all_blocks=built, k_hat=len(built)))


@pytest.fixture(scope="module")
def fitted(toy):
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4),
        n_samples=12,
        fdet=FdetConfig(max_blocks=6),
        seed=0,
        executor="thread",
    )
    return EnsemFDet(config).fit(toy.graph)


class TestSoftVotes:
    def test_scores_accumulate(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        assert table.n_samples == 12
        assert table.max_user_score() > 0

    def test_normalised_scores_bounded_by_n_samples(self, fitted):
        table = soft_votes_from_detections(
            list(fitted.sample_detections), normalize_per_sample=True
        )
        # each sample contributes at most ~1.0 (the first block's own weight)
        assert table.max_user_score() <= fitted.n_samples + 1e-9

    def test_detect_threshold_filters(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        top = table.max_user_score()
        strict = table.detect(top)
        loose = table.detect(top / 10)
        assert strict.n_users <= loose.n_users

    def test_invalid_threshold(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        with pytest.raises(AggregationError):
            table.detect(0.0)

    def test_sweep_monotone(self, fitted):
        table = soft_votes_from_detections(list(fitted.sample_detections))
        sweep = soft_threshold_sweep(table, n_points=20)
        assert sweep, "sweep should produce points"
        thresholds = [t for t, _ in sweep]
        sizes = [d.n_users for _, d in sweep]
        assert thresholds == sorted(thresholds)
        assert sizes == sorted(sizes, reverse=True)

    def test_soft_votes_rank_fraud_high(self, fitted, toy):
        """Planted fraud users accumulate more density mass than normals."""
        table = soft_votes_from_detections(list(fitted.sample_detections))
        truth = set(toy.clean_fraud_labels.tolist())
        fraud_scores = [s for label, s in table.user_scores.items() if label in truth]
        normal_scores = [s for label, s in table.user_scores.items() if label not in truth]
        assert fraud_scores, "fraud users must receive soft votes"
        if normal_scores:
            assert np.mean(fraud_scores) > np.mean(normal_scores)

    def test_empty_detections(self):
        table = soft_votes_from_detections([])
        assert table.max_user_score() == 0.0
        assert soft_threshold_sweep(table) == []


class TestSoftVoteEdgeCases:
    """Hand-built vote tables: the corners the fitted-ensemble tests miss."""

    def test_empty_table_detects_nothing(self):
        table = SoftVoteTable(n_samples=0, user_scores={}, merchant_scores={})
        detection = table.detect(1.0)
        assert detection.n_users == 0
        assert detection.n_merchants == 0
        assert table.max_user_score() == 0.0
        assert soft_threshold_sweep(table) == []

    def test_all_abstain_members(self):
        """Members whose FDET kept zero blocks contribute nothing — not crashes."""
        detections = [_fake_detection([]) for _ in range(5)]
        table = soft_votes_from_detections(detections)
        assert table.n_samples == 5
        assert table.user_scores == {}
        assert table.merchant_scores == {}
        assert table.detect(0.5).n_users == 0
        assert soft_threshold_sweep(table) == []

    def test_mixed_abstain_and_voting_members(self):
        detections = [
            _fake_detection([]),
            _fake_detection([(0.8, [1, 2], [10])]),
            _fake_detection([]),
        ]
        table = soft_votes_from_detections(detections)
        assert table.n_samples == 3
        # the single voting member contributes normalized weight 1.0
        assert table.user_scores == {1: 1.0, 2: 1.0}
        assert table.merchant_scores == {10: 1.0}

    def test_threshold_boundary_is_inclusive(self):
        """A score exactly equal to the threshold is detected (>=, not >)."""
        table = SoftVoteTable(
            n_samples=2,
            user_scores={7: 1.5, 8: 1.5 - 1e-9},
            merchant_scores={3: 1.5},
        )
        detection = table.detect(1.5)
        assert detection.user_labels.tolist() == [7]
        assert detection.merchant_labels.tolist() == [3]
        # nudging the threshold past the score drops the boundary node
        assert table.detect(1.5 + 1e-9).n_users == 0

    @pytest.mark.parametrize("threshold", [0.0, -1.0])
    def test_non_positive_threshold_rejected(self, threshold):
        table = SoftVoteTable(n_samples=1, user_scores={1: 1.0}, merchant_scores={})
        with pytest.raises(AggregationError):
            table.detect(threshold)

    def test_zero_density_first_block_does_not_divide(self):
        """A zero-density lead block falls back to unnormalised weights."""
        detections = [_fake_detection([(0.0, [1], [2]), (0.25, [3], [4])])]
        table = soft_votes_from_detections(detections, normalize_per_sample=True)
        assert table.user_scores[1] == 0.0
        assert table.user_scores[3] == pytest.approx(0.25)

    def test_unnormalised_scores_accumulate_raw_density(self):
        detections = [
            _fake_detection([(0.5, [1], [2])]),
            _fake_detection([(0.25, [1], [2])]),
        ]
        table = soft_votes_from_detections(detections, normalize_per_sample=False)
        assert table.user_scores[1] == pytest.approx(0.75)
        assert table.merchant_scores[2] == pytest.approx(0.75)
