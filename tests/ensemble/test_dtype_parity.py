"""Compact dtypes are storage-only: vote tables must be bitwise identical
whether the graph travels as int64/float64 or int32/float32, over every
transport (resident, shared memory, mmap file, pickled) and backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import chung_lu_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig
from repro.fdet import FdetConfig
from repro.graph import GraphStore
from repro.sampling import (
    OneSideNodeSampler,
    RandomEdgeSampler,
    StableEdgeSampler,
    TwoSideNodeSampler,
)

SAMPLERS = {
    "random_edge": lambda: RandomEdgeSampler(0.35),
    "stable_edge": lambda: StableEdgeSampler(0.35, stripe=64),
    "one_side": lambda: OneSideNodeSampler(0.5, "user"),
    "two_side": lambda: TwoSideNodeSampler(0.6, 0.6),
}


@pytest.fixture(scope="module")
def graph():
    g = chung_lu_bipartite(400, 150, 3000, rng=11)
    rng = np.random.default_rng(5)
    # half-integer weights narrow losslessly to float32
    return g.with_weights(rng.integers(1, 64, size=g.n_edges) / 2.0)


def _config(sampler, **kwargs):
    return EnsemFDetConfig(
        sampler=sampler,
        n_samples=8,
        fdet=FdetConfig(max_blocks=4),
        seed=13,
        **kwargs,
    )


def _tables(result):
    return result.vote_table.user_votes, result.vote_table.merchant_votes


@pytest.mark.parametrize("name", sorted(SAMPLERS))
def test_compact_store_matches_wide_fit(graph, name, tmp_path):
    """int32/float32 storage through every local transport equals the
    plain wide in-memory fit."""
    sampler = SAMPLERS[name]()
    reference = _tables(EnsemFDet(_config(sampler)).fit(graph))

    # resident compact store
    compact = GraphStore.from_graph(graph).compact()
    assert compact.edge_users.dtype == np.int32
    assert compact.edge_weights.dtype == np.float32
    assert _tables(EnsemFDet(_config(SAMPLERS[name]())).fit(compact)) == reference

    # mmap-opened store file
    path = tmp_path / f"{name}.store"
    GraphStore.from_graph(graph).save(path)
    opened = GraphStore.open(path, mmap=True)
    assert _tables(EnsemFDet(_config(SAMPLERS[name]())).fit(opened)) == reference


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_backends_agree_on_compact_store(graph, executor, tmp_path):
    sampler = StableEdgeSampler(0.35, stripe=64)
    reference = _tables(EnsemFDet(_config(sampler)).fit(graph))
    path = tmp_path / "g.store"
    GraphStore.from_graph(graph).save(path)
    opened = GraphStore.open(path, mmap=True)
    result = EnsemFDet(
        _config(StableEdgeSampler(0.35, stripe=64), executor=executor, n_workers=2)
    ).fit(opened)
    assert _tables(result) == reference


@pytest.mark.parametrize(
    "transport_kwargs",
    [
        {"shared_memory": True},  # shm segment
        {"shared_memory": True, "mmap": True},  # mmap spill
        {"shared_memory": False},  # pickled store
    ],
    ids=["shm", "mmap", "pickle"],
)
def test_process_transports_agree(graph, transport_kwargs):
    sampler = RandomEdgeSampler(0.35)
    reference = _tables(EnsemFDet(_config(sampler)).fit(graph))
    result = EnsemFDet(
        _config(
            RandomEdgeSampler(0.35),
            executor="process",
            n_workers=2,
            **transport_kwargs,
        )
    ).fit(graph)
    assert _tables(result) == reference


def test_windowed_expiry_on_mmap_store(tmp_path):
    """A windowed store round-tripped through a file keeps dead edges dead."""
    g = chung_lu_bipartite(300, 120, 2000, rng=2)
    alive = np.ones(g.n_edges, dtype=bool)
    alive[::5] = False
    store = GraphStore(
        n_users=g.n_users,
        n_merchants=g.n_merchants,
        edge_users=g.edge_users,
        edge_merchants=g.edge_merchants,
        edge_weights=None,
        user_labels=g.user_labels,
        merchant_labels=g.merchant_labels,
        edge_ids=np.arange(g.n_edges, dtype=np.int64),
        edge_alive=alive,
    )
    sampler = StableEdgeSampler(0.4, stripe=64)
    reference = _tables(EnsemFDet(_config(sampler)).fit(store))

    path = tmp_path / "w.store"
    store.save(path)
    opened = GraphStore.open(path, mmap=True)
    assert _tables(EnsemFDet(_config(StableEdgeSampler(0.4, stripe=64))).fit(opened)) == reference

    # and the mask genuinely excludes expired edges: a fit on the fully
    # alive graph must differ from the windowed one somewhere
    full = _tables(EnsemFDet(_config(StableEdgeSampler(0.4, stripe=64))).fit(g))
    assert full != reference


def test_compact_is_lossless_only(graph):
    """Weights that do not survive float32 stay float64 under compact()."""
    lossy = graph.with_weights(np.full(graph.n_edges, 0.1))
    store = GraphStore.from_graph(lossy).compact()
    assert store.edge_weights.dtype == np.float64
    assert store.edge_users.dtype == np.int32
