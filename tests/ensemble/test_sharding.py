"""Stripe-sharded ensemble: bitwise parity with the unsharded fit, shard
failure degradation through the quorum path, and the merge fault point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import chung_lu_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig, plan_shards
from repro.ensemble.sharding import _member_parent_ids, merge_shard_votes
from repro.errors import DetectionError, QuorumError
from repro.faults import arm, disarm
from repro.fdet import FdetConfig
from repro.graph import LiveWindow
from repro.parallel import FaultTolerance
from repro.sampling import (
    OneSideNodeSampler,
    RandomEdgeSampler,
    SamplePlan,
    StableEdgeSampler,
)


@pytest.fixture(scope="module")
def graph():
    g = chung_lu_bipartite(400, 150, 3000, rng=4)
    rng = np.random.default_rng(8)
    return g.with_weights(rng.integers(1, 64, size=g.n_edges) / 2.0)


def _config(sampler, **kwargs):
    return EnsemFDetConfig(
        sampler=sampler,
        n_samples=9,
        fdet=FdetConfig(max_blocks=4),
        seed=21,
        **kwargs,
    )


def _tables(result):
    return result.vote_table.user_votes, result.vote_table.merchant_votes


class TestPlanShards:
    def test_near_equal_contiguous_groups(self):
        plan = plan_shards(10, 3)
        assert plan.members == ((0, 1, 2, 3), (4, 5, 6), (7, 8, 9))
        assert plan.n_shards == 3

    def test_caps_at_member_count(self):
        assert plan_shards(2, 8).members == ((0,), (1,))

    def test_single_shard(self):
        assert plan_shards(4, 1).members == ((0, 1, 2, 3),)

    def test_rejects_non_positive(self):
        with pytest.raises(DetectionError):
            plan_shards(4, 0)


class TestShardedParity:
    @pytest.mark.parametrize("shards", [2, 3, 9])
    @pytest.mark.parametrize("make", [lambda: RandomEdgeSampler(0.35),
                                      lambda: StableEdgeSampler(0.35, stripe=64)],
                             ids=["random_edge", "stable_edge"])
    def test_matches_unsharded(self, graph, shards, make):
        reference = _tables(EnsemFDet(_config(make())).fit(graph))
        sharded = EnsemFDet(_config(make(), shards=shards)).fit(graph)
        assert _tables(sharded) == reference

    @pytest.mark.parametrize("mmap", [False, True])
    def test_matches_unsharded_out_of_core(self, graph, mmap):
        make = lambda: StableEdgeSampler(0.35, stripe=64)
        reference = _tables(EnsemFDet(_config(make())).fit(graph))
        sharded = EnsemFDet(_config(make(), shards=3, mmap=mmap)).fit(graph)
        assert _tables(sharded) == reference

    def test_windowed_parity(self, graph):
        alive = np.ones(graph.n_edges, dtype=bool)
        alive[1::4] = False
        window = LiveWindow(
            graph=graph,
            alive=alive,
            edge_ids=np.arange(graph.n_edges, dtype=np.int64),
            watermark=graph.n_edges,
        )
        make = lambda: StableEdgeSampler(0.35, stripe=64)
        reference = _tables(EnsemFDet(_config(make())).fit_window(window))
        sharded = EnsemFDet(_config(make(), shards=3)).fit_window(window)
        assert _tables(sharded) == reference

    def test_process_backend_parity(self, graph):
        make = lambda: StableEdgeSampler(0.35, stripe=64)
        reference = _tables(EnsemFDet(_config(make())).fit(graph))
        sharded = EnsemFDet(
            _config(make(), shards=2, executor="process", n_workers=2)
        ).fit(graph)
        assert _tables(sharded) == reference


class TestShardingErrors:
    def test_node_plans_rejected(self, graph):
        config = _config(OneSideNodeSampler(0.5, "user"), shards=2)
        with pytest.raises(DetectionError, match="edges.*stripes|stripes.*edges"):
            EnsemFDet(config).fit(graph)

    def test_member_parent_ids_rejects_node_kind(self):
        plan = SamplePlan(kind="nodes", users=np.array([0, 1]), merchants=np.array([0]))
        with pytest.raises(DetectionError, match="run unsharded"):
            _member_parent_ids(plan, 10, None)

    def test_config_rejects_zero_shards(self):
        with pytest.raises(DetectionError):
            EnsemFDetConfig(shards=0)


class TestShardFaults:
    def test_shard_worker_crash_degrades_via_quorum(self, graph):
        """A member crashing inside a shard is retried, then dropped; the
        run survives on quorum exactly like an unsharded fit.

        Fault indices are shard-local (each shard's run_members numbers its
        members from 0), so the plan is bounded to two firings — the first
        attempt and its retry, both inside shard 0."""
        arm("raise:point=member.detect,index=2,attempt=-1,times=2")
        try:
            result = EnsemFDet(
                _config(
                    StableEdgeSampler(0.35, stripe=64),
                    shards=3,
                    tolerance=FaultTolerance(max_retries=1, min_quorum=0.5),
                )
            ).fit(graph)
        finally:
            disarm()
        failed = {f.index for f in result.failed_members}
        assert failed == {2}
        assert any(entry.get("shard") == 0 for entry in result.retry_log)

    def test_shard_crash_below_quorum_raises(self, graph):
        arm("raise:point=member.detect,attempt=-1,times=-1")
        try:
            with pytest.raises(QuorumError):
                EnsemFDet(
                    _config(
                        StableEdgeSampler(0.35, stripe=64),
                        shards=3,
                        tolerance=FaultTolerance(max_retries=0, min_quorum=0.5),
                    )
                ).fit(graph)
        finally:
            disarm()

    def test_merge_fault_falls_back_to_python_merge(self, graph):
        make = lambda: StableEdgeSampler(0.35, stripe=64)
        reference = _tables(EnsemFDet(_config(make())).fit(graph))
        arm("raise:point=shard.merge,times=-1")
        try:
            sharded = EnsemFDet(_config(make(), shards=3)).fit(graph)
        finally:
            disarm()
        assert _tables(sharded) == reference

    def test_merge_shard_votes_returns_none_on_fault(self, graph):
        arm("raise:point=shard.merge")
        try:
            result = EnsemFDet(_config(StableEdgeSampler(0.35, stripe=64))).fit(graph)
            grouped = [[d for d in result.sample_detections if d is not None]]
            assert merge_shard_votes(grouped, graph) is None
        finally:
            disarm()
