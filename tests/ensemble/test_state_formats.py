"""Legacy state-archive compatibility: every committed fixture keeps loading.

``tests/ensemble/fixtures/state_v<N>.npz`` are real archives written by the
historical format writers (v1: pre-checksum, v2: checksummed but
append-only, v3: windowed but wide-dtype-only). Each must load with the
current build, re-save as the current format, and reload
bitwise-identical — including through the ``.bak`` recovery path.
"""

from __future__ import annotations

import glob
import os
import shutil

import numpy as np
import pytest

from repro.ensemble import (
    IncrementalEnsemFDet,
    load_detection_state,
    load_detection_state_with_recovery,
    save_detection_state,
    state_backup_path,
)
from repro.ensemble.results import STATE_FORMAT_VERSION, _LEGACY_FORMAT_VERSIONS
from repro.errors import StateError

FIXTURES = sorted(
    glob.glob(os.path.join(os.path.dirname(__file__), "fixtures", "state_v*.npz"))
)


def _assert_states_identical(left, right) -> None:
    assert left.config == right.config
    assert left.meta == right.meta
    assert left.window == right.window
    lg, rg = left.graph, right.graph
    assert (lg.n_users, lg.n_merchants) == (rg.n_users, rg.n_merchants)
    for name in ("edge_users", "edge_merchants", "user_labels", "merchant_labels"):
        la, ra = getattr(lg, name), getattr(rg, name)
        assert la.dtype == ra.dtype and np.array_equal(la, ra)
    if lg.edge_weights is None:
        assert rg.edge_weights is None
    else:
        assert np.array_equal(lg.edge_weights, rg.edge_weights)
    if left.edge_ids is None:
        assert right.edge_ids is None
    else:
        assert np.array_equal(left.edge_ids, right.edge_ids)
    for name in ("detected_users", "detected_merchants", "sample_users", "sample_merchants"):
        lr, rr = getattr(left, name), getattr(right, name)
        assert len(lr) == len(rr)
        for la, ra in zip(lr, rr):
            assert la.dtype == ra.dtype and np.array_equal(la, ra)


def test_fixture_inventory_covers_every_legacy_version():
    versions = {
        int(os.path.basename(p)[len("state_v") : -len(".npz")]) for p in FIXTURES
    }
    assert set(_LEGACY_FORMAT_VERSIONS) <= versions, (
        f"missing committed fixture for legacy formats "
        f"{set(_LEGACY_FORMAT_VERSIONS) - versions}"
    )


def _fixture_version(path: str) -> int:
    return int(os.path.basename(path)[len("state_v") : -len(".npz")])


@pytest.mark.parametrize("fixture", FIXTURES, ids=os.path.basename)
def test_legacy_fixture_loads_and_round_trips_as_current(fixture, tmp_path):
    state = load_detection_state(fixture)
    assert state.n_samples > 0
    if _fixture_version(fixture) < 3:  # window metadata arrived in v3
        assert state.window is None and state.edge_ids is None
    else:
        assert state.window is not None and state.edge_ids is not None

    target = tmp_path / "resaved.npz"
    save_detection_state(state, target)
    with np.load(target) as data:
        assert int(data["format_version"][0]) == STATE_FORMAT_VERSION
    _assert_states_identical(state, load_detection_state(target))


@pytest.mark.parametrize("fixture", FIXTURES, ids=os.path.basename)
def test_legacy_fixture_recovers_from_backup(fixture, tmp_path):
    state = load_detection_state(fixture)
    target = tmp_path / "state.npz"
    save_detection_state(state, target)
    save_detection_state(state, target)  # rotates the first save to .bak
    assert state_backup_path(target).exists()

    # corrupt the primary: recovery must fall back to the backup, bitwise
    target.write_bytes(b"\x00" * 128)
    recovered, recovered_from = load_detection_state_with_recovery(target)
    assert recovered_from == str(state_backup_path(target))
    _assert_states_identical(state, recovered)


@pytest.mark.parametrize("fixture", FIXTURES, ids=os.path.basename)
def test_legacy_fixture_rebuilds_a_live_detector(fixture):
    detector = IncrementalEnsemFDet.load(fixture)
    if _fixture_version(fixture) < 3:
        assert detector.window_config is None
    else:
        assert detector.window_config is not None
    # the rebuilt detector scores without error and stays consistent
    result = detector.detect(threshold=2)
    assert result.n_users >= 0


def test_unsupported_future_version_is_rejected(tmp_path):
    source = FIXTURES[-1]
    target = tmp_path / "future.npz"
    shutil.copy(source, target)
    with np.load(target) as data:
        arrays = {name: data[name] for name in data.files}
    arrays["format_version"] = np.array([STATE_FORMAT_VERSION + 1], dtype=np.int64)
    with open(target, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    with pytest.raises(StateError, match="not supported"):
        load_detection_state(target)
