"""Windowed incremental detection: bitwise parity with cold window fits.

The windowed :class:`IncrementalEnsemFDet` must stay bit-identical to a
cold :meth:`EnsemFDet.fit_window` on the live window after any mix of
appends, deletion deltas and expiry — across every executor backend, with
and without the shared-memory fan-out, and for both sampler families
(stripe-hash, which is id-keyed, and the rest, which fit the live graph).
Also covers the windowed DetectionState v3 save/load round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import (
    EnsemFDet,
    EnsemFDetConfig,
    IncrementalEnsemFDet,
    load_detection_state,
)
from repro.errors import DetectionError
from repro.fdet import FdetConfig
from repro.graph import WindowConfig
from repro.sampling import RandomEdgeSampler, StableEdgeSampler


def make_config(**overrides):
    defaults = dict(
        sampler=StableEdgeSampler(0.3, stripe=64),
        n_samples=8,
        fdet=FdetConfig(max_blocks=8),
        executor="serial",
        seed=23,
    )
    defaults.update(overrides)
    return EnsemFDetConfig(**defaults)


@pytest.fixture
def graph():
    return uniform_bipartite(150, 70, 1400, rng=3)


def _stream(detector, graph, n_updates=4, retract_at=2):
    """Drive appends, one deletion delta, and (window permitting) expiry."""
    rng = np.random.default_rng(41)
    for step in range(n_updates):
        users = rng.integers(0, 150, 25)
        merchants = rng.integers(0, 70, 25)
        if step == retract_at:
            # retract two live background pairs alongside the append
            detector.update(
                users,
                merchants,
                remove_users=graph.edge_users[:2],
                remove_merchants=graph.edge_merchants[:2],
                timestamp=float(step + 1),
            )
        else:
            detector.update(users, merchants, timestamp=float(step + 1))


def assert_matches_cold_window_fit(detector, config):
    cold = EnsemFDet(config).fit_window(detector.window(), track_members=True)
    assert cold.vote_table.user_votes == detector.vote_table.user_votes
    assert cold.vote_table.merchant_votes == detector.vote_table.merchant_votes
    for threshold in range(1, config.n_samples + 1):
        warm = detector.detect(threshold)
        fresh = cold.detect(threshold)
        assert np.array_equal(warm.user_labels, fresh.user_labels)
        assert np.array_equal(warm.merchant_labels, fresh.merchant_labels)


class TestWindowedParityMatrix:
    @pytest.mark.parametrize(
        "executor,shared_memory",
        [
            ("serial", False),
            ("thread", False),
            ("process", True),
            ("process", False),
        ],
    )
    def test_update_matches_cold_window_fit(self, graph, executor, shared_memory):
        config = make_config(executor=executor, shared_memory=shared_memory)
        detector = IncrementalEnsemFDet(config, window=WindowConfig(max_batches=3))
        detector.fit(graph, timestamp=0.0)
        _stream(detector, graph)
        # the 3-batch window over 5 batches has really expired something
        assert detector.window().watermark > detector.window().n_live
        assert_matches_cold_window_fit(detector, config)

    def test_horizon_window_matches_cold_fit(self, graph):
        config = make_config()
        detector = IncrementalEnsemFDet(
            config, window=WindowConfig(horizon=2.5)
        )
        detector.fit(graph, timestamp=0.0)
        _stream(detector, graph)
        assert detector.window().watermark > detector.window().n_live
        assert_matches_cold_window_fit(detector, config)

    def test_deletion_only_delta_matches_cold_fit(self, graph):
        config = make_config()
        detector = IncrementalEnsemFDet(config, window=WindowConfig(max_batches=8))
        detector.fit(graph, timestamp=0.0)
        report = detector.update(
            remove_users=graph.edge_users[:5],
            remove_merchants=graph.edge_merchants[:5],
            timestamp=1.0,
        )
        assert report.n_new_edges == 0
        assert report.n_removed_edges == 5
        assert report.n_refreshed > 0
        assert_matches_cold_window_fit(detector, config)


class TestSamplerFamilies:
    def test_fit_window_without_stripes_fits_the_live_graph(self, graph):
        """Non-stripe samplers have no id-keyed structure: the window fit
        is exactly a cold fit on the compacted live graph."""
        config = make_config(sampler=RandomEdgeSampler(0.3))
        detector = IncrementalEnsemFDet(make_config(), window=WindowConfig(max_batches=3))
        detector.fit(graph, timestamp=0.0)
        _stream(detector, graph)
        window = detector.window()
        via_window = EnsemFDet(config).fit_window(window)
        via_live = EnsemFDet(config).fit(window.live_graph())
        assert via_window.vote_table.user_votes == via_live.vote_table.user_votes
        assert (
            via_window.vote_table.merchant_votes
            == via_live.vote_table.merchant_votes
        )


class TestAppendOnlyGuards:
    def test_window_accessor_requires_windowed_detector(self, graph):
        detector = IncrementalEnsemFDet(make_config())
        detector.fit(graph)
        with pytest.raises(DetectionError, match="append-only"):
            detector.window()

    def test_deletions_require_windowed_detector(self, graph):
        detector = IncrementalEnsemFDet(make_config())
        detector.fit(graph)
        with pytest.raises(DetectionError, match="windowed"):
            detector.update(
                remove_users=graph.edge_users[:1],
                remove_merchants=graph.edge_merchants[:1],
            )

    def test_timestamps_require_windowed_detector(self, graph):
        detector = IncrementalEnsemFDet(make_config())
        detector.fit(graph)
        with pytest.raises(DetectionError, match="windowed"):
            detector.update(np.array([0]), np.array([0]), timestamp=1.0)


class TestWindowedPersistence:
    def test_v3_state_round_trips_the_window(self, graph, tmp_path):
        config = make_config()
        detector = IncrementalEnsemFDet(config, window=WindowConfig(max_batches=3))
        detector.fit(graph, timestamp=0.0)
        _stream(detector, graph)
        path = tmp_path / "state.npz"
        detector.save(path)

        state = load_detection_state(path)
        assert state.window is not None
        assert state.window["config"]["max_batches"] == 3
        assert state.window["watermark"] == detector.window().watermark
        assert state.edge_ids is not None

        restored = IncrementalEnsemFDet.load(path)
        assert restored.window_config == detector.window_config
        original = detector.window()
        reloaded = restored.window()
        assert reloaded.watermark == original.watermark
        assert reloaded.n_live == original.n_live
        assert restored.vote_table.user_votes == detector.vote_table.user_votes

    def test_reloaded_detector_keeps_bitwise_parity(self, graph, tmp_path):
        config = make_config()
        detector = IncrementalEnsemFDet(config, window=WindowConfig(max_batches=3))
        detector.fit(graph, timestamp=0.0)
        _stream(detector, graph)
        path = tmp_path / "state.npz"
        detector.save(path)
        restored = IncrementalEnsemFDet.load(path)

        rng = np.random.default_rng(77)
        users, merchants = rng.integers(0, 150, 30), rng.integers(0, 70, 30)
        # retract pairs that are still live (the background expired long ago)
        live = detector.window().live_graph()
        remove_users = live.user_labels[live.edge_users[:3]]
        remove_merchants = live.merchant_labels[live.edge_merchants[:3]]
        for det in (detector, restored):
            det.update(
                users,
                merchants,
                remove_users=remove_users,
                remove_merchants=remove_merchants,
                timestamp=9.0,
            )
        assert restored.vote_table.user_votes == detector.vote_table.user_votes
        assert (
            restored.vote_table.merchant_votes
            == detector.vote_table.merchant_votes
        )
        assert_matches_cold_window_fit(restored, config)

    def test_append_only_state_stays_v2_shaped(self, graph, tmp_path):
        """An unwindowed detector's archive carries no window arrays."""
        detector = IncrementalEnsemFDet(make_config())
        detector.fit(graph)
        path = tmp_path / "state.npz"
        detector.save(path)
        state = load_detection_state(path)
        assert state.window is None
        assert state.edge_ids is None
