"""IncrementalEnsemFDet: update-equals-cold-refit, vote merging, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import (
    EnsemFDet,
    EnsemFDetConfig,
    IncrementalEnsemFDet,
    load_detection_state,
    normalized_majority_vote,
)
from repro.errors import DetectionError
from repro.fdet import FdetConfig
from repro.sampling import RandomEdgeSampler, StableEdgeSampler


def make_config(**overrides):
    defaults = dict(
        sampler=StableEdgeSampler(0.2, stripe=128),
        n_samples=12,
        fdet=FdetConfig(max_blocks=8),
        executor="serial",
        seed=17,
    )
    defaults.update(overrides)
    return EnsemFDetConfig(**defaults)


@pytest.fixture
def graph():
    return uniform_bipartite(250, 120, 2400, rng=1)


@pytest.fixture
def delta(graph):
    rng = np.random.default_rng(8)
    n = graph.n_edges // 100  # 1% delta
    return rng.integers(0, 250, n), rng.integers(0, 120, n)


def assert_matches_cold_refit(detector, config):
    cold = EnsemFDet(config).fit(detector.graph)
    assert cold.vote_table.user_votes == detector.vote_table.user_votes
    assert cold.vote_table.merchant_votes == detector.vote_table.merchant_votes
    for threshold in range(1, config.n_samples + 1):
        warm = detector.detect(threshold)
        fresh = cold.detect(threshold)
        assert np.array_equal(warm.user_labels, fresh.user_labels)
        assert np.array_equal(warm.merchant_labels, fresh.merchant_labels)


class TestUpdateIdentity:
    def test_one_percent_delta_matches_cold_refit(self, graph, delta):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        report = detector.update(*delta)
        assert report.n_new_edges == delta[0].size
        assert 0 < report.n_refreshed < config.n_samples
        assert_matches_cold_refit(detector, config)

    def test_sequential_updates_match(self, graph, delta):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        users, merchants = delta
        half = users.size // 2
        detector.update(users[:half], merchants[:half])
        detector.update(users[half:], merchants[half:])
        assert_matches_cold_refit(detector, config)

    def test_delta_with_new_nodes(self, graph):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        detector.update([10**9, 10**9 + 1], [10**6, 3])
        assert detector.graph.n_users == graph.n_users + 2
        assert_matches_cold_refit(detector, config)

    def test_weighted_delta_onto_unweighted_graph(self, graph, delta):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        users, merchants = delta
        detector.update(users, merchants, weights=np.full(users.size, 2.5))
        assert detector.graph.is_weighted
        assert_matches_cold_refit(detector, config)

    def test_empty_delta_is_a_noop(self, graph):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        before = detector.detect(3)
        report = detector.update([], [])
        assert report.n_refreshed == 0 and report.n_new_edges == 0
        after = detector.detect(3)
        assert np.array_equal(before.user_labels, after.user_labels)

    def test_appearance_tracking_stays_consistent(self, graph, delta):
        config = make_config(track_appearances=True)
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        detector.update(*delta)
        cold = EnsemFDet(config).fit(detector.graph)
        warm = normalized_majority_vote(detector.vote_table, 0.5)
        fresh = normalized_majority_vote(cold.vote_table, 0.5)
        assert np.array_equal(warm.user_labels, fresh.user_labels)
        assert np.array_equal(warm.merchant_labels, fresh.merchant_labels)


class TestUpdateReport:
    def test_refresh_fraction_is_small_for_local_delta(self, graph, delta):
        # one stripe spans the whole delta -> only ≈ S·N members refresh
        config = make_config(sampler=StableEdgeSampler(0.2, stripe=4096))
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        report = detector.update(*delta)
        assert report.n_refreshed <= config.n_samples // 2
        assert report.total_seconds >= 0


class TestValidation:
    def test_rejects_unstable_sampler(self):
        with pytest.raises(DetectionError, match="StableEdgeSampler"):
            IncrementalEnsemFDet(make_config(sampler=RandomEdgeSampler(0.2)))

    def test_rejects_missing_seed(self):
        with pytest.raises(DetectionError, match="seed"):
            IncrementalEnsemFDet(make_config(seed=None))

    def test_update_before_fit_rejected(self, graph):
        detector = IncrementalEnsemFDet(make_config())
        with pytest.raises(DetectionError, match="fit"):
            detector.update([0], [0])
        with pytest.raises(DetectionError, match="fit"):
            detector.detect(1)


class TestPersistence:
    def test_save_load_roundtrip_detections(self, graph, tmp_path):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        path = tmp_path / "state.npz"
        detector.save(path)
        loaded = IncrementalEnsemFDet.load(path)
        assert loaded.graph == detector.graph
        for threshold in (1, 3, 6):
            assert np.array_equal(
                loaded.detect(threshold).user_labels,
                detector.detect(threshold).user_labels,
            )

    def test_update_after_load_matches_in_memory(self, graph, delta, tmp_path):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        path = tmp_path / "state.npz"
        detector.save(path)
        loaded = IncrementalEnsemFDet.load(path)
        report_memory = detector.update(*delta)
        report_loaded = loaded.update(*delta)
        assert report_memory.refreshed_samples == report_loaded.refreshed_samples
        assert detector.vote_table.user_votes == loaded.vote_table.user_votes
        assert_matches_cold_refit(loaded, config)

    def test_state_archive_contents(self, graph, tmp_path):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        path = tmp_path / "state.npz"
        detector.save(path)
        state = load_detection_state(path)
        assert state.n_samples == config.n_samples
        assert state.config["sampler"]["stripe"] == 128
        assert state.config["ensemble"]["seed"] == 17

    def test_weighted_graph_state_roundtrip(self, graph, tmp_path):
        config = make_config()
        detector = IncrementalEnsemFDet(config)
        rng = np.random.default_rng(2)
        detector.fit(graph.with_weights(rng.random(graph.n_edges)))
        path = tmp_path / "state.npz"
        detector.save(path)
        loaded = IncrementalEnsemFDet.load(path)
        assert loaded.graph.is_weighted
        assert np.array_equal(loaded.graph.edge_weights, detector.graph.edge_weights)
