"""ScoreSnapshot: capture parity, deterministic ranking, read semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import EnsemFDetConfig, IncrementalEnsemFDet
from repro.errors import DetectionError
from repro.fdet import FdetConfig
from repro.graph import WindowConfig
from repro.sampling import StableEdgeSampler
from repro.serve import ScoreSnapshot


def make_config(**overrides):
    defaults = dict(
        sampler=StableEdgeSampler(0.3, stripe=64),
        n_samples=8,
        fdet=FdetConfig(max_blocks=8),
        executor="serial",
        seed=23,
    )
    defaults.update(overrides)
    return EnsemFDetConfig(**defaults)


@pytest.fixture
def detector():
    graph = uniform_bipartite(150, 70, 1400, rng=3)
    det = IncrementalEnsemFDet(make_config(), window=WindowConfig(max_batches=4))
    det.fit(graph, timestamp=0.0)
    return det


@pytest.fixture
def snapshot(detector):
    return ScoreSnapshot.capture(detector, version=1)


class TestCapture:
    def test_votes_match_live_table(self, detector, snapshot):
        assert snapshot.user_votes == dict(detector.vote_table.user_votes)
        assert snapshot.merchant_votes == dict(detector.vote_table.merchant_votes)

    def test_votes_are_copies(self, detector, snapshot):
        detector.vote_table.user_votes[999999] = 42
        assert 999999 not in snapshot.user_votes

    def test_scores_parallel_to_all_users(self, detector, snapshot):
        assert snapshot.user_labels.size == detector.graph.n_users
        assert snapshot.user_scores.shape == snapshot.user_labels.shape
        for label, score in zip(
            snapshot.user_labels.tolist(), snapshot.user_scores.tolist()
        ):
            assert score == detector.vote_table.user_votes.get(label, 0)

    def test_graph_shape_recorded(self, detector, snapshot):
        assert snapshot.n_users == detector.graph.n_users
        assert snapshot.n_merchants == detector.graph.n_merchants
        assert snapshot.n_edges == detector.graph.n_edges
        assert snapshot.watermark == detector.window().watermark

    def test_append_only_detector_has_no_watermark(self):
        graph = uniform_bipartite(60, 30, 400, rng=1)
        det = IncrementalEnsemFDet(make_config())
        det.fit(graph)
        assert ScoreSnapshot.capture(det, version=1).watermark is None

    def test_default_threshold_is_quarter_of_n(self, detector):
        assert ScoreSnapshot.capture(detector, version=1).default_threshold == 2
        assert (
            ScoreSnapshot.capture(detector, version=1, default_threshold=5)
            .default_threshold
            == 5
        )


class TestRanking:
    def test_ranking_orders_by_score_then_index(self, snapshot):
        scores = snapshot.ranked_scores
        assert np.all(scores[:-1] >= scores[1:])
        # within a tied score run, node index (== position in user_labels)
        # must be ascending
        index_of = {label: i for i, label in enumerate(snapshot.user_labels.tolist())}
        ranked = snapshot.ranked_users.tolist()
        for a, b, sa, sb in zip(ranked, ranked[1:], scores, scores[1:]):
            if sa == sb:
                assert index_of[a] < index_of[b]

    def test_top_clamps_k(self, snapshot):
        n = snapshot.ranked_users.size
        assert snapshot.top(0) == []
        assert snapshot.top(-5) == []
        assert len(snapshot.top(n)) == n
        assert len(snapshot.top(n + 100)) == n
        assert snapshot.top(3) == snapshot.top(n)[:3]


class TestReads:
    def test_score_of_unknown_user_is_zero(self, snapshot):
        assert snapshot.score_of(10**9) == 0.0
        assert not snapshot.knows_user(10**9)

    def test_detection_matches_detector_detect(self, detector, snapshot):
        for threshold in range(1, 9):
            users, merchants = snapshot.detection(threshold)
            reference = detector.detect(threshold)
            assert users == reference.user_labels.tolist()
            assert merchants == reference.merchant_labels.tolist()

    def test_detection_rejects_threshold_below_one(self, snapshot):
        with pytest.raises(DetectionError, match="threshold"):
            snapshot.detection(0)

    def test_fingerprint_equality(self, detector, snapshot):
        again = ScoreSnapshot.capture(detector, version=2)
        assert snapshot.vote_fingerprint() == again.vote_fingerprint()
