"""DetectionService: single-writer serialisation, snapshot isolation, parity.

The acceptance bar for the serving layer: a reader must *never* observe a
vote table that differs from both the pre-update and the post-update fit —
each observed snapshot bit-compares against a cold
:meth:`EnsemFDet.fit_window` of the same accumulated graph — and that must
hold while an armed ``member.detect`` fault forces retries mid-update.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet
from repro.errors import DetectionError, InjectedFault
from repro.faults import arm, disarm
from repro.fdet import FdetConfig
from repro.graph import GraphAccumulator, WindowConfig
from repro.sampling import StableEdgeSampler
from repro.serve import DetectionService, ScoreSnapshot


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


def make_config(**overrides):
    defaults = dict(
        sampler=StableEdgeSampler(0.3, stripe=64),
        n_samples=8,
        fdet=FdetConfig(max_blocks=8),
        executor="serial",
        seed=23,
    )
    defaults.update(overrides)
    return EnsemFDetConfig(**defaults)


WINDOW = WindowConfig(max_batches=4)


def _batches(n: int, size: int = 25, seed: int = 41):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(0, 150, size), rng.integers(0, 70, size)) for _ in range(n)
    ]


def _fresh_service(**service_kwargs) -> tuple[DetectionService, "np.ndarray"]:
    graph = uniform_bipartite(150, 70, 1400, rng=3)
    detector = IncrementalEnsemFDet(make_config(), window=WINDOW)
    detector.fit(graph, timestamp=0.0)
    return DetectionService(detector, **service_kwargs), graph


def _cold_fingerprints(graph, batches) -> list[tuple]:
    """Expected vote fingerprint after each prefix of ``batches``, cold-fit.

    ``expected[k]`` is the fingerprint of a cold :meth:`EnsemFDet.fit_window`
    on batch 0 plus the first ``k`` update batches — snapshot version
    ``k + 1`` in service terms.
    """
    fingerprints = []
    accumulator = GraphAccumulator.from_graph(graph, window=WINDOW, timestamp=0.0)
    for k in range(len(batches) + 1):
        if k:
            users, merchants = batches[k - 1]
            accumulator.append(users, merchants, timestamp=float(k))
            accumulator.expire()  # the detector's update path expires per batch
        cold = EnsemFDet(make_config()).fit_window(
            accumulator.window(), track_members=True
        )
        fingerprints.append(
            (
                tuple(sorted((int(k), int(v)) for k, v in cold.vote_table.user_votes.items())),
                tuple(sorted((int(k), int(v)) for k, v in cold.vote_table.merchant_votes.items())),
            )
        )
    return fingerprints


class TestLifecycle:
    def test_requires_fitted_detector(self):
        with pytest.raises(DetectionError, match="fitted"):
            DetectionService(IncrementalEnsemFDet(make_config()))

    def test_boot_snapshot_is_version_one(self):
        service, _ = _fresh_service()
        assert service.snapshot.version == 1
        assert service.windowed
        service.close(save=False)

    def test_close_is_idempotent_and_blocks_new_work(self):
        service, _ = _fresh_service()
        service.close(save=False)
        service.close(save=False)
        with pytest.raises(DetectionError, match="closed"):
            service.submit_ingest([1], [2])

    def test_close_saves_state(self, tmp_path):
        state = tmp_path / "state.npz"
        service, _ = _fresh_service(state_path=state)
        service.close(save=True)
        detector, recovered = IncrementalEnsemFDet.load_with_recovery(state)
        assert recovered is None
        assert detector.graph.n_edges == service.snapshot.n_edges


class TestIngestValidation:
    def test_users_without_merchants_rejected(self):
        service, _ = _fresh_service()
        try:
            with pytest.raises(DetectionError, match="together"):
                service.ingest([1, 2], None)
        finally:
            service.close(save=False)

    def test_length_mismatch_rejected(self):
        service, _ = _fresh_service()
        try:
            with pytest.raises(DetectionError, match="mismatch"):
                service.ingest([1, 2], [3])
        finally:
            service.close(save=False)

    def test_empty_delta_rejected(self):
        service, _ = _fresh_service()
        try:
            with pytest.raises(DetectionError, match="nothing to apply"):
                service.ingest()
        finally:
            service.close(save=False)

    def test_deletions_on_append_only_state_rejected(self):
        graph = uniform_bipartite(60, 30, 400, rng=1)
        detector = IncrementalEnsemFDet(make_config())
        detector.fit(graph)
        service = DetectionService(detector)
        try:
            with pytest.raises(DetectionError, match="windowed"):
                service.ingest(
                    [1], [2], remove_users=[0], remove_merchants=[0]
                )
            with pytest.raises(DetectionError, match="windowed"):
                service.ingest([1], [2], timestamp=5.0)
        finally:
            service.close(save=False)

    def test_rejected_delta_occupies_no_writer_slot(self):
        service, _ = _fresh_service()
        try:
            before = service.stats()
            with pytest.raises(DetectionError):
                service.ingest([1, 2], [3])
            after = service.stats()
            assert after.updates_failed == before.updates_failed == 0
            assert after.updates_applied == before.updates_applied
        finally:
            service.close(save=False)


class TestIngestParity:
    def test_each_version_bit_identical_to_cold_window_fit(self):
        service, graph = _fresh_service()
        batches = _batches(4)
        expected = _cold_fingerprints(graph, batches)
        try:
            assert service.snapshot.vote_fingerprint() == expected[0]
            for k, (users, merchants) in enumerate(batches, start=1):
                report = service.ingest(users, merchants, timestamp=float(k))
                assert report["snapshot_version"] == k + 1
                assert service.snapshot.vote_fingerprint() == expected[k]
        finally:
            service.close(save=False)

    def test_deletion_delta_round_trips(self):
        service, graph = _fresh_service()
        try:
            report = service.ingest(
                remove_users=graph.edge_users[:3],
                remove_merchants=graph.edge_merchants[:3],
                timestamp=1.0,
            )
            assert report["n_removed_edges"] == 3
            assert report["n_new_edges"] == 0
            assert service.snapshot.version == 2
        finally:
            service.close(save=False)

    def test_failed_update_keeps_previous_snapshot(self):
        from repro.errors import QuorumError
        from repro.parallel import FaultTolerance

        graph = uniform_bipartite(150, 70, 1400, rng=3)
        # quorum just below 1.0: any member going stale fails the update
        # with QuorumError (at exactly 1.0 the raw failure re-raises instead)
        detector = IncrementalEnsemFDet(
            make_config(tolerance=FaultTolerance(max_retries=1, min_quorum=0.99)),
            window=WINDOW,
        )
        detector.fit(graph, timestamp=0.0)
        service = DetectionService(detector)
        try:
            before = service.snapshot
            arm("raise:point=member.detect,attempt=-1,times=-1")  # every retry fails
            users, merchants = _batches(1)[0]
            with pytest.raises(QuorumError):
                service.ingest(users, merchants, timestamp=1.0)
            disarm()
            assert service.snapshot is before
            assert service.stats().updates_failed == 1
            # the service recovers: the next delta applies normally
            report = service.ingest(users, merchants, timestamp=1.0)
            assert report["snapshot_version"] == 2
        finally:
            service.close(save=False)


class TestSnapshotIsolation:
    """A hammering reader never sees a half-merged vote table."""

    def _hammer(self, service, batches, expected, arm_plan=None):
        observed: dict[int, set] = {}
        errors: list[BaseException] = []
        done = threading.Event()

        def reader():
            try:
                while not done.is_set():
                    snapshot = service.snapshot
                    observed.setdefault(snapshot.version, set()).add(
                        snapshot.vote_fingerprint()
                    )
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            if arm_plan:
                arm(arm_plan)
            for k, (users, merchants) in enumerate(batches, start=1):
                service.ingest(users, merchants, timestamp=float(k))
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=30)
            disarm()
        assert not errors
        # every observed (version, fingerprint) bit-compares against the
        # cold fit of exactly that prefix — nothing in between ever leaks
        assert set(observed) <= set(range(1, len(batches) + 2))
        for version, fingerprints in observed.items():
            assert fingerprints == {expected[version - 1]}, (
                f"version {version} showed a vote table differing from the "
                "cold fit of its prefix"
            )
        # the hammer must actually have seen both pre- and post-update state
        assert 1 in observed and len(batches) + 1 in observed

    def test_reader_only_sees_cold_fit_states(self):
        service, graph = _fresh_service()
        batches = _batches(5)
        expected = _cold_fingerprints(graph, batches)
        try:
            self._hammer(service, batches, expected)
        finally:
            service.close(save=False)

    def test_isolation_holds_under_member_detect_retries(self):
        service, graph = _fresh_service()
        batches = _batches(5)
        expected = _cold_fingerprints(graph, batches)
        try:
            # every member's first attempt fails and recovers on retry,
            # stretching the mid-update danger window the readers probe
            self._hammer(
                service,
                batches,
                expected,
                arm_plan="raise:point=member.detect,times=-1",
            )
            assert service.stats().updates_applied == len(batches)
        finally:
            service.close(save=False)


class TestStatsAndHealth:
    def test_counters_accumulate(self):
        service, graph = _fresh_service()
        try:
            batches = _batches(2)
            for k, (users, merchants) in enumerate(batches, start=1):
                service.ingest(users, merchants, timestamp=float(k))
            stats = service.stats()
            assert stats.updates_applied == 2
            assert stats.edges_ingested > 0
            assert stats.pending_jobs == 0
            assert stats.uptime_seconds >= 0
            assert service.health()["status"] == "ok"
        finally:
            service.close(save=False)

    def test_save_state_counter_and_fault_surface(self, tmp_path):
        state = tmp_path / "state.npz"
        service, _ = _fresh_service(state_path=state)
        try:
            report = service.save_state()
            assert report["path"] == str(state)
            assert service.stats().snapshots_saved == 1
            arm("raise:point=state.write,stage=tmp_written")
            with pytest.raises(InjectedFault):
                service.save_state()
            disarm()
            # the armed crash never tore the on-disk snapshot
            detector, recovered = IncrementalEnsemFDet.load_with_recovery(state)
            assert recovered is None
            assert detector.graph.n_edges == service.snapshot.n_edges
        finally:
            service.close(save=False)
