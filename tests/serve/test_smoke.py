"""Serve smoke: golden-grid scenario replay through the HTTP API.

This is the CI ``serve-smoke`` contract: boot a real server, stream a
golden-grid attack scenario through ``POST /ingest``, and require the
``/top`` ranking to reproduce the committed golden row's precision@20 —
then run one chaos round (an armed ``state.write`` fault over HTTP) and
prove reads keep serving. A final test drives the actual ``ensemfdet
serve`` CLI as a subprocess end to end.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.datasets import uniform_bipartite
from repro.ensemble import EnsemFDetConfig, IncrementalEnsemFDet
from repro.faults import arm, disarm
from repro.fdet import FdetConfig
from repro.graph import save_edge_list
from repro.metrics.curves import precision_at_k
from repro.sampling import StableEdgeSampler
from repro.scenarios import BatchKind, accumulate_batches, make_scenario
from repro.serve import DetectionService, start_server_in_thread

GOLDEN_PATH = (
    Path(__file__).parent.parent / "scenarios" / "golden" / "scenario_grid.json"
)

#: the golden grid's shared ensemble knobs (see tests/scenarios/test_golden_grid.py)
GOLDEN_SEED = 7
GOLDEN_SCALE = 0.15
GOLDEN_K = 20


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


def request(url: str, method: str = "GET", payload: dict | None = None):
    """One HTTP exchange; returns ``(status, decoded JSON body)``."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def golden_config() -> EnsemFDetConfig:
    return EnsemFDetConfig(
        sampler=StableEdgeSampler(0.4, stripe=32),
        n_samples=8,
        fdet=FdetConfig(max_blocks=8),
        executor="serial",
        seed=GOLDEN_SEED,
    )


def golden_row(scenario: str, detector: str = "incremental") -> dict:
    rows = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    for row in rows:
        if row["scenario"] == scenario and row["detector"] == detector:
            return row
    raise AssertionError(f"no golden row for {scenario}/{detector}")


def _serve_scenario(name: str):
    """Fit on the honest background and boot a server ready for replay."""
    instance = make_scenario(name).generate(
        intensity=1.0, scale=GOLDEN_SCALE, seed=GOLDEN_SEED
    )
    detector = IncrementalEnsemFDet(golden_config())
    detector.fit(accumulate_batches(instance.batches[:1]))
    handle = start_server_in_thread(DetectionService(detector))
    return handle, instance


@pytest.mark.parametrize("scenario", ["naive_block", "camouflage", "staged"])
def test_replayed_scenario_reproduces_golden_precision(scenario):
    handle, instance = _serve_scenario(scenario)
    try:
        replayed = 0
        for batch, kind in zip(instance.attack_batches, instance.batch_kinds[1:]):
            if kind == BatchKind.CLEANUP:
                continue  # append-only replay, as in the golden grid
            payload = {
                "users": batch.users.tolist(),
                "merchants": batch.merchants.tolist(),
            }
            if batch.weights is not None:
                payload["weights"] = batch.weights.tolist()
            status, report = request(
                f"{handle.url}/ingest", method="POST", payload=payload
            )
            assert status == 200
            assert report["n_new_edges"] == batch.n_edges
            replayed += 1

        status, body = request(f"{handle.url}/top?k={GOLDEN_K}")
        assert status == 200
        ranking = [entry["user"] for entry in body["users"]]
        precision = round(
            precision_at_k(ranking, instance.dataset.blacklist.labels, GOLDEN_K), 6
        )
        assert precision == golden_row(scenario)["precision_at_k"], (
            f"served /top ranking for {scenario} drifted from the golden grid"
        )

        _, stats = request(f"{handle.url}/stats")
        assert stats["updates_applied"] == replayed
        assert stats["updates_failed"] == 0
    finally:
        handle.stop()


def test_chaos_round_over_http(tmp_path):
    """One ``state.write`` fault through the HTTP path, mid-scenario."""
    handle, instance = _serve_scenario("naive_block")
    state = tmp_path / "state.npz"
    handle.server.service.state_path = state
    try:
        batch = instance.attack_batches[0]
        request(
            f"{handle.url}/ingest",
            method="POST",
            payload={
                "users": batch.users.tolist(),
                "merchants": batch.merchants.tolist(),
            },
        )
        arm("raise:point=state.write,stage=tmp_written")
        status, body = request(f"{handle.url}/snapshot", method="POST", payload={})
        assert status == 500
        assert body["type"] == "InjectedFault"
        # reads keep answering from the live snapshot throughout
        status, body = request(f"{handle.url}/top?k=5")
        assert status == 200
        assert body["snapshot_version"] == 2
        disarm()
        status, _ = request(f"{handle.url}/snapshot", method="POST", payload={})
        assert status == 200
        detector, recovered = IncrementalEnsemFDet.load_with_recovery(state)
        assert recovered is None
        assert detector.graph.n_edges == handle.server.service.snapshot.n_edges
    finally:
        handle.stop()


class TestServeCli:
    """``ensemfdet serve`` as a real subprocess: boot, roundtrip, shutdown."""

    def test_serve_boot_roundtrip_sigterm(self, tmp_path):
        graph = uniform_bipartite(120, 60, 900, rng=0)
        edges = tmp_path / "stream.tsv"
        save_edge_list(graph, edges)
        state = tmp_path / "state.npz"
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli",
                "serve", str(edges), "--state", str(state),
                "--ratio", "0.25", "--samples", "8", "--stripe", "128",
                "--executor", "serial", "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = ""
            while "# serving on http://" not in line:
                line = proc.stdout.readline()
                assert line, "serve exited before becoming ready"
            url = line.split("# serving on ", 1)[1].strip()
            with urllib.request.urlopen(f"{url}/health", timeout=60) as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"
            status, body = request(f"{url}/top?k=5")
            assert status == 200
            assert len(body["users"]) == 5
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "# shutdown: state committed" in err
        assert "Traceback" not in err
        assert state.exists()
