"""HTTP front end: endpoint contracts, error mapping, and wire parity.

The acceptance bar lives in :class:`TestHttpParity`: the ``/score`` and
``/top`` responses of a live server must be **bit-identical** to a cold
:meth:`EnsemFDet.fit_window` on the same accumulated graph, after every
single ingest over the wire.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet
from repro.faults import arm, disarm
from repro.fdet import FdetConfig
from repro.graph import GraphAccumulator, WindowConfig
from repro.sampling import StableEdgeSampler
from repro.serve import DetectionService, start_server_in_thread


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


def make_config(**overrides):
    defaults = dict(
        sampler=StableEdgeSampler(0.3, stripe=64),
        n_samples=8,
        fdet=FdetConfig(max_blocks=8),
        executor="serial",
        seed=23,
    )
    defaults.update(overrides)
    return EnsemFDetConfig(**defaults)


WINDOW = WindowConfig(max_batches=4)


def request(url: str, method: str = "GET", payload: dict | None = None):
    """One HTTP exchange; returns ``(status, decoded JSON body)``."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _boot(graph=None, **service_kwargs):
    if graph is None:
        graph = uniform_bipartite(150, 70, 1400, rng=3)
    detector = IncrementalEnsemFDet(make_config(), window=WINDOW)
    detector.fit(graph, timestamp=0.0)
    service = DetectionService(detector, **service_kwargs)
    return start_server_in_thread(service), graph


@pytest.fixture(scope="class")
def served():
    """One read-only server shared by a whole test class (never ingests)."""
    handle, graph = _boot()
    yield handle, graph
    handle.stop()


class TestReadEndpoints:
    def test_health(self, served):
        handle, _ = served
        status, body = request(f"{handle.url}/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["fitted"] is True
        assert body["windowed"] is True
        assert body["snapshot_version"] == 1
        assert body["stale_members"] == []

    def test_stats(self, served):
        handle, graph = served
        status, body = request(f"{handle.url}/stats")
        assert status == 200
        assert body["n_users"] == graph.n_users
        assert body["n_edges"] == graph.n_edges
        assert body["updates_applied"] == 0
        assert body["n_samples"] == 8
        assert body["default_threshold"] == 2
        assert body["watermark"] == handle.server.service._detector.window().watermark

    def test_score_known_and_unknown(self, served):
        handle, _ = served
        snapshot = handle.server.service.snapshot
        label, score = next(iter(snapshot.user_votes.items()))
        status, body = request(f"{handle.url}/score/{label}")
        assert status == 200
        assert body["user"] == label
        assert body["score"] == score
        assert body["known"] is True
        assert body["flagged"] == (score >= snapshot.default_threshold)
        status, body = request(f"{handle.url}/score/999999999")
        assert status == 200
        assert body["score"] == 0.0
        assert body["known"] is False

    def test_top_is_sorted_and_clamped(self, served):
        handle, graph = served
        status, body = request(f"{handle.url}/top?k=10")
        assert status == 200
        assert body["k"] == 10
        scores = [entry["score"] for entry in body["users"]]
        assert scores == sorted(scores, reverse=True)
        status, body = request(f"{handle.url}/top?k={graph.n_users + 500}")
        assert body["k"] == graph.n_users
        status, body = request(f"{handle.url}/top?k=0")
        assert body["users"] == []

    def test_blocks_matches_detector(self, served):
        handle, _ = served
        service = handle.server.service
        status, body = request(f"{handle.url}/blocks?threshold=3")
        assert status == 200
        reference = service._detector.detect(3)
        assert body["users"] == reference.user_labels.tolist()
        assert body["merchants"] == reference.merchant_labels.tolist()
        assert body["n_users"] == len(body["users"])

    def test_blocks_defaults_to_service_threshold(self, served):
        handle, _ = served
        _, body = request(f"{handle.url}/blocks")
        assert body["threshold"] == handle.server.service.default_threshold

    def test_trailing_slash_is_tolerated(self, served):
        handle, _ = served
        status, _ = request(f"{handle.url}/health/")
        assert status == 200


class TestErrorMapping:
    def test_unknown_path_is_404(self, served):
        handle, _ = served
        status, body = request(f"{handle.url}/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_wrong_method_is_405(self, served):
        handle, _ = served
        assert request(f"{handle.url}/ingest")[0] == 405
        assert request(f"{handle.url}/top", method="POST", payload={})[0] == 405
        assert request(f"{handle.url}/health", method="POST", payload={})[0] == 405

    def test_non_integer_label_is_400(self, served):
        handle, _ = served
        status, body = request(f"{handle.url}/score/bob")
        assert status == 400
        assert "integer" in body["error"]

    def test_non_integer_k_is_400(self, served):
        handle, _ = served
        status, body = request(f"{handle.url}/top?k=many")
        assert status == 400
        assert "'k'" in body["error"]

    def test_zero_threshold_is_400(self, served):
        handle, _ = served
        status, body = request(f"{handle.url}/blocks?threshold=0")
        assert status == 400
        assert body["type"] == "DetectionError"

    def test_invalid_json_body_is_400(self, served):
        handle, _ = served
        req = urllib.request.Request(
            f"{handle.url}/ingest", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=60)
        assert excinfo.value.code == 400

    def test_unknown_ingest_field_is_400(self, served):
        handle, _ = served
        status, body = request(
            f"{handle.url}/ingest", method="POST", payload={"edges": [[1, 2]]}
        )
        assert status == 400
        assert "edges" in body["error"]

    def test_unpaired_columns_are_400(self, served):
        handle, _ = served
        status, body = request(
            f"{handle.url}/ingest", method="POST", payload={"users": [1, 2]}
        )
        assert status == 400
        assert body["type"] == "DetectionError"
        # the rejected delta never reached the writer
        assert request(f"{handle.url}/stats")[1]["updates_failed"] == 0

    def test_length_mismatch_is_400(self, served):
        handle, _ = served
        status, body = request(
            f"{handle.url}/ingest",
            method="POST",
            payload={"users": [1, 2], "merchants": [3]},
        )
        assert status == 400
        assert "mismatch" in body["error"]

    def test_append_only_rejects_deletions_over_http(self):
        graph = uniform_bipartite(60, 30, 400, rng=1)
        detector = IncrementalEnsemFDet(make_config())
        detector.fit(graph)
        handle = start_server_in_thread(DetectionService(detector))
        try:
            status, body = request(
                f"{handle.url}/ingest",
                method="POST",
                payload={
                    "users": [1],
                    "merchants": [2],
                    "remove_users": [0],
                    "remove_merchants": [0],
                },
            )
            assert status == 400
            assert "windowed" in body["error"]
        finally:
            handle.stop()


class TestKeepAlive:
    def test_many_requests_share_one_connection(self, served):
        handle, _ = served
        connection = http.client.HTTPConnection(handle.host, handle.port, timeout=60)
        try:
            versions = set()
            for _ in range(5):
                connection.request("GET", "/health")
                response = connection.getresponse()
                assert response.status == 200
                versions.add(json.loads(response.read())["snapshot_version"])
            assert versions == {1}
        finally:
            connection.close()

    def test_connection_close_is_honoured(self, served):
        handle, _ = served
        connection = http.client.HTTPConnection(handle.host, handle.port, timeout=60)
        try:
            connection.request("GET", "/health", headers={"Connection": "close"})
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()


class TestHttpParity:
    """The acceptance criterion, over the wire.

    After each ``POST /ingest``, ``/score`` and ``/top`` answers must be
    bit-identical to a cold :meth:`EnsemFDet.fit_window` of the same
    accumulated (and expired) graph.
    """

    def _cold_votes(self, accumulator):
        cold = EnsemFDet(make_config()).fit_window(accumulator.window())
        return {int(k): int(v) for k, v in cold.vote_table.user_votes.items()}

    def _expected_top(self, accumulator, user_labels):
        """All users as ``(label, votes)`` ranked by (-score, node index)."""
        votes = self._cold_votes(accumulator)
        scores = np.array([votes.get(int(u), 0) for u in user_labels], dtype=np.float64)
        order = np.lexsort((np.arange(user_labels.size), -scores))
        return [
            {"user": int(user_labels[i]), "score": float(scores[i])} for i in order
        ]

    def test_score_and_top_bit_identical_to_cold_window_fit(self):
        handle, graph = _boot()
        rng = np.random.default_rng(41)
        accumulator = GraphAccumulator.from_graph(graph, window=WINDOW, timestamp=0.0)
        try:
            for k in range(1, 5):
                users = rng.integers(0, 150, 25)
                merchants = rng.integers(0, 70, 25)
                status, report = request(
                    f"{handle.url}/ingest",
                    method="POST",
                    payload={
                        "users": users.tolist(),
                        "merchants": merchants.tolist(),
                        "timestamp": float(k),
                    },
                )
                assert status == 200
                assert report["snapshot_version"] == k + 1
                accumulator.append(users, merchants, timestamp=float(k))
                accumulator.expire()  # the detector's update path expires per batch

                labels = handle.server.service.snapshot.user_labels
                expected = self._expected_top(accumulator, labels)
                votes = {entry["user"]: entry["score"] for entry in expected}

                status, body = request(f"{handle.url}/top?k={labels.size}")
                assert status == 200
                assert body["users"] == expected
                assert body["snapshot_version"] == k + 1

                probes = [int(labels[0]), int(labels[-1]), 999999999] + [
                    entry["user"] for entry in expected[:5]
                ]
                for label in probes:
                    _, scored = request(f"{handle.url}/score/{label}")
                    assert scored["score"] == votes.get(label, 0.0)
        finally:
            handle.stop()

    def test_deletion_delta_over_http(self):
        handle, graph = _boot()
        try:
            status, report = request(
                f"{handle.url}/ingest",
                method="POST",
                payload={
                    "remove_users": graph.edge_users[:3].tolist(),
                    "remove_merchants": graph.edge_merchants[:3].tolist(),
                    "timestamp": 1.0,
                },
            )
            assert status == 200
            assert report["n_removed_edges"] == 3
            assert request(f"{handle.url}/stats")[1]["edges_retracted"] == 3
        finally:
            handle.stop()


class TestHttpChaos:
    def test_snapshot_fault_is_500_and_reads_keep_serving(self, tmp_path):
        state = tmp_path / "state.npz"
        handle, _ = _boot(state_path=state)
        try:
            status, body = request(f"{handle.url}/snapshot", method="POST", payload={})
            assert status == 200
            assert body["path"] == str(state)

            arm("raise:point=state.write,stage=tmp_written")
            status, body = request(f"{handle.url}/snapshot", method="POST", payload={})
            assert status == 500
            assert body["type"] == "InjectedFault"

            # the failed persist never disturbed the serving snapshot
            status, body = request(f"{handle.url}/top?k=5")
            assert status == 200
            assert body["snapshot_version"] == 1

            disarm()
            status, _ = request(f"{handle.url}/snapshot", method="POST", payload={})
            assert status == 200
            detector, recovered = IncrementalEnsemFDet.load_with_recovery(state)
            assert recovered is None
            assert detector.graph.n_edges == handle.server.service.snapshot.n_edges
        finally:
            handle.stop()

    def test_member_detect_fault_past_budget_is_500(self):
        from repro.parallel import FaultTolerance

        graph = uniform_bipartite(150, 70, 1400, rng=3)
        detector = IncrementalEnsemFDet(
            make_config(tolerance=FaultTolerance(max_retries=1, min_quorum=0.99)),
            window=WINDOW,
        )
        detector.fit(graph, timestamp=0.0)
        handle = start_server_in_thread(DetectionService(detector))
        try:
            arm("raise:point=member.detect,attempt=-1,times=-1")
            status, body = request(
                f"{handle.url}/ingest",
                method="POST",
                payload={"users": [1, 2], "merchants": [3, 4], "timestamp": 1.0},
            )
            assert status == 500
            assert body["type"] == "QuorumError"
            disarm()
            # the pre-failure snapshot keeps serving, and the service recovers
            assert request(f"{handle.url}/top?k=1")[1]["snapshot_version"] == 1
            status, report = request(
                f"{handle.url}/ingest",
                method="POST",
                payload={"users": [1, 2], "merchants": [3, 4], "timestamp": 1.0},
            )
            assert status == 200
            assert report["snapshot_version"] == 2
        finally:
            handle.stop()
