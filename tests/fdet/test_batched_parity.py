"""Batched native ensemble: bitwise parity with the per-member pipeline.

The batched backend (``repro.fdet.batched`` + ``repro_fdet_batch`` in the C
kernel) replaces per-member ``materialize_plan`` + ``Fdet.detect`` with one
multi-member kernel call, and the native vote merge replaces the Python
label tally. Everything it produces must be **bitwise identical** to the
reference pipeline — this suite pins that down across sampler families,
window modes (append-only and rolling), batch sizes (1 / 4 / N, including
degenerate empty members), execution backends (serial / thread / process ×
shared-memory on / off) and both weight policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import chung_lu_bipartite, uniform_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet, detect_on_plans
from repro.fdet import (
    AverageDegreeDensity,
    Fdet,
    FdetConfig,
    LogWeightedDensity,
    PeelEngine,
    PriorWeightedDensity,
    WeightPolicy,
)
from repro.fdet import batched, peeling_fast
from repro.fdet._native import native_available
from repro.graph import WindowConfig
from repro.sampling import (
    OneSideNodeSampler,
    RandomEdgeSampler,
    Side,
    StableEdgeSampler,
    TwoSideNodeSampler,
    materialize_plan,
    resolve_rng,
)
from repro.sampling.base import SamplePlan

pytestmark = pytest.mark.skipif(
    not native_available(), reason="native kernel unavailable (no C compiler)"
)

SAMPLERS = {
    "random-edge": lambda: RandomEdgeSampler(0.3),
    "stable-edge": lambda: StableEdgeSampler(0.3, stripe=16),
    "one-side-user": lambda: OneSideNodeSampler(0.3, Side.USER),
    "one-side-merchant": lambda: OneSideNodeSampler(0.3, Side.MERCHANT),
    "two-side": lambda: TwoSideNodeSampler(0.3),
}


@pytest.fixture(scope="module")
def weighted_graph():
    base = chung_lu_bipartite(120, 50, 900, rng=2)
    return base.with_weights(np.random.default_rng(7).uniform(0.1, 3.0, base.n_edges))


@pytest.fixture(scope="module")
def plain_graph():
    return uniform_bipartite(100, 45, 800, rng=5)


def assert_same_detection(left, right):
    """Bitwise equality of two per-member FDET outputs."""
    lres, rres = left.result, right.result
    assert lres.k_hat == rres.k_hat
    assert len(lres.all_blocks) == len(rres.all_blocks)
    for lb, rb in zip(lres.all_blocks, rres.all_blocks):
        assert np.array_equal(lb.user_labels, rb.user_labels)
        assert np.array_equal(lb.merchant_labels, rb.merchant_labels)
        assert lb.density == rb.density  # bitwise, no tolerance
        assert lb.n_edges == rb.n_edges
    assert np.array_equal(lres.detected_users(), rres.detected_users())
    assert np.array_equal(lres.detected_merchants(), rres.detected_merchants())
    if left.sample_users is not None or right.sample_users is not None:
        assert left.sample_users == right.sample_users
        assert left.sample_merchants == right.sample_merchants


def assert_tables_equal(a, b):
    assert a.n_samples == b.n_samples
    assert dict(a.user_votes) == dict(b.user_votes)
    assert dict(a.merchant_votes) == dict(b.merchant_votes)


def fit_pair(graph, **overrides):
    """(batched, per-member) fits of the same configuration."""
    results = []
    for native_batch in (True, False):
        config = EnsemFDetConfig(seed=11, native_batch=native_batch, **overrides)
        results.append(EnsemFDet(config).fit(graph))
    return results


class TestDetectManyDirect:
    """detect_many against materialize_plan + Fdet.detect, member by member."""

    @pytest.mark.parametrize("graph_name", ["weighted", "plain"])
    @pytest.mark.parametrize("policy", WeightPolicy.ALL)
    @pytest.mark.parametrize("metric", [LogWeightedDensity(), AverageDegreeDensity()])
    def test_bitwise_blocks(self, request, graph_name, policy, metric):
        graph = request.getfixturevalue(f"{graph_name}_graph")
        config = FdetConfig(max_blocks=8, weight_policy=policy, metric=metric)
        plans = RandomEdgeSampler(0.4).plan_many(graph, 6, resolve_rng(13))
        native = batched.detect_many(graph, plans, config)
        assert native is not None
        fdet = Fdet(config)
        for plan, nd in zip(plans, native):
            assert nd is not None
            expected = fdet.detect(materialize_plan(graph, plan))
            assert expected.k_hat == nd.result.k_hat
            assert len(expected.all_blocks) == len(nd.result.all_blocks)
            for eb, nb in zip(expected.all_blocks, nd.result.all_blocks):
                assert np.array_equal(eb.user_labels, nb.user_labels)
                assert np.array_equal(eb.merchant_labels, nb.merchant_labels)
                assert eb.density == nb.density
                assert eb.n_edges == nb.n_edges
            # detected indices gather to exactly the detected labels
            assert np.array_equal(
                np.sort(graph.user_labels[nd.detected_user_indices]),
                expected.detected_users(),
            )
            assert np.array_equal(
                np.sort(graph.merchant_labels[nd.detected_merchant_indices]),
                expected.detected_merchants(),
            )

    @pytest.mark.parametrize("n_members", [1, 4, 9])
    def test_batch_sizes_with_empty_members(self, weighted_graph, n_members):
        """Degenerate members (zero edges) ride along in any batch size."""
        config = FdetConfig(max_blocks=6)
        plans = list(
            RandomEdgeSampler(0.35).plan_many(weighted_graph, n_members, resolve_rng(3))
        )
        empty = SamplePlan(kind="edges", edge_indices=np.empty(0, dtype=np.int64))
        plans[0] = empty
        if n_members >= 4:
            plans[2] = empty
        native = batched.detect_many(weighted_graph, plans, config)
        assert native is not None
        fdet = Fdet(config)
        for plan, nd in zip(plans, native):
            expected = fdet.detect(materialize_plan(weighted_graph, plan))
            assert nd.result.k_hat == expected.k_hat
            assert [b.density for b in nd.result.all_blocks] == [
                b.density for b in expected.all_blocks
            ]

    def test_weight_scale_applied(self, plain_graph):
        """Horvitz–Thompson rescaled plans peel identically to materialized."""
        config = FdetConfig(max_blocks=6)
        rng = resolve_rng(9)
        indices = rng.choice(plain_graph.n_edges, size=300, replace=False)
        plan = SamplePlan(
            kind="edges",
            edge_indices=np.sort(indices).astype(np.int64),
            weight_scale=1.0 / 0.3,
        )
        native = batched.detect_many(plain_graph, [plan], config)
        expected = Fdet(config).detect(materialize_plan(plain_graph, plan))
        assert native[0].result.k_hat == expected.k_hat
        assert [b.density for b in native[0].result.all_blocks] == [
            b.density for b in expected.all_blocks
        ]

    def test_force_python_hook_disables_batch(self, weighted_graph, monkeypatch):
        monkeypatch.setattr(peeling_fast, "_force_python", True)
        assert batched.batch_kernels() is None
        plans = RandomEdgeSampler(0.3).plan_many(weighted_graph, 2, resolve_rng(1))
        assert batched.detect_many(weighted_graph, plans, FdetConfig()) is None


class TestEligibilityGating:
    def test_config_gating(self):
        assert batched.config_eligible(FdetConfig())
        assert batched.config_eligible(FdetConfig(metric=AverageDegreeDensity()))
        # prior-carrying metric overrides the node-weight hooks
        assert not batched.config_eligible(
            FdetConfig(metric=PriorWeightedDensity(np.zeros(1), np.zeros(1)))
        )
        assert not batched.config_eligible(FdetConfig(engine=PeelEngine.REFERENCE))

    def test_plan_gating(self, weighted_graph):
        edge_plan = RandomEdgeSampler(0.3).plan_many(weighted_graph, 1, resolve_rng(0))[0]
        node_plan = TwoSideNodeSampler(0.3).plan_many(weighted_graph, 1, resolve_rng(0))[0]
        assert batched.plan_eligible(edge_plan)
        if node_plan.kind == "nodes":
            assert not batched.plan_eligible(node_plan)

    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_BATCH", raising=False)
        assert batched.resolve_native_batch(None) is True
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "0")
        assert batched.resolve_native_batch(None) is False
        assert batched.resolve_native_batch(True) is True  # explicit wins
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "1")
        assert batched.resolve_native_batch(False) is False


class TestSamplerFamilyParity:
    """fit() with the batched backend vs the per-member path, per family."""

    @pytest.mark.parametrize("family", sorted(SAMPLERS))
    def test_fit_parity(self, weighted_graph, family):
        batch, reference = fit_pair(
            weighted_graph,
            sampler=SAMPLERS[family](),
            n_samples=8,
            fdet=FdetConfig(max_blocks=8),
        )
        assert_tables_equal(batch.vote_table, reference.vote_table)
        for left, right in zip(batch.sample_detections, reference.sample_detections):
            assert_same_detection(left, right)

    @pytest.mark.parametrize("policy", WeightPolicy.ALL)
    def test_weight_policy_parity(self, plain_graph, policy):
        batch, reference = fit_pair(
            plain_graph,
            sampler=RandomEdgeSampler(0.3),
            n_samples=6,
            fdet=FdetConfig(max_blocks=8, weight_policy=policy),
        )
        assert_tables_equal(batch.vote_table, reference.vote_table)

    def test_track_appearances_parity(self, weighted_graph):
        batch, reference = fit_pair(
            weighted_graph,
            sampler=RandomEdgeSampler(0.3),
            n_samples=6,
            track_appearances=True,
        )
        assert_tables_equal(batch.vote_table, reference.vote_table)
        assert dict(batch.vote_table.user_appearances) == dict(
            reference.vote_table.user_appearances
        )
        assert dict(batch.vote_table.merchant_appearances) == dict(
            reference.vote_table.merchant_appearances
        )


class TestWindowedParity:
    """Rolling-window fits: liveness masks AND-ed into member edge sets."""

    def _stream(self, detector, graph):
        rng = np.random.default_rng(41)
        for step in range(4):
            users = rng.integers(0, 150, 25)
            merchants = rng.integers(0, 70, 25)
            if step == 2:
                detector.update(
                    users,
                    merchants,
                    remove_users=graph.edge_users[:2],
                    remove_merchants=graph.edge_merchants[:2],
                    timestamp=float(step + 1),
                )
            else:
                detector.update(users, merchants, timestamp=float(step + 1))

    def _config(self, native_batch):
        return EnsemFDetConfig(
            sampler=StableEdgeSampler(0.3, stripe=64),
            n_samples=8,
            fdet=FdetConfig(max_blocks=8),
            seed=23,
            native_batch=native_batch,
        )

    def test_incremental_and_cold_window_parity(self):
        graph = uniform_bipartite(150, 70, 1400, rng=3)
        detectors = {}
        for native_batch in (True, False):
            detector = IncrementalEnsemFDet(
                self._config(native_batch), window=WindowConfig(max_batches=3)
            )
            detector.fit(graph, timestamp=0.0)
            self._stream(detector, graph)
            detectors[native_batch] = detector
        warm_batch, warm_reference = detectors[True], detectors[False]
        # the 3-batch window really expired edges — the liveness overlay is live
        assert warm_batch.window().watermark > warm_batch.window().n_live
        assert_tables_equal(warm_batch.vote_table, warm_reference.vote_table)
        # cold window fits, both backends, against the warm reference
        for native_batch in (True, False):
            cold = EnsemFDet(self._config(native_batch)).fit_window(
                warm_batch.window(), track_members=True
            )
            assert_tables_equal(cold.vote_table, warm_reference.vote_table)

    def test_append_only_window_parity(self):
        graph = uniform_bipartite(120, 60, 1000, rng=8)
        detectors = {}
        for native_batch in (True, False):
            detector = IncrementalEnsemFDet(self._config(native_batch))
            detector.fit(graph, timestamp=0.0)
            rng = np.random.default_rng(17)
            detector.update(rng.integers(0, 120, 30), rng.integers(0, 60, 30))
            detectors[native_batch] = detector
        assert_tables_equal(detectors[True].vote_table, detectors[False].vote_table)


class TestBackendMatrix:
    """The batched backend composes with every executor and transport."""

    @pytest.mark.parametrize(
        "executor,shared_memory",
        [
            ("serial", False),
            ("thread", False),
            ("process", True),
            ("process", False),
        ],
    )
    def test_backend_parity(self, weighted_graph, executor, shared_memory):
        reference = EnsemFDet(
            EnsemFDetConfig(
                sampler=RandomEdgeSampler(0.3), n_samples=6, seed=11, native_batch=False
            )
        ).fit(weighted_graph)
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.3),
            n_samples=6,
            seed=11,
            executor=executor,
            n_workers=2,
            shared_memory=shared_memory,
            native_batch=True,
        )
        result = EnsemFDet(config).fit(weighted_graph)
        assert_tables_equal(result.vote_table, reference.vote_table)
        for left, right in zip(result.sample_detections, reference.sample_detections):
            assert_same_detection(left, right)

    def test_detect_on_plans_parity(self, plain_graph):
        config = FdetConfig(max_blocks=6)
        plans = RandomEdgeSampler(0.4).plan_many(plain_graph, 5, resolve_rng(2))
        batch = detect_on_plans(plain_graph, plans, config, native_batch=True)
        reference = detect_on_plans(plain_graph, plans, config, native_batch=False)
        for left, right in zip(batch, reference):
            assert_same_detection(left, right)


class TestNativeVoteMerge:
    def test_counters_match_python_tally(self, weighted_graph):
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.35), n_samples=7, seed=5, native_batch=True
        )
        result = EnsemFDet(config).fit(weighted_graph)
        counters = batched.vote_counters(result.sample_detections, weighted_graph)
        assert counters is not None
        from repro.ensemble.voting import VoteTable

        expected = VoteTable.from_detections(
            [d.result.detected_users().tolist() for d in result.sample_detections],
            [d.result.detected_merchants().tolist() for d in result.sample_detections],
        )
        assert dict(counters[0]) == dict(expected.user_votes)
        assert dict(counters[1]) == dict(expected.merchant_votes)

    def test_refuses_detections_without_indices(self, weighted_graph):
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.35), n_samples=4, seed=5, native_batch=False
        )
        result = EnsemFDet(config).fit(weighted_graph)
        assert batched.vote_counters(result.sample_detections, weighted_graph) is None
