"""Tests for the prior-weighted density extension (Fraudar's a_i hook)."""

from __future__ import annotations

import pytest

from repro.errors import DetectionError
from repro.fdet import Fdet, FdetConfig, PriorWeightedDensity
from repro.graph import BipartiteGraph


def two_cliques() -> BipartiteGraph:
    """Two equally dense 3x3 bicliques on users {0..2} and {3..5}."""
    edges = [(u, v) for u in range(3) for v in range(3)]
    edges += [(3 + u, 3 + v) for u in range(3) for v in range(3)]
    return BipartiteGraph.from_edges(edges, n_users=6, n_merchants=6)


class TestPriorWeightedDensity:
    def test_negative_priors_rejected(self):
        with pytest.raises(DetectionError):
            PriorWeightedDensity(user_priors={1: -0.5})

    def test_no_priors_behaves_like_log_weighted(self, clique_graph):
        from repro.fdet import LogWeightedDensity

        plain = LogWeightedDensity()
        with_hook = PriorWeightedDensity()
        assert with_hook.density(clique_graph) == pytest.approx(plain.density(clique_graph))
        assert with_hook.user_weights(clique_graph) is None

    def test_priors_lookup_by_label(self):
        graph = BipartiteGraph(
            2, 1, [0, 1], [0, 0], user_labels=[100, 200], merchant_labels=[300]
        )
        metric = PriorWeightedDensity(user_priors={200: 2.0}, merchant_priors={300: 1.0})
        users = metric.user_weights(graph)
        merchants = metric.merchant_weights(graph)
        assert users.tolist() == [0.0, 2.0]
        assert merchants.tolist() == [1.0]

    def test_priors_survive_subgraphing(self):
        graph = BipartiteGraph(
            2, 1, [0, 1], [0, 0], user_labels=[100, 200], merchant_labels=[300]
        )
        metric = PriorWeightedDensity(user_priors={200: 2.0})
        sub = graph.edge_subgraph([1])  # only user 200 remains
        assert metric.user_weights(sub).tolist() == [2.0]

    def test_priors_break_tie_between_equal_blocks(self):
        """Side information steers FDET toward the flagged clique first."""
        graph = two_cliques()
        plain_first = Fdet(FdetConfig(max_blocks=1)).detect(graph).all_blocks[0]
        assert set(plain_first.user_labels.tolist()) == {0, 1, 2, 3, 4, 5}  # tie: both kept

        hinted = PriorWeightedDensity(user_priors={3: 1.0, 4: 1.0, 5: 1.0})
        config = FdetConfig(metric=hinted, max_blocks=1)
        first = Fdet(config).detect(graph).all_blocks[0]
        assert set(first.user_labels.tolist()) == {3, 4, 5}

    def test_density_includes_prior_mass(self):
        graph = BipartiteGraph.from_edges([(0, 0)])
        metric = PriorWeightedDensity(user_priors={0: 4.0})
        plain = PriorWeightedDensity()
        assert metric.density(graph) == pytest.approx(plain.density(graph) + 2.0)
