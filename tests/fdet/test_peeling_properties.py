"""Property-based tests for the peeling engine and truncation rules."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdet import (
    AverageDegreeDensity,
    FirstDifferenceRule,
    LogWeightedDensity,
    SecondDifferenceRule,
    greedy_peel,
)
from repro.graph import BipartiteGraph


@st.composite
def graphs_with_weights(draw):
    n_users = draw(st.integers(1, 10))
    n_merchants = draw(st.integers(1, 8))
    n_edges = draw(st.integers(0, 30))
    edge_users = draw(st.lists(st.integers(0, n_users - 1), min_size=n_edges, max_size=n_edges))
    edge_merchants = draw(
        st.lists(st.integers(0, n_merchants - 1), min_size=n_edges, max_size=n_edges)
    )
    graph = BipartiteGraph(n_users, n_merchants, edge_users, edge_merchants)
    weights = np.array(
        draw(
            st.lists(
                st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
                min_size=n_edges,
                max_size=n_edges,
            )
        ),
        dtype=np.float64,
    )
    return graph, weights


@given(graphs_with_weights())
@settings(max_examples=80, deadline=None)
def test_peel_density_at_least_initial(case):
    graph, weights = case
    result = greedy_peel(graph, weights)
    if graph.n_nodes:
        assert result.density >= result.densities[0] - 1e-9


@given(graphs_with_weights())
@settings(max_examples=80, deadline=None)
def test_peel_density_matches_reported_maximum(case):
    graph, weights = case
    result = greedy_peel(graph, weights)
    if graph.n_nodes:
        assert result.density == max(result.densities)


@given(graphs_with_weights())
@settings(max_examples=80, deadline=None)
def test_peel_masks_consistent_with_counts(case):
    graph, weights = case
    result = greedy_peel(graph, weights)
    assert result.user_mask.shape == (graph.n_users,)
    assert result.merchant_mask.shape == (graph.n_merchants,)
    assert result.n_nodes == result.user_mask.sum() + result.merchant_mask.sum()


@given(graphs_with_weights())
@settings(max_examples=60, deadline=None)
def test_peel_density_equals_recomputed_density_on_prefix(case):
    graph, weights = case
    result = greedy_peel(graph, weights)
    if result.n_nodes == 0:
        return
    inside = result.edge_indices(graph)
    recomputed = float(weights[inside].sum()) / result.n_nodes
    assert abs(recomputed - result.density) < 1e-9


@given(graphs_with_weights())
@settings(max_examples=40, deadline=None)
def test_peel_invariant_under_node_relabelling(case):
    """Permuting user ids must not change the best density found.

    Greedy peeling breaks priority ties by node id, so with tied
    priorities the result legitimately depends on the labelling (e.g.
    several unit-weight edges). Distinct power-of-two edge weights make
    every node's priority a unique subset sum at every step — the only
    possible ties (isolated nodes at 0, and a degree-matched user/merchant
    pair sharing the exact same edges) provably cannot alter the density
    trajectory — so the invariance holds exactly.
    """
    graph, _ = case
    weights = 2.0 ** np.arange(graph.n_edges)
    result = greedy_peel(graph, weights)

    rng = np.random.default_rng(0)
    perm = rng.permutation(graph.n_users)
    remapped = BipartiteGraph(
        graph.n_users,
        graph.n_merchants,
        perm[graph.edge_users],
        graph.edge_merchants,
    )
    permuted = greedy_peel(remapped, weights)
    assert abs(result.density - permuted.density) < 1e-9


@given(
    st.lists(st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False), min_size=1, max_size=25)
)
@settings(max_examples=100, deadline=None)
def test_truncation_rules_stay_in_bounds(series):
    for rule in (SecondDifferenceRule(), FirstDifferenceRule()):
        k = rule.truncate(series)
        assert 1 <= k <= len(series)


@given(graphs_with_weights())
@settings(max_examples=40, deadline=None)
def test_metric_density_permutation_invariant(case):
    graph, _ = case
    metric = LogWeightedDensity()
    base = metric.density(graph)
    rng = np.random.default_rng(1)
    perm = rng.permutation(graph.n_edges)
    shuffled = BipartiteGraph(
        graph.n_users,
        graph.n_merchants,
        graph.edge_users[perm],
        graph.edge_merchants[perm],
    )
    assert abs(metric.density(shuffled) - base) < 1e-9


@given(graphs_with_weights())
@settings(max_examples=40, deadline=None)
def test_average_degree_density_formula(case):
    graph, _ = case
    metric = AverageDegreeDensity()
    if graph.n_nodes:
        assert abs(metric.density(graph) - graph.n_edges / graph.n_nodes) < 1e-12
