"""Unit & behavioural tests for the FDET detector (paper Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import FraudBlockSpec, inject_fraud_blocks, uniform_bipartite
from repro.errors import DetectionError, EmptyGraphError
from repro.fdet import (
    AverageDegreeDensity,
    Fdet,
    FdetConfig,
    FixedKRule,
    WeightPolicy,
)
from repro.graph import BipartiteGraph


class TestFdetConfig:
    def test_defaults(self):
        config = FdetConfig()
        assert config.max_blocks == 30
        assert config.weight_policy == WeightPolicy.REFRESH

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_blocks": 0},
            {"weight_policy": "bogus"},
            {"min_block_edges": 0},
            {"min_density_ratio": 1.0},
            {"min_density_ratio": -0.1},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(DetectionError):
            FdetConfig(**kwargs)


class TestFdetDetect:
    def test_single_clique_one_block(self, clique_graph):
        result = Fdet(FdetConfig(max_blocks=5)).detect(clique_graph)
        assert len(result.all_blocks) >= 1
        first = result.all_blocks[0]
        assert first.n_users == 5
        assert first.n_merchants == 4
        assert first.n_edges == 20

    def test_two_disjoint_cliques_found_in_density_order(self):
        edges = [(u, v) for u in range(6) for v in range(6)]  # big clique
        edges += [(6 + u, 6 + v) for u in range(3) for v in range(3)]  # small clique
        graph = BipartiteGraph.from_edges(edges, n_users=9, n_merchants=9)
        result = Fdet(FdetConfig(max_blocks=5, metric=AverageDegreeDensity())).detect(graph)
        assert len(result.all_blocks) >= 2
        first, second = result.all_blocks[0], result.all_blocks[1]
        assert set(first.user_labels.tolist()) == set(range(6))
        assert set(second.user_labels.tolist()) == {6, 7, 8}
        assert first.density > second.density

    def test_blocks_edge_disjoint(self, planted_graph):
        graph, _ = planted_graph
        result = Fdet(FdetConfig(max_blocks=6)).detect(graph)
        # edge-disjoint: total block edges cannot exceed the graph's edges
        assert sum(b.n_edges for b in result.all_blocks) <= graph.n_edges

    def test_empty_graph_no_blocks(self):
        result = Fdet().detect(BipartiteGraph.empty(4, 4))
        assert result.all_blocks == ()
        assert result.k_hat == 0
        assert result.detected_users().size == 0

    def test_max_blocks_respected(self, planted_graph):
        graph, _ = planted_graph
        result = Fdet(FdetConfig(max_blocks=2)).detect(graph)
        assert len(result.all_blocks) <= 2

    def test_densities_non_increasing_under_frozen_weights(self, planted_graph):
        """With frozen weights the greedy's best block can only get worse."""
        graph, _ = planted_graph
        result = Fdet(
            FdetConfig(max_blocks=8, weight_policy=WeightPolicy.FROZEN)
        ).detect(graph)
        densities = result.densities
        assert np.all(np.diff(densities) <= 1e-9)

    def test_truncation_bounds(self, planted_graph):
        graph, _ = planted_graph
        result = Fdet(FdetConfig(max_blocks=8)).detect(graph)
        assert 0 <= result.k_hat <= len(result.all_blocks)
        assert len(result.blocks) == result.k_hat

    def test_fixed_k_rule(self, planted_graph):
        graph, _ = planted_graph
        result = Fdet(FdetConfig(max_blocks=8, truncation=FixedKRule(2))).detect(graph)
        assert result.k_hat == min(2, len(result.all_blocks))

    def test_detected_users_union_and_k_override(self, planted_graph):
        graph, _ = planted_graph
        result = Fdet(FdetConfig(max_blocks=6)).detect(graph)
        all_users = result.detected_users(k=len(result.all_blocks))
        truncated = result.detected_users()
        assert set(truncated.tolist()) <= set(all_users.tolist())

    def test_total_density_objective(self, planted_graph):
        graph, _ = planted_graph
        result = Fdet(FdetConfig(max_blocks=6)).detect(graph)
        assert result.total_density() == pytest.approx(
            sum(b.density for b in result.blocks)
        )

    def test_min_density_ratio_stops_early(self, planted_graph):
        graph, _ = planted_graph
        unbounded = Fdet(FdetConfig(max_blocks=10)).detect(graph)
        bounded = Fdet(FdetConfig(max_blocks=10, min_density_ratio=0.9)).detect(graph)
        assert len(bounded.all_blocks) <= len(unbounded.all_blocks)

    def test_planted_blocks_recovered_before_truncation_point(self):
        """Δ²-truncation keeps the fraud plateau, drops the noise floor.

        Definition 3's elbow needs a plateau-then-cliff score shape, i.e. at
        least ~3 comparable fraud blocks ahead of the background blocks —
        which is the regime the paper operates in (k̂ in the "few to few
        tens").
        """
        rng = np.random.default_rng(7)
        background = uniform_bipartite(400, 300, 400, rng=rng)
        specs = [
            FraudBlockSpec(20, 6, density=rho, reuse_merchant_fraction=0.0)
            for rho in (0.9, 0.8, 0.7, 0.6)
        ]
        injection = inject_fraud_blocks(background, specs, rng)
        result = Fdet(FdetConfig(max_blocks=10)).detect(injection.graph)
        detected = set(result.detected_users().tolist())
        truth = set(injection.fraud_user_labels.tolist())
        recall = len(detected & truth) / len(truth)
        precision = len(detected & truth) / max(len(detected), 1)
        assert recall >= 0.85
        assert precision >= 0.7

    def test_densest_block_single(self, clique_graph):
        block = Fdet().densest_block(clique_graph)
        assert block.n_users == 5
        assert block.n_edges == 20

    def test_densest_block_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            Fdet().densest_block(BipartiteGraph.empty(2, 2))

    def test_block_labels_sorted(self, planted_graph):
        graph, _ = planted_graph
        result = Fdet(FdetConfig(max_blocks=4)).detect(graph)
        for block in result.all_blocks:
            assert np.all(np.diff(block.user_labels) > 0)
            assert np.all(np.diff(block.merchant_labels) > 0)


class TestWeightPolicies:
    def test_policies_agree_on_first_block(self, planted_graph):
        graph, _ = planted_graph
        refresh = Fdet(FdetConfig(max_blocks=1, weight_policy=WeightPolicy.REFRESH)).detect(graph)
        frozen = Fdet(FdetConfig(max_blocks=1, weight_policy=WeightPolicy.FROZEN)).detect(graph)
        # first block sees identical degrees under both policies
        assert np.array_equal(
            refresh.all_blocks[0].user_labels, frozen.all_blocks[0].user_labels
        )

    def test_policies_may_differ_later(self, planted_graph):
        graph, _ = planted_graph
        refresh = Fdet(FdetConfig(max_blocks=6, weight_policy=WeightPolicy.REFRESH)).detect(graph)
        frozen = Fdet(FdetConfig(max_blocks=6, weight_policy=WeightPolicy.FROZEN)).detect(graph)
        # both must still produce valid results (no assertion of equality)
        assert len(refresh.all_blocks) >= 1
        assert len(frozen.all_blocks) >= 1
