"""Native kernel loader: build cache, fallbacks, and thread pinning."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ReproError
from repro.fdet import _native


@pytest.fixture(autouse=True)
def _fresh_loader_state():
    """Each test drives the loader from a clean slate and leaves one behind."""
    _native._reset_for_tests()
    yield
    _native._reset_for_tests()


def _compiler_available() -> bool:
    return _native._find_compiler() is not None


needs_compiler = pytest.mark.skipif(
    not _compiler_available(), reason="no C compiler on this host"
)


class TestBuildCache:
    @needs_compiler
    def test_cache_dir_is_reused_across_loads(self, tmp_path, monkeypatch):
        cache = tmp_path / "kernel-cache"
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(cache))
        assert _native.native_available()
        built = sorted(cache.glob("peel-*.so"))
        assert len(built) == 1
        stamp = built[0].stat().st_mtime_ns

        _native._reset_for_tests()
        assert _native.native_available()
        assert sorted(cache.glob("peel-*.so")) == built
        assert built[0].stat().st_mtime_ns == stamp  # cache hit, no rebuild

    @needs_compiler
    def test_unusable_cache_dir_falls_back_to_tmp_build(self, tmp_path, monkeypatch):
        # a *file* at the cache path makes makedirs fail deterministically
        # (even as root, where permission bits alone would not)
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(blocker))
        directory, reusable = _native._build_dir()
        assert not reusable
        assert directory != str(blocker)
        assert os.path.isdir(directory)
        # the kernel still loads through the fallback build
        assert _native.native_available()

    def test_untrusted_cache_dir_is_rejected(self, tmp_path, monkeypatch):
        if not hasattr(os, "getuid"):
            pytest.skip("no POSIX permission semantics")
        loose = tmp_path / "world-writable"
        loose.mkdir()
        loose.chmod(0o777)  # group/other writable: another user could plant a .so
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(loose))
        directory, reusable = _native._build_dir()
        assert not reusable
        assert directory != str(loose)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert _native.load_kernels() is None
        assert _native.load_peel_kernel() is None
        assert not _native.native_available()

    @needs_compiler
    def test_extra_cflags_change_the_cache_key(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(cache))
        assert _native.native_available()
        monkeypatch.setenv("REPRO_NATIVE_CFLAGS", "-DREPRO_CACHE_KEY_PROBE=1")
        _native._reset_for_tests()
        assert _native.native_available()
        assert len(sorted(cache.glob("peel-*.so"))) == 2  # distinct keyed builds


class TestKernelHandle:
    @needs_compiler
    def test_kernels_expose_all_entry_points(self):
        kernels = _native.load_kernels()
        assert kernels is not None
        for name in ("greedy_peel", "fdet_batch", "accumulate_votes", "pairwise_sum"):
            assert getattr(kernels, name) is not None
        assert isinstance(kernels.has_openmp, bool)

    @needs_compiler
    def test_pairwise_sum_matches_numpy_bitwise(self):
        kernels = _native.load_kernels()
        rng = np.random.default_rng(42)
        for size in (0, 1, 7, 8, 9, 127, 128, 129, 1000, 4097):
            values = np.ascontiguousarray(rng.random(size))
            assert kernels.pairwise_sum(values, size) == float(np.sum(values))

    @needs_compiler
    def test_accumulate_votes_counts_indices(self):
        kernels = _native.load_kernels()
        indices = np.array([0, 2, 2, 5, 0, 2], dtype=np.int64)
        votes = np.zeros(6, dtype=np.int64)
        kernels.accumulate_votes(indices, indices.size, votes)
        assert votes.tolist() == [2, 0, 3, 0, 0, 1]


class TestNativeThreads:
    def test_defaults_to_cores_over_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert _native.native_threads() == 8
        assert _native.native_threads(n_workers=2) == 4
        assert _native.native_threads(n_workers=3) == 2
        assert _native.native_threads(n_workers=16) == 1  # floored at 1

    def test_env_pin_is_capped_by_oversubscription_guard(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "3")
        assert _native.native_threads() == 3
        # workers x threads <= cores: a 4-worker pool caps the pin at 2
        assert _native.native_threads(n_workers=4) == 2
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "100")
        assert _native.native_threads(n_workers=2) == 4
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "0")
        assert _native.native_threads() == 1

    def test_non_integer_pin_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "many")
        with pytest.raises(ReproError, match="REPRO_NATIVE_THREADS"):
            _native.native_threads()
