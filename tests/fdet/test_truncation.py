"""Unit tests for truncating-point rules (paper Definition 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DetectionError
from repro.fdet import (
    FirstDifferenceRule,
    FixedKRule,
    SecondDifferenceRule,
    second_differences,
)


class TestSecondDifferences:
    def test_formula(self):
        deltas = second_differences([3.0, 2.0, 1.5])
        assert deltas.tolist() == [0.5]  # 1.5 - 4.0 + 3.0

    def test_short_series(self):
        assert second_differences([1.0]).size == 0
        assert second_differences([1.0, 0.5]).size == 0

    def test_linear_series_zero(self):
        deltas = second_differences([4.0, 3.0, 2.0, 1.0])
        assert np.allclose(deltas, 0.0)


class TestSecondDifferenceRule:
    def test_sharp_cliff(self):
        # flat-ish fraud plateau, then a cliff into the noise floor
        series = [1.20, 1.15, 1.10, 1.05, 0.40, 0.38, 0.36]
        assert SecondDifferenceRule().truncate(series) == 4

    def test_cliff_at_second_block(self):
        series = [1.2, 1.1, 0.3, 0.29, 0.28]
        assert SecondDifferenceRule().truncate(series) == 2

    def test_short_series_kept_whole(self):
        rule = SecondDifferenceRule()
        assert rule.truncate([]) == 0
        assert rule.truncate([1.0]) == 1
        assert rule.truncate([1.0, 0.5]) == 2

    def test_result_always_in_bounds(self):
        rule = SecondDifferenceRule()
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(1, 20))
            series = np.sort(rng.random(n))[::-1].tolist()
            k = rule.truncate(series)
            assert 1 <= k <= n


class TestFirstDifferenceRule:
    def test_largest_drop(self):
        series = [1.0, 0.95, 0.4, 0.39]
        assert FirstDifferenceRule().truncate(series) == 2

    def test_single_block(self):
        assert FirstDifferenceRule().truncate([1.0]) == 1

    def test_empty(self):
        assert FirstDifferenceRule().truncate([]) == 0

    def test_bounds(self):
        rng = np.random.default_rng(1)
        rule = FirstDifferenceRule()
        for _ in range(50):
            n = int(rng.integers(1, 15))
            series = rng.random(n).tolist()
            assert 1 <= rule.truncate(series) <= n


class TestFixedKRule:
    def test_truncates_to_k(self):
        assert FixedKRule(3).truncate([1.0, 0.9, 0.8, 0.7]) == 3

    def test_clamped_to_series_length(self):
        assert FixedKRule(30).truncate([1.0, 0.9]) == 2

    def test_invalid_k(self):
        with pytest.raises(DetectionError):
            FixedKRule(0)
