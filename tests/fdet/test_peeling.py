"""Unit tests for the greedy peeling engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DetectionError
from repro.fdet import AverageDegreeDensity, LogWeightedDensity, greedy_peel
from repro.graph import BipartiteGraph


def peel(graph, metric=None):
    metric = metric or LogWeightedDensity()
    return greedy_peel(graph, metric.edge_weights(graph))


class TestGreedyPeel:
    def test_clique_returned_whole(self, clique_graph):
        result = peel(clique_graph)
        assert result.n_users == 5
        assert result.n_merchants == 4
        assert result.n_removed == 0

    def test_pendant_trimmed_from_clique(self):
        edges = [(u, v) for u in range(4) for v in range(4)] + [(4, 0)]
        graph = BipartiteGraph.from_edges(edges, n_users=5, n_merchants=4)
        result = peel(graph, AverageDegreeDensity())
        assert result.n_users == 4  # pendant user 4 peeled away
        assert not result.user_mask[4]

    def test_best_density_at_least_whole_graph_density(self, planted_graph):
        graph, _ = planted_graph
        metric = LogWeightedDensity()
        result = greedy_peel(graph, metric.edge_weights(graph))
        assert result.density >= metric.density(graph) - 1e-12

    def test_densities_series_starts_at_whole_graph(self, clique_graph):
        metric = AverageDegreeDensity()
        result = greedy_peel(clique_graph, metric.edge_weights(clique_graph))
        assert result.densities[0] == pytest.approx(metric.density(clique_graph))

    def test_density_matches_recomputation_on_best_prefix(self, planted_graph):
        """The reported best density equals the metric evaluated on the prefix."""
        graph, _ = planted_graph
        metric = LogWeightedDensity()
        edge_weights = metric.edge_weights(graph)
        result = greedy_peel(graph, edge_weights)
        inside = result.edge_indices(graph)
        total = float(edge_weights[inside].sum())
        assert result.density == pytest.approx(total / result.n_nodes)

    def test_charikar_half_approximation_on_average_degree(self, planted_graph):
        """Greedy peeling 2-approximates the densest subgraph (avg-degree)."""
        graph, _ = planted_graph
        metric = AverageDegreeDensity()
        result = greedy_peel(graph, metric.edge_weights(graph))
        # whole graph density lower-bounds the optimum; greedy >= opt/2 >= whole/2
        assert result.density >= metric.density(graph) / 2.0

    def test_empty_graph(self):
        graph = BipartiteGraph.empty(0, 0)
        result = greedy_peel(graph, np.empty(0))
        assert result.density == 0.0
        assert result.n_nodes == 0

    def test_edgeless_graph_with_nodes(self):
        graph = BipartiteGraph.empty(3, 2)
        result = greedy_peel(graph, np.empty(0))
        assert result.density == 0.0
        assert result.densities[0] == 0.0

    def test_single_edge(self):
        graph = BipartiteGraph.from_edges([(0, 0)])
        result = peel(graph)
        assert result.n_users == 1
        assert result.n_merchants == 1
        assert result.density > 0

    def test_mismatched_weights_rejected(self, tiny_graph):
        with pytest.raises(DetectionError):
            greedy_peel(tiny_graph, np.ones(99))

    def test_node_priors_steer_the_prefix(self):
        """Heavy user priors pull the densest prefix onto those users."""
        # two stars: merchant 0 with 3 users, merchant 1 with 2 users
        edges = [(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)]
        graph = BipartiteGraph.from_edges(edges, n_users=5, n_merchants=2)
        metric = AverageDegreeDensity()
        plain = greedy_peel(graph, metric.edge_weights(graph))
        assert plain.merchant_mask[0]  # whole graph (incl. the big star) kept

        priors = np.array([0.0, 0.0, 0.0, 10.0, 10.0])
        boosted = greedy_peel(graph, metric.edge_weights(graph), user_weights=priors)
        assert boosted.user_mask[3] and boosted.user_mask[4]
        assert not boosted.user_mask[0]
        assert boosted.density > plain.density

    def test_deterministic(self, planted_graph):
        graph, _ = planted_graph
        metric = LogWeightedDensity()
        a = greedy_peel(graph, metric.edge_weights(graph))
        b = greedy_peel(graph, metric.edge_weights(graph))
        assert np.array_equal(a.user_mask, b.user_mask)
        assert a.density == b.density

    def test_planted_block_recovered(self, planted_graph):
        graph, injection = planted_graph
        result = peel(graph)
        detected = set(graph.user_labels[result.user_mask].tolist())
        truth = set(injection.fraud_user_labels.tolist())
        recovered = len(detected & truth) / len(truth)
        assert recovered >= 0.8

    def test_edge_indices_within_prefix(self, planted_graph):
        graph, _ = planted_graph
        result = peel(graph)
        inside = result.edge_indices(graph)
        assert np.all(result.user_mask[graph.edge_users[inside]])
        assert np.all(result.merchant_mask[graph.edge_merchants[inside]])
