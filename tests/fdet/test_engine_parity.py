"""Engine parity: the fast backend must match the reference bit for bit.

Sweeps random Chung-Lu graphs, injected-block graphs, tie-heavy complete
blocks, multigraphs, weighted graphs and prior-carrying peels, asserting
the ``fast`` engine (native kernel *and* pure-Python fallback) returns
masks, densities, ``n_removed`` and the full densities series identical to
``engine="reference"`` — and that the incremental ``Fdet.detect`` matches
the seed's rebuild-per-block formulation under both weight policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import FraudBlockSpec, chung_lu_bipartite, inject_fraud_blocks, uniform_bipartite
from repro.fdet import (
    AverageDegreeDensity,
    Fdet,
    FdetConfig,
    LogWeightedDensity,
    PeelEngine,
    WeightPolicy,
    greedy_peel,
)
from repro.fdet import peeling_fast
from repro.graph import BipartiteGraph


@pytest.fixture(params=["native", "python"])
def fast_core(request, monkeypatch):
    """Run each parity case against both fast cores."""
    if request.param == "python":
        monkeypatch.setattr(peeling_fast, "_force_python", True)
    else:
        from repro.fdet._native import native_available

        if not native_available():
            pytest.skip("native kernel unavailable (no C compiler)")
    return request.param


def assert_peel_parity(graph, edge_weights, user_weights=None, merchant_weights=None):
    reference = greedy_peel(
        graph, edge_weights, user_weights, merchant_weights, engine=PeelEngine.REFERENCE
    )
    fast = greedy_peel(
        graph, edge_weights, user_weights, merchant_weights, engine=PeelEngine.FAST
    )
    assert np.array_equal(reference.user_mask, fast.user_mask)
    assert np.array_equal(reference.merchant_mask, fast.merchant_mask)
    assert reference.density == fast.density  # bitwise, no tolerance
    assert reference.n_removed == fast.n_removed
    assert np.array_equal(reference.densities, fast.densities)
    return reference


class TestPeelParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "n_users,n_merchants,n_edges",
        [(30, 12, 80), (200, 80, 600), (500, 200, 2_000)],
    )
    def test_chung_lu_sweep(self, fast_core, seed, n_users, n_merchants, n_edges):
        graph = chung_lu_bipartite(n_users, n_merchants, n_edges, rng=seed)
        assert_peel_parity(graph, LogWeightedDensity().edge_weights(graph))

    @pytest.mark.parametrize("seed", [0, 7])
    def test_injected_blocks(self, fast_core, seed):
        rng = np.random.default_rng(seed)
        background = uniform_bipartite(300, 150, 700, rng=rng)
        injection = inject_fraud_blocks(
            background,
            [
                FraudBlockSpec(n_users=20, n_merchants=8, density=0.9),
                FraudBlockSpec(n_users=10, n_merchants=5, density=0.7),
            ],
            rng,
        )
        graph = injection.graph
        assert_peel_parity(graph, LogWeightedDensity().edge_weights(graph))

    def test_tie_heavy_complete_block(self, fast_core):
        # every node in a complete block shares the same priority: pure
        # tie-breaking territory (smallest node id must pop first)
        graph = BipartiteGraph.from_edges(
            [(u, v) for u in range(12) for v in range(9)], n_users=12, n_merchants=9
        )
        result = assert_peel_parity(graph, AverageDegreeDensity().edge_weights(graph))
        assert result.n_removed == 0  # the whole clique is the densest prefix

    def test_two_equal_cliques_tie_break(self, fast_core):
        # two identical 4x3 cliques — ties span disconnected components
        edges = [(u, v) for u in range(4) for v in range(3)]
        edges += [(4 + u, 3 + v) for u in range(4) for v in range(3)]
        graph = BipartiteGraph.from_edges(edges, n_users=8, n_merchants=6)
        assert_peel_parity(graph, AverageDegreeDensity().edge_weights(graph))

    def test_multigraph_parallel_edges(self, fast_core):
        edges = [(0, 0), (0, 0), (0, 1), (1, 0), (1, 1), (1, 1), (2, 1), (2, 1)]
        graph = BipartiteGraph.from_edges(edges, n_users=3, n_merchants=2)
        assert_peel_parity(graph, LogWeightedDensity().edge_weights(graph))

    def test_weighted_graph(self, fast_core):
        rng = np.random.default_rng(5)
        base = chung_lu_bipartite(100, 40, 300, rng=3)
        graph = base.with_weights(rng.uniform(0.1, 4.0, size=base.n_edges))
        assert_peel_parity(graph, LogWeightedDensity().edge_weights(graph))

    def test_zero_weight_edges(self, fast_core):
        graph = chung_lu_bipartite(60, 25, 150, rng=9)
        weights = LogWeightedDensity().edge_weights(graph)
        weights[::3] = 0.0  # zero-weight decrements exercise equal-entry ties
        assert_peel_parity(graph, weights)

    def test_node_priors(self, fast_core):
        graph = chung_lu_bipartite(80, 30, 200, rng=11)
        rng = np.random.default_rng(13)
        assert_peel_parity(
            graph,
            LogWeightedDensity().edge_weights(graph),
            user_weights=rng.uniform(0.0, 2.0, size=graph.n_users),
            merchant_weights=rng.uniform(0.0, 2.0, size=graph.n_merchants),
        )

    def test_edgeless_and_tiny_graphs(self, fast_core):
        for graph in (
            BipartiteGraph.empty(3, 2),
            BipartiteGraph.empty(0, 0),
            BipartiteGraph.from_edges([(0, 0)]),
        ):
            assert_peel_parity(graph, np.ones(graph.n_edges, dtype=np.float64))


class TestSubsetViews:
    def test_all_alive_mask_returns_trusted_views_without_copying(self):
        from repro.fdet import PeelContext

        graph = chung_lu_bipartite(80, 30, 250, rng=1)
        context = PeelContext(graph)
        indptr, flat_other, flat_edge = context.subset(np.ones(graph.n_edges, dtype=bool))
        # the context's own arrays come back — no gather, no copy
        assert indptr is context.indptr
        assert flat_other is context.flat_other
        assert flat_edge is context.flat_edge

    def test_masked_subset_still_copies_and_peels_identically(self, fast_core):
        from repro.fdet import PeelContext, fast_peel

        graph = chung_lu_bipartite(80, 30, 250, rng=1)
        context = PeelContext(graph)
        alive = np.ones(graph.n_edges, dtype=bool)
        alive[::5] = False
        indptr, flat_other, flat_edge = context.subset(alive)
        assert indptr is not context.indptr
        assert flat_other is not context.flat_other
        # the masked peel matches peeling the compacted residual graph
        residual = graph.remove_edges(np.nonzero(~alive)[0])
        weights = LogWeightedDensity().edge_weights(residual)
        priors = np.zeros(graph.n_users + graph.n_merchants)
        masked = fast_peel(residual, weights, priors, context, alive)
        fresh = fast_peel(residual, weights, priors)
        assert np.array_equal(masked.user_mask, fresh.user_mask)
        assert np.array_equal(masked.merchant_mask, fresh.merchant_mask)
        assert masked.density == fresh.density


def _seed_detect(graph, config):
    """The pre-refactor FDET loop: rebuild the residual graph per block."""
    frozen = None
    if config.weight_policy == WeightPolicy.FROZEN:
        frozen = graph.merchant_degrees()
    blocks = []
    current = graph
    first_density = None
    for _ in range(config.max_blocks):
        if current.is_empty:
            break
        edge_weights = config.metric.edge_weights(current, frozen)
        peel = greedy_peel(
            current,
            edge_weights,
            user_weights=config.metric.user_weights(current),
            merchant_weights=config.metric.merchant_weights(current),
            engine=PeelEngine.REFERENCE,
        )
        block_edges = peel.edge_indices(current)
        if block_edges.size < config.min_block_edges:
            break
        blocks.append(
            (
                np.sort(current.user_labels[peel.user_mask]),
                np.sort(current.merchant_labels[peel.merchant_mask]),
                peel.density,
                int(block_edges.size),
            )
        )
        if first_density is None:
            first_density = peel.density
        elif (
            config.min_density_ratio > 0.0
            and peel.density < config.min_density_ratio * first_density
        ):
            break
        current = current.remove_edges(block_edges)
    return blocks


class TestIncrementalDetectParity:
    @pytest.mark.parametrize("policy", WeightPolicy.ALL)
    @pytest.mark.parametrize("engine", PeelEngine.ALL)
    def test_matches_seed_behaviour(self, fast_core, policy, engine):
        graph = chung_lu_bipartite(400, 160, 1_500, rng=2)
        config = FdetConfig(max_blocks=10, weight_policy=policy, engine=engine)
        expected = _seed_detect(graph, config)
        result = Fdet(config).detect(graph)
        assert len(result.all_blocks) == len(expected)
        for block, (user_labels, merchant_labels, density, n_edges) in zip(
            result.all_blocks, expected
        ):
            assert np.array_equal(block.user_labels, user_labels)
            assert np.array_equal(block.merchant_labels, merchant_labels)
            assert block.density == density
            assert block.n_edges == n_edges

    @pytest.mark.parametrize("policy", WeightPolicy.ALL)
    def test_weighted_graph_detect(self, fast_core, policy):
        base = chung_lu_bipartite(150, 60, 500, rng=4)
        graph = base.with_weights(np.random.default_rng(6).uniform(0.2, 3.0, base.n_edges))
        config = FdetConfig(max_blocks=6, weight_policy=policy)
        expected = _seed_detect(graph, config)
        result = Fdet(config).detect(graph)
        assert [b.density for b in result.all_blocks] == [row[2] for row in expected]

    def test_min_density_ratio_early_stop(self, fast_core):
        graph = chung_lu_bipartite(200, 80, 700, rng=8)
        config = FdetConfig(max_blocks=12, min_density_ratio=0.5)
        expected = _seed_detect(graph, config)
        result = Fdet(config).detect(graph)
        assert len(result.all_blocks) == len(expected)
