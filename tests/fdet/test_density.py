"""Unit tests for density metrics (paper Definition 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import DetectionError
from repro.fdet import AverageDegreeDensity, LogWeightedDensity, PAPER_DENSITY
from repro.graph import BipartiteGraph


class TestLogWeightedDensity:
    def test_edge_weight_formula(self, tiny_graph):
        metric = LogWeightedDensity(c=5.0)
        weights = metric.edge_weights(tiny_graph)
        # every merchant has degree 2 -> weight 1/log(7)
        assert np.allclose(weights, 1.0 / math.log(7.0))

    def test_high_degree_merchants_penalised(self):
        metric = LogWeightedDensity()
        low = metric.merchant_degree_weights(np.array([1]))
        high = metric.merchant_degree_weights(np.array([1000]))
        assert low[0] > high[0]

    def test_weights_strictly_positive_even_for_degree_zero(self):
        metric = LogWeightedDensity(c=5.0)
        assert metric.merchant_degree_weights(np.array([0]))[0] > 0

    def test_c_must_exceed_one(self):
        with pytest.raises(DetectionError):
            LogWeightedDensity(c=1.0)
        with pytest.raises(DetectionError):
            LogWeightedDensity(c=0.5)

    def test_density_of_clique(self, clique_graph):
        metric = LogWeightedDensity(c=5.0)
        # 20 edges, every merchant degree 5 -> weight 1/log(10); 9 nodes
        expected = 20.0 * (1.0 / math.log(10.0)) / 9.0
        assert metric.density(clique_graph) == pytest.approx(expected)

    def test_density_of_empty_graph(self):
        assert LogWeightedDensity().density(BipartiteGraph.empty(0, 0)) == 0.0

    def test_density_counts_isolated_nodes_in_denominator(self):
        one_edge = BipartiteGraph.from_edges([(0, 0)], n_users=1, n_merchants=1)
        padded = BipartiteGraph.from_edges([(0, 0)], n_users=10, n_merchants=1)
        metric = LogWeightedDensity()
        assert metric.density(padded) < metric.density(one_edge)

    def test_external_degree_source(self, tiny_graph):
        metric = LogWeightedDensity(c=5.0)
        frozen = np.array([100, 100, 100])
        weights = metric.edge_weights(tiny_graph, merchant_degrees=frozen)
        assert np.allclose(weights, 1.0 / math.log(105.0))

    def test_external_degree_source_wrong_length(self, tiny_graph):
        with pytest.raises(DetectionError):
            LogWeightedDensity().edge_weights(tiny_graph, merchant_degrees=np.array([1]))

    def test_graph_edge_weights_multiply(self):
        graph = BipartiteGraph(1, 1, [0], [0], edge_weights=[2.0])
        metric = LogWeightedDensity(c=5.0)
        assert metric.edge_weights(graph)[0] == pytest.approx(2.0 / math.log(6.0))

    def test_paper_density_factory(self):
        metric = PAPER_DENSITY()
        assert isinstance(metric, LogWeightedDensity)
        assert metric.c == 5.0


class TestAverageDegreeDensity:
    def test_all_edges_weigh_one(self, tiny_graph):
        metric = AverageDegreeDensity()
        assert np.allclose(metric.edge_weights(tiny_graph), 1.0)

    def test_density_is_edges_over_nodes(self, clique_graph):
        metric = AverageDegreeDensity()
        assert metric.density(clique_graph) == pytest.approx(20.0 / 9.0)

    def test_node_weights_default_none(self, tiny_graph):
        metric = AverageDegreeDensity()
        assert metric.user_weights(tiny_graph) is None
        assert metric.merchant_weights(tiny_graph) is None
