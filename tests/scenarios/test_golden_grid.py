"""Golden end-to-end regression fixture for the scenario grid.

One small scenario grid is run end to end (generation → ensemble fits →
incremental replay → metrics) and compared *exactly* against the committed
``golden/scenario_grid.json``. Any change to detector behaviour — sampling,
peeling, voting, metric arithmetic, scenario generation — shows up here as
a diff, in tier-1, before it lands.

To intentionally re-baseline after a behaviour change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/scenarios/test_golden_grid.py

then review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.scenarios import ScenarioGridConfig, run_grid

GOLDEN_PATH = Path(__file__).parent / "golden" / "scenario_grid.json"

#: the pinned grid — small, serial, fully deterministic. ``degree`` is a
#: registry-only backend (no hand-written harness glue ever existed for
#: it); its cells pin the score-curve evaluation path end to end.
GOLDEN_CONFIG = ScenarioGridConfig(
    scenarios=("naive_block", "camouflage", "staged"),
    intensities=(1.0,),
    detectors=("ensemfdet", "incremental", "degree"),
    scale=0.15,
    seed=7,
    n_samples=8,
    sample_ratio=0.4,
    stripe=32,
    max_blocks=8,
    executor="serial",
    precision_k=20,
)

#: timing is the one legitimately machine-dependent column
_VOLATILE = ("wall_seconds",)


def _golden_rows() -> list[dict]:
    rows = [dict(row) for row in run_grid(GOLDEN_CONFIG).rows]
    for row in rows:
        for key in _VOLATILE:
            row.pop(key, None)
    return rows


def test_scenario_grid_matches_golden_fixture():
    rows = _golden_rows()
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
    expected = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert rows == expected, (
        "scenario grid drifted from the golden fixture; if the behaviour "
        "change is intentional, re-baseline with REGEN_GOLDEN=1 and review "
        "the JSON diff"
    )
