"""Every scenario must flow through both detection paths, identically.

The acceptance contract of the scenario subsystem: each registered attack
shape is runnable through the cold :meth:`EnsemFDet.fit` *and* through the
streaming :meth:`IncrementalEnsemFDet.update` replay (fit on the honest
background, one update per attack batch), and with a shared
:class:`StableEdgeSampler` + seed the two must land on bit-identical vote
tables and detections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet
from repro.fdet import FdetConfig
from repro.sampling import StableEdgeSampler
from repro.scenarios import BatchKind, SCENARIO_NAMES, accumulate_batches, make_scenario


def _config(n_samples: int = 8) -> EnsemFDetConfig:
    return EnsemFDetConfig(
        sampler=StableEdgeSampler(0.4, stripe=32),
        n_samples=n_samples,
        fdet=FdetConfig(max_blocks=8),
        executor="serial",
        seed=11,
    )


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_cold_fit_equals_staged_replay(name):
    instance = make_scenario(name).generate(intensity=1.0, scale=0.12, seed=11)

    cold = EnsemFDet(_config()).fit(instance.dataset.graph)

    warm = IncrementalEnsemFDet(_config())
    warm.fit(accumulate_batches(instance.batches[:1]))
    for batch, kind in zip(instance.attack_batches, instance.batch_kinds[1:]):
        if kind == BatchKind.CLEANUP:
            # append-only replay: retractions are inexpressible, skipped —
            # which is exactly why the cold fit uses the kinds-aware graph
            continue
        report = warm.update(batch.users, batch.merchants, batch.weights)
        assert report.n_new_edges == batch.n_edges

    assert warm.graph == instance.dataset.graph
    assert dict(warm.vote_table.user_votes) == dict(cold.vote_table.user_votes)
    assert dict(warm.vote_table.merchant_votes) == dict(cold.vote_table.merchant_votes)
    for threshold in (1, 3, 5, 8):
        assert np.array_equal(
            warm.detect(threshold).user_labels, cold.detect(threshold).user_labels
        )


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_detection_speaks_scenario_label_space(name):
    """Detected users are labels of the scenario graph, so the blacklist
    (global labels) evaluates them directly."""
    instance = make_scenario(name).generate(intensity=1.0, scale=0.12, seed=4)
    result = EnsemFDet(_config()).fit(instance.dataset.graph)
    detection = result.detect(1)
    graph_users = set(instance.dataset.graph.user_labels.tolist())
    assert set(detection.user_labels.tolist()) <= graph_users
