"""Property-based tests for every registered attack-scenario generator.

Four families of invariants, each checked across random seeds and
intensities for *all* registry entries:

* **label consistency** — the blacklist is exactly the planted fraud
  users, every fraud user actually attacks, and ground truth lives inside
  the generated graph;
* **determinism** — the same ``(intensity, scale, seed)`` triple
  reproduces the instance batch-for-batch, bitwise;
* **replay-stream equivalence** — accumulating the ordered batches
  reproduces the dataset graph bitwise (the property the streaming path
  relies on);
* **shape invariants** — the camouflage-edge accounting and the staged
  wave schedule match the generator's declared parameters exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    BatchKind,
    SCENARIO_NAMES,
    accumulate_batches,
    make_scenario,
)

#: small world keeps each generated example ~milliseconds
SCALE = 0.08

seeds = st.integers(min_value=0, max_value=2**16)
intensities = st.sampled_from([0.5, 1.0, 1.7])
names = st.sampled_from(SCENARIO_NAMES)


@given(name=names, seed=seeds, intensity=intensities)
@settings(max_examples=60, deadline=None)
def test_label_consistency(name, seed, intensity):
    """Exactly the injected users are flagged — no more, no less."""
    result = make_scenario(name).generate(intensity=intensity, scale=SCALE, seed=seed)
    fraud = set(result.fraud_users.tolist())
    assert fraud, "every scenario must plant at least one fraud user"
    assert set(result.dataset.blacklist.labels) == fraud
    assert set(result.dataset.clean_fraud_labels.tolist()) == fraud
    # ground truth exists in the graph
    graph_users = set(result.dataset.graph.user_labels.tolist())
    assert fraud <= graph_users
    # every fraud user makes at least one attack purchase; mid-stream
    # honest-noise (BACKGROUND) batches are not attacks and may involve
    # anyone, so only ATTACK/WAVE/CLEANUP batches count
    attackers = set()
    for batch, kind in zip(result.attack_batches, result.batch_kinds[1:]):
        if kind != BatchKind.BACKGROUND:
            attackers.update(batch.users.tolist())
    assert fraud == attackers


@given(name=names, seed=seeds, intensity=intensities)
@settings(max_examples=40, deadline=None)
def test_deterministic_under_fixed_seed(name, seed, intensity):
    first = make_scenario(name).generate(intensity=intensity, scale=SCALE, seed=seed)
    second = make_scenario(name).generate(intensity=intensity, scale=SCALE, seed=seed)
    assert first.dataset.graph == second.dataset.graph
    assert first.batch_kinds == second.batch_kinds
    assert len(first.batches) == len(second.batches)
    for a, b in zip(first.batches, second.batches):
        assert np.array_equal(a.users, b.users)
        assert np.array_equal(a.merchants, b.merchants)
        assert a.weights is None and b.weights is None
    assert np.array_equal(first.fraud_users, second.fraud_users)
    assert first.dataset.params == second.dataset.params


@given(name=names, seed=seeds, intensity=intensities)
@settings(max_examples=40, deadline=None)
def test_replay_stream_reproduces_graph_bitwise(name, seed, intensity):
    """Accumulating the ordered batches rebuilds the dataset graph exactly."""
    result = make_scenario(name).generate(intensity=intensity, scale=SCALE, seed=seed)
    replayed = accumulate_batches(result.batches, result.batch_kinds)
    graph = result.dataset.graph
    assert replayed == graph  # structural equality: sizes, edges, weights, labels
    assert np.array_equal(replayed.edge_users, graph.edge_users)
    assert np.array_equal(replayed.edge_merchants, graph.edge_merchants)
    assert np.array_equal(replayed.user_labels, graph.user_labels)
    assert np.array_equal(replayed.merchant_labels, graph.merchant_labels)


@given(name=names, seed=seeds, intensity=intensities)
@settings(max_examples=40, deadline=None)
def test_stream_shape(name, seed, intensity):
    """Batch 0 is the background; attack batches are non-empty and typed."""
    result = make_scenario(name).generate(intensity=intensity, scale=SCALE, seed=seed)
    assert result.batch_kinds[0] == BatchKind.BACKGROUND
    assert len(result.batches) == len(result.batch_kinds) >= 2
    assert result.batches[0].n_edges > 0
    for batch, kind in zip(result.attack_batches, result.batch_kinds[1:]):
        assert kind in (
            BatchKind.ATTACK,
            BatchKind.WAVE,
            BatchKind.BACKGROUND,
            BatchKind.CLEANUP,
        )
        assert batch.n_edges > 0
    assert result.dataset.params["n_batches"] == len(result.batches)


@given(
    seed=seeds,
    intensity=intensities,
    ratio=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
)
@settings(max_examples=40, deadline=None)
def test_camouflage_ratio_invariant(seed, intensity, ratio):
    """Camouflage-edge accounting is exact: round(ratio × block edges),
    aimed only at background merchants, dealt over all fraud users."""
    scenario = make_scenario("camouflage", camouflage_ratio=ratio)
    result = scenario.generate(intensity=intensity, scale=SCALE, seed=seed)
    params = result.dataset.params
    n_background_merchants = params["n_background_merchants"]
    (attack,) = result.attack_batches
    camouflage_mask = attack.merchants < n_background_merchants
    assert int(camouflage_mask.sum()) == params["n_camouflage_edges"]
    assert params["n_camouflage_edges"] == int(round(ratio * params["n_block_edges"]))
    assert params["n_block_edges"] + params["n_camouflage_edges"] == attack.n_edges
    # block edges target only brand-new merchants
    assert (attack.merchants[~camouflage_mask] >= n_background_merchants).all()
    if ratio >= 1.0:
        # enough camouflage to cover everyone: every fraud user gets some
        camo_users = set(attack.users[camouflage_mask].tolist())
        assert camo_users == set(result.fraud_users.tolist())


@given(seed=seeds, intensity=intensities, n_waves=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_burst_schedule_invariant(seed, intensity, n_waves):
    """Staged campaigns emit exactly the declared waves, in cohort order,
    with disjoint user cohorts covering the fraud set."""
    scenario = make_scenario("staged", n_waves=n_waves)
    result = scenario.generate(intensity=intensity, scale=SCALE, seed=seed)
    realised = result.dataset.params["n_waves"]
    assert realised == min(n_waves, int(result.fraud_users.size))
    assert result.n_waves == realised
    assert result.batch_kinds == (BatchKind.BACKGROUND,) + (BatchKind.WAVE,) * realised

    cohorts = [set(batch.users.tolist()) for batch in result.attack_batches]
    assert all(cohorts)
    for earlier, later in zip(cohorts, cohorts[1:]):
        assert not earlier & later, "wave cohorts must be disjoint"
        assert max(earlier) < min(later), "waves arrive in cohort order"
    union = set().union(*cohorts)
    assert union == set(result.fraud_users.tolist())


@given(seed=seeds, intensity=intensities)
@settings(max_examples=30, deadline=None)
def test_hijacked_users_have_honest_history(seed, intensity):
    result = make_scenario("hijacked").generate(intensity=intensity, scale=SCALE, seed=seed)
    background_users = set(result.background.users.tolist())
    assert set(result.fraud_users.tolist()) <= background_users


@given(seed=seeds, intensity=intensities)
@settings(max_examples=30, deadline=None)
def test_spray_targets_only_honest_merchants(seed, intensity):
    result = make_scenario("spray").generate(intensity=intensity, scale=SCALE, seed=seed)
    n_background_merchants = result.dataset.params["n_background_merchants"]
    (attack,) = result.attack_batches
    assert (attack.merchants < n_background_merchants).all()
    per_user = result.dataset.params["purchases_per_user"]
    assert attack.n_edges == per_user * result.fraud_users.size


@given(seed=seeds, intensity=intensities)
@settings(max_examples=30, deadline=None)
def test_skewed_targets_hit_top_hubs(seed, intensity):
    result = make_scenario("skewed_targets").generate(
        intensity=intensity, scale=SCALE, seed=seed
    )
    n_background_merchants = result.dataset.params["n_background_merchants"]
    (attack,) = result.attack_batches
    targets = np.unique(attack.merchants)
    assert (targets < n_background_merchants).all(), "no new merchants appear"
    declared = [int(m) for m in result.dataset.params["target_merchants"].split(",")]
    assert set(targets.tolist()) <= set(declared)


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_intensity_scales_campaign_size(name):
    """Higher intensity ⇒ at least as many fraud users (same world size)."""
    weak = make_scenario(name).generate(intensity=0.5, scale=0.15, seed=0)
    strong = make_scenario(name).generate(intensity=3.0, scale=0.15, seed=0)
    assert strong.fraud_users.size >= weak.fraud_users.size
    assert strong.fraud_users.size > 3
