"""Tests for the scenario evaluation harness (grid sweep + artifacts)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    DETECTOR_NAMES,
    ScenarioGridConfig,
    evaluate_cell,
    make_scenario,
    run_grid,
)

TINY = dict(scale=0.12, n_samples=8, sample_ratio=0.4, stripe=32, max_blocks=8)


@pytest.fixture(scope="module")
def grid_result():
    config = ScenarioGridConfig(
        scenarios=("naive_block", "staged"),
        intensities=(1.0,),
        detectors=("ensemfdet", "incremental"),
        **TINY,
    )
    return run_grid(config)


class TestConfigValidation:
    def test_unknown_scenario(self):
        with pytest.raises(ScenarioError, match="unknown scenarios"):
            ScenarioGridConfig(scenarios=("naive_block", "bogus"))

    def test_unknown_detector(self):
        with pytest.raises(ScenarioError, match="unknown detectors"):
            ScenarioGridConfig(detectors=("ensemfdet", "oracle"))

    def test_bad_intensity(self):
        with pytest.raises(ScenarioError, match="intensities"):
            ScenarioGridConfig(intensities=(1.0, -0.5))

    def test_empty_axes(self):
        with pytest.raises(ScenarioError):
            ScenarioGridConfig(scenarios=())
        with pytest.raises(ScenarioError):
            ScenarioGridConfig(intensities=())
        with pytest.raises(ScenarioError):
            ScenarioGridConfig(detectors=())

    def test_bad_precision_k(self):
        with pytest.raises(ScenarioError, match="precision_k"):
            ScenarioGridConfig(precision_k=0)

    def test_stray_scenario_params(self):
        with pytest.raises(ScenarioError, match="scenario_params"):
            ScenarioGridConfig(
                scenarios=("naive_block",), scenario_params={"camouflage": {}}
            )

    def test_detector_names_are_registered(self):
        config = ScenarioGridConfig(detectors=DETECTOR_NAMES)
        assert config.detectors == DETECTOR_NAMES


class TestGrid:
    def test_one_row_per_cell(self, grid_result):
        assert len(grid_result.rows) == 2 * 1 * 2
        keys = {(row["scenario"], row["intensity"], row["detector"]) for row in grid_result.rows}
        assert len(keys) == len(grid_result.rows)

    def test_rows_carry_metrics(self, grid_result):
        for row in grid_result.rows:
            for key in ("best_f1", "auc_pr", "precision_at_k", "precision", "recall"):
                assert 0.0 <= row[key] <= 1.0
            assert row["best_threshold"] >= 0
            assert row["n_fraud"] > 0
            assert row["wall_seconds"] >= 0.0

    def test_cold_and_incremental_agree_bitwise(self, grid_result):
        """Shared sampler+seed ⇒ the streaming path must reproduce the cold
        fit's vote table, hence identical metrics in every cell."""
        cells: dict = {}
        for row in grid_result.rows:
            cells.setdefault((row["scenario"], row["intensity"]), {})[row["detector"]] = row
        for pair in cells.values():
            cold, warm = pair["ensemfdet"], pair["incremental"]
            for key in ("best_f1", "best_threshold", "auc_pr", "precision_at_k", "n_detected"):
                assert cold[key] == warm[key]

    def test_incremental_rows_report_refresh_work(self, grid_result):
        staged = [
            row
            for row in grid_result.rows
            if row["scenario"] == "staged" and row["detector"] == "incremental"
        ]
        assert staged
        for row in staged:
            assert row["n_updates"] == row["n_batches"] - 1 >= 1
            assert row["n_refreshed"] >= 1

    def test_meta_records_grid_axes(self, grid_result):
        meta = grid_result.meta
        assert meta["scenarios"] == ["naive_block", "staged"]
        assert meta["detectors"] == ["ensemfdet", "incremental"]
        assert meta["n_samples"] == TINY["n_samples"]


class TestFraudarBackend:
    def test_fraudar_runs(self):
        config = ScenarioGridConfig(
            scenarios=("naive_block",), intensities=(1.0,), detectors=("fraudar",), **TINY
        )
        rows = run_grid(config).rows
        assert len(rows) == 1
        assert rows[0]["detector"] == "fraudar"
        assert 0.0 <= rows[0]["best_f1"] <= 1.0
        assert rows[0]["n_updates"] == 0


class TestRegistryBackends:
    def test_every_registered_detector_runs(self):
        """Any registry spec — including the four that never had
        hand-written harness glue — produces a well-formed grid cell."""
        config = ScenarioGridConfig(
            scenarios=("naive_block",),
            intensities=(1.0,),
            detectors=DETECTOR_NAMES,
            **TINY,
        )
        rows = run_grid(config).rows
        assert [row["detector"] for row in rows] == list(DETECTOR_NAMES)
        for row in rows:
            assert 0.0 <= row["best_f1"] <= 1.0
            assert 0.0 <= row["auc_pr"] <= 1.0
            assert 0.0 <= row["precision_at_k"] <= 1.0

    def test_parameterised_specs_reach_detectors(self):
        config = ScenarioGridConfig(
            scenarios=("naive_block",),
            intensities=(1.0,),
            detectors=("fraudar:n_blocks=2", "degree:weighted=1"),
            **TINY,
        )
        rows = run_grid(config).rows
        assert [row["detector"] for row in rows] == [
            "fraudar:n_blocks=2", "degree:weighted=1"
        ]
        # a 2-block Fraudar has at most 2 operating points
        assert rows[0]["best_threshold"] in (1, 2)

    def test_specs_normalise_to_canonical_form(self):
        config = ScenarioGridConfig(
            detectors=("FRAUDAR:N_BLOCKS=2", "Degree"),
            scenarios=("naive_block",),
            intensities=(1.0,),
            **TINY,
        )
        assert config.detectors == ("fraudar:n_blocks=2", "degree")

    def test_duplicate_specs_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            ScenarioGridConfig(detectors=("degree", "DEGREE"))

    def test_bad_spec_parameter_rejected(self):
        with pytest.raises(ScenarioError, match="bad detector spec"):
            ScenarioGridConfig(detectors=("fraudar:bogus=1",))

    def test_differently_configured_ensembles_may_diverge(self):
        """Parity is only enforced between specs whose resolved configs
        match — an ensemble with an overridden sampler (or N) next to the
        incremental detector must not abort the grid."""
        config = ScenarioGridConfig(
            scenarios=("naive_block",),
            intensities=(1.0,),
            detectors=("ensemfdet:sampler=res", "incremental", "ensemfdet:n=4"),
            **TINY,
        )
        rows = run_grid(config).rows  # must not raise ScenarioError
        assert len(rows) == 3


class TestEvaluateCell:
    def test_unknown_detector(self):
        config = ScenarioGridConfig(scenarios=("naive_block",), intensities=(1.0,), **TINY)
        instance = make_scenario("naive_block").generate(scale=0.1, seed=0)
        with pytest.raises(ScenarioError, match="unknown detector"):
            evaluate_cell(instance, "oracle", config)

    def test_bad_parameter_raises_scenario_error(self):
        # the harness's error contract is ScenarioError even for spec
        # parameter errors, not a leaked DetectionError
        config = ScenarioGridConfig(scenarios=("naive_block",), intensities=(1.0,), **TINY)
        instance = make_scenario("naive_block").generate(scale=0.1, seed=0)
        with pytest.raises(ScenarioError, match="unknown parameter"):
            evaluate_cell(instance, "fraudar:bogus=1", config)


class TestArtifacts:
    def test_grid_writes_json_and_csv(self, tmp_path):
        config = ScenarioGridConfig(
            scenarios=("spray",), intensities=(1.0,), detectors=("ensemfdet",), **TINY
        )
        result = run_grid(config, outdir=tmp_path)
        payload = json.loads((tmp_path / "scenario_grid.json").read_text())
        assert payload["experiment"] == "scenario_grid"
        assert payload["rows"] == result.rows
        assert payload["meta"]["scenarios"] == ["spray"]
        csv_text = (tmp_path / "scenario_grid.csv").read_text()
        assert csv_text.splitlines()[0].startswith("scenario,intensity,detector")

    def test_scenario_params_reach_generator(self):
        config = ScenarioGridConfig(
            scenarios=("camouflage",),
            intensities=(1.0,),
            detectors=("ensemfdet",),
            scenario_params={"camouflage": {"camouflage_ratio": 0.0}},
            **TINY,
        )
        rows = run_grid(config).rows
        assert len(rows) == 1

    def test_mixed_case_names_normalise(self):
        """Scenario spellings are case-insensitive everywhere, including the
        scenario_params stray-check and run_grid's params lookup."""
        config = ScenarioGridConfig(
            scenarios=("Camouflage",),
            intensities=(1.0,),
            detectors=("ensemfdet",),
            scenario_params={"CAMOUFLAGE": {"camouflage_ratio": 0.0}},
            **TINY,
        )
        assert config.scenarios == ("camouflage",)
        assert "camouflage" in config.scenario_params
        rows = run_grid(config).rows
        assert rows[0]["scenario"] == "camouflage"


class TestEnsembleParityGuard:
    def test_divergence_raises(self):
        from repro.scenarios.harness import _check_ensemble_parity

        cold = {"scenario": "naive_block", "intensity": 1.0, "detector": "ensemfdet",
                "best_threshold": 3, "best_f1": 0.5, "precision": 0.5, "recall": 0.5,
                "n_detected": 4, "auc_pr": 0.4, "precision_at_k": 0.2}
        warm = dict(cold, detector="incremental", best_f1=0.25)
        with pytest.raises(ScenarioError, match="diverged from the cold fit"):
            _check_ensemble_parity({"ensemfdet": cold, "incremental": warm})
        # identical cells (or a missing backend) pass silently
        _check_ensemble_parity({"ensemfdet": cold, "incremental": dict(cold)})
        _check_ensemble_parity({"ensemfdet": cold})
