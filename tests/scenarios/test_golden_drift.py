"""Golden regression fixture for the temporal drift grid.

One pinned drift grid runs end to end (temporal scenario generation →
windowed/append-only incremental replay → per-step F1 sweep) and is
compared exactly against the committed ``golden/drift_grid.json``. On top
of the bitwise match, the structural claims the windowed layer exists for
are asserted directly, so the fixture can never be silently re-baselined
into a state that loses them:

* slow-ramp campaigns are detected *late* (latency > 1) — the grooming
  phase really does fly under the radar;
* after the attack-then-cleanup retraction, the windowed replay's final
  F1 decays below its peak while the append-only replay keeps flagging
  the ghost block at peak.

To intentionally re-baseline after a behaviour change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/scenarios/test_golden_drift.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.scenarios import DriftGridConfig, run_drift_grid
from repro.scenarios.drift import cleanup_decay_summary

GOLDEN_PATH = Path(__file__).parent / "golden" / "drift_grid.json"

#: pinned grid: window_batches exceeds every stream's batch count, so the
#: windowed rows differ from append-only rows *only* through cleanup
#: retraction — decay in the fixture is evidence-removal, never expiry
GOLDEN_CONFIG = DriftGridConfig(
    scale=0.25,
    intensity=1.5,
    seed=0,
    n_samples=16,
    sample_ratio=0.3,
    stripe=64,
    window_batches=12,
    f1_target=0.6,
    executor="serial",
)

_VOLATILE = ("wall_seconds",)


def _golden_rows() -> list[dict]:
    result = run_drift_grid(GOLDEN_CONFIG)
    rows = [dict(row) for row in result.rows]
    for row in rows:
        for key in _VOLATILE:
            row.pop(key, None)
    return rows


def test_drift_grid_matches_golden_fixture():
    rows = _golden_rows()
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
    expected = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert rows == expected, (
        "drift grid drifted from the golden fixture; if the behaviour "
        "change is intentional, re-baseline with REGEN_GOLDEN=1 and review "
        "the JSON diff"
    )


def test_slow_ramp_is_detected_late_but_detected():
    rows = {(r["scenario"], r["mode"]): r for r in _golden_rows()}
    for mode in ("append", "window"):
        row = rows[("slow_ramp", mode)]
        assert row["latency"] > 1, "the grooming phase must not be flagged instantly"
        assert row["latency"] <= row["n_steps"], "the ramp must be caught eventually"


def test_cleanup_decays_only_in_windowed_mode():
    result = run_drift_grid(GOLDEN_CONFIG)
    summary = cleanup_decay_summary(result)
    # append-only never un-learns: the ghost block keeps its peak score
    assert summary["append_final"] == summary["append_peak"] > 0.0
    # the windowed replay honours the retraction and the score collapses
    assert summary["window_peak"] == summary["append_peak"]
    assert summary["window_final"] < summary["window_peak"]
