"""Unit tests for the scenario registry and individual generator shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    BatchKind,
    CamouflageScenario,
    SCENARIO_NAMES,
    StagedCampaignScenario,
    available_scenarios,
    make_scenario,
    scenario_descriptions,
)


class TestRegistry:
    def test_at_least_five_scenarios(self):
        assert len(SCENARIO_NAMES) >= 5

    def test_available_matches_canonical(self):
        assert available_scenarios() == list(SCENARIO_NAMES)

    def test_every_scenario_described(self):
        descriptions = scenario_descriptions()
        assert set(descriptions) == set(SCENARIO_NAMES)
        assert all(descriptions.values())

    def test_names_resolve_case_insensitively(self):
        scenario = make_scenario("Camouflage")
        assert isinstance(scenario, CamouflageScenario)

    def test_unknown_name(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            make_scenario("fortress")

    def test_parameters_forwarded(self):
        scenario = make_scenario("staged", n_waves=7, density=0.9)
        assert isinstance(scenario, StagedCampaignScenario)
        assert scenario.n_waves == 7
        assert scenario.density == pytest.approx(0.9)

    def test_unknown_parameters_rejected(self):
        with pytest.raises(ScenarioError, match="bad parameters"):
            make_scenario("naive_block", burliness=3)


class TestGeneratorValidation:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_bad_intensity_and_scale(self, name):
        scenario = make_scenario(name)
        with pytest.raises(ScenarioError):
            scenario.generate(intensity=0.0)
        with pytest.raises(ScenarioError):
            scenario.generate(scale=-1.0)

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("naive_block", {"density": 0.0}),
            ("naive_block", {"block_merchants": 0}),
            ("camouflage", {"camouflage_ratio": -0.5}),
            ("staged", {"n_waves": 0}),
            ("spray", {"purchases_per_user": 0}),
            ("skewed_targets", {"density": 1.5}),
        ],
    )
    def test_bad_shape_parameters(self, name, kwargs):
        with pytest.raises(ScenarioError):
            make_scenario(name, **kwargs)

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("staged", {"n_waves": 2.9}),
            ("naive_block", {"block_merchants": 10.7}),
            ("spray", {"purchases_per_user": 1.9}),
            ("hijacked", {"block_merchants": True}),
        ],
    )
    def test_non_integer_shape_parameters_rejected(self, name, kwargs):
        """No silent int() truncation — a 2.9-wave sweep must not quietly
        run 2 waves (mirrors FraudBlockSpec's strictness)."""
        with pytest.raises(ScenarioError, match="must be an integer"):
            make_scenario(name, **kwargs)


class TestGeneratedShapes:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_dataset_provenance(self, name):
        result = make_scenario(name).generate(intensity=1.0, scale=0.1, seed=5)
        params = result.dataset.params
        assert params["scenario"] == name
        assert params["seed"] == 5
        assert params["n_fraud_users"] == result.fraud_users.size
        assert result.dataset.name.startswith(name)

    def test_naive_block_attacks_only_new_nodes(self):
        result = make_scenario("naive_block").generate(scale=0.1, seed=1)
        params = result.dataset.params
        (attack,) = result.attack_batches
        assert (attack.users >= params["n_background_users"]).all()
        assert (attack.merchants >= params["n_background_merchants"]).all()

    def test_camouflage_intensity_zero_ratio_degenerates_to_naive(self):
        result = make_scenario("camouflage", camouflage_ratio=0.0).generate(scale=0.1, seed=1)
        params = result.dataset.params
        assert params["n_camouflage_edges"] == 0
        (attack,) = result.attack_batches
        assert (attack.merchants >= params["n_background_merchants"]).all()

    def test_staged_single_wave_is_one_batch(self):
        result = make_scenario("staged", n_waves=1).generate(scale=0.1, seed=2)
        assert result.batch_kinds == (BatchKind.BACKGROUND, BatchKind.WAVE)

    def test_skewed_targets_are_highest_degree(self):
        result = make_scenario("skewed_targets", block_merchants=4).generate(
            scale=0.1, seed=3
        )
        background = result.background
        degrees = np.bincount(
            background.merchants, minlength=result.dataset.params["n_background_merchants"]
        )
        declared = [int(m) for m in result.dataset.params["target_merchants"].split(",")]
        floor = min(degrees[m] for m in declared)
        others = [d for m, d in enumerate(degrees) if m not in declared]
        # targets are the top-degree hubs: nothing outside them beats the floor
        assert max(others, default=0) <= floor

    def test_hijacked_caps_at_available_accounts(self):
        # extreme intensity cannot hijack more accounts than exist
        result = make_scenario("hijacked").generate(intensity=100.0, scale=0.05, seed=4)
        background_users = np.unique(result.background.users)
        assert result.fraud_users.size <= background_users.size

    def test_absurd_intensity_fails_fast_not_oom(self):
        """Regression: a runaway intensity must raise a clear ScenarioError
        before the Bernoulli-mask allocation, not MemoryError inside numpy."""
        with pytest.raises(ScenarioError, match="candidate edges"):
            make_scenario("naive_block").generate(intensity=1e7, scale=0.1, seed=0)

    def test_batches_are_int64_and_unweighted(self):
        for name in SCENARIO_NAMES:
            result = make_scenario(name).generate(scale=0.08, seed=6)
            for batch in result.batches:
                assert batch.users.dtype == np.int64
                assert batch.merchants.dtype == np.int64
                assert batch.weights is None
