"""Tests for the logging helpers and the exception hierarchy."""

from __future__ import annotations

import logging

import pytest

from repro import errors
from repro.logging_utils import enable_console_logging, get_logger, log_duration


class TestLogger:
    def test_namespaced_logger(self):
        assert get_logger().name == "repro"
        assert get_logger("fdet").name == "repro.fdet"

    def test_enable_console_logging_idempotent(self):
        logger = get_logger()
        before = len(logger.handlers)
        enable_console_logging()
        enable_console_logging()
        after = len(logger.handlers)
        assert after <= before + 1

    def test_log_duration_emits(self, caplog):
        logger = get_logger("test")
        with caplog.at_level(logging.INFO, logger="repro.test"):
            with log_duration("doing work", logger):
                pass
        assert any("doing work" in record.message for record in caplog.records)

    def test_log_duration_logs_even_on_exception(self, caplog):
        logger = get_logger("test")
        with caplog.at_level(logging.INFO, logger="repro.test"):
            with pytest.raises(RuntimeError):
                with log_duration("failing work", logger):
                    raise RuntimeError("boom")
        assert any("failing work" in record.message for record in caplog.records)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.GraphValidationError,
            errors.EmptyGraphError,
            errors.SamplingError,
            errors.DetectionError,
            errors.AggregationError,
            errors.DatasetError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_validation_error_is_graph_error(self):
        assert issubclass(errors.GraphValidationError, errors.GraphError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SamplingError("bad ratio")
