"""Unit & behavioural tests for the comparison methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DegreeDetector,
    FBoxDetector,
    FraudarDetector,
    SpokenDetector,
)
from repro.errors import DetectionError
from repro.graph import BipartiteGraph


class TestFraudar:
    def test_invalid_params(self):
        with pytest.raises(DetectionError):
            FraudarDetector(n_blocks=0)
        with pytest.raises(DetectionError):
            FraudarDetector(min_block_edges=0)

    def test_detects_planted_block_first(self, planted_graph):
        graph, injection = planted_graph
        result = FraudarDetector(n_blocks=3).detect(graph)
        first_users = set(result.blocks[0].user_labels.tolist())
        truth = set(injection.fraud_user_labels.tolist())
        assert len(first_users & truth) / len(truth) >= 0.8

    def test_blocks_bounded(self, planted_graph):
        graph, _ = planted_graph
        result = FraudarDetector(n_blocks=2).detect(graph)
        assert len(result.blocks) <= 2

    def test_cumulative_detections_grow(self, planted_graph):
        graph, _ = planted_graph
        result = FraudarDetector(n_blocks=4).detect(graph)
        points = result.cumulative_detections()
        sizes = [labels.size for _, labels in points]
        assert sizes == sorted(sizes)
        assert points[0][0] == 1

    def test_detected_users_union(self, planted_graph):
        graph, _ = planted_graph
        result = FraudarDetector(n_blocks=4).detect(graph)
        all_users = set(result.detected_users().tolist())
        first = set(result.detected_users(1).tolist())
        assert first <= all_users

    def test_empty_graph(self):
        result = FraudarDetector(n_blocks=3).detect(BipartiteGraph.empty(5, 5))
        assert result.blocks == ()
        assert result.detected_users().size == 0
        assert result.detected_merchants().size == 0

    def test_densities_non_increasing_in_practice(self, planted_graph):
        graph, _ = planted_graph
        result = FraudarDetector(n_blocks=5).detect(graph)
        densities = [b.density for b in result.blocks]
        # refresh-weight drift can cause tiny wiggles; allow 5% slack
        for earlier, later in zip(densities, densities[1:]):
            assert later <= earlier * 1.05


class TestSpoken:
    def test_scores_shape_and_range(self, planted_graph):
        graph, _ = planted_graph
        scores = SpokenDetector(n_components=5).score(graph)
        assert scores.user_scores.shape == (graph.n_users,)
        assert scores.merchant_scores.shape == (graph.n_merchants,)
        assert np.all(scores.user_scores >= 0)
        assert np.all(scores.user_scores <= 1.0 + 1e-9)

    def test_components_clamped_to_rank(self):
        graph = BipartiteGraph.from_edges(
            [(u, v) for u in range(3) for v in range(3)], n_users=3, n_merchants=3
        )
        scores = SpokenDetector(n_components=25).score(graph)
        assert scores.n_components <= 2

    def test_clamp_logs_warning_on_tiny_graph(self, caplog):
        # regression: n_components >= min(n_users, n_merchants) must clamp
        # to a valid SVD rank with a logged warning, not fail inside ARPACK
        graph = BipartiteGraph.from_edges(
            [(0, 0), (0, 1), (1, 0), (1, 1)], n_users=2, n_merchants=2
        )
        with caplog.at_level("WARNING", logger="repro.baselines"):
            scores = SpokenDetector(n_components=25).score(graph)
        assert scores.n_components == 1
        assert any("clamping n_components" in record.message for record in caplog.records)

    def test_no_warning_when_rank_fits(self, planted_graph, caplog):
        graph, _ = planted_graph
        with caplog.at_level("WARNING", logger="repro.baselines"):
            SpokenDetector(n_components=3).score(graph)
        assert not caplog.records

    def test_planted_block_scores_high(self, planted_graph):
        graph, injection = planted_graph
        scores = SpokenDetector(n_components=8).score(graph)
        truth_mask = np.isin(graph.user_labels, injection.fraud_user_labels)
        fraud_mean = scores.user_scores[truth_mask].mean()
        normal_mean = scores.user_scores[~truth_mask].mean()
        assert fraud_mean > normal_mean

    def test_top_users(self, planted_graph):
        graph, _ = planted_graph
        scores = SpokenDetector(n_components=5).score(graph)
        top = scores.top_users(10)
        assert top.size == 10
        assert np.all(np.diff(scores.user_scores[top]) <= 1e-12)

    def test_too_small_graph_rejected(self):
        graph = BipartiteGraph.from_edges([(0, 0)])
        with pytest.raises(DetectionError):
            SpokenDetector().score(graph)

    def test_invalid_components(self):
        with pytest.raises(DetectionError):
            SpokenDetector(n_components=0)


class TestFBox:
    def test_scores_shape_and_range(self, planted_graph):
        graph, _ = planted_graph
        scores = FBoxDetector(n_components=5).score(graph)
        assert scores.user_scores.shape == (graph.n_users,)
        assert np.all(scores.user_scores >= 0)
        assert np.all(scores.user_scores <= 1.0)

    def test_low_degree_users_never_flagged(self, planted_graph):
        graph, _ = planted_graph
        detector = FBoxDetector(n_components=5, min_degree=3)
        scores = detector.score(graph)
        low = graph.user_degrees() < 3
        assert np.all(scores.user_scores[low] == 0)

    def test_detect_users_threshold(self, planted_graph):
        graph, _ = planted_graph
        detector = FBoxDetector(n_components=5)
        strict = detector.detect_users(graph, tau=0.05)
        loose = detector.detect_users(graph, tau=0.5)
        assert strict.size <= loose.size

    def test_invalid_tau(self, planted_graph):
        graph, _ = planted_graph
        with pytest.raises(DetectionError):
            FBoxDetector().detect_users(graph, tau=0.0)

    def test_invalid_params(self):
        with pytest.raises(DetectionError):
            FBoxDetector(n_components=0)
        with pytest.raises(DetectionError):
            FBoxDetector(min_degree=-1)
        with pytest.raises(DetectionError):
            FBoxDetector(n_degree_buckets=0)

    def test_too_small_graph_rejected(self):
        graph = BipartiteGraph.from_edges([(0, 0)])
        with pytest.raises(DetectionError):
            FBoxDetector().score(graph)

    def test_components_clamped_with_warning_on_tiny_graph(self, caplog):
        # regression: same clamp-and-warn behaviour as SpokEn on graphs
        # smaller than the configured SVD rank
        graph = BipartiteGraph.from_edges(
            [(u, v) for u in range(4) for v in range(2)], n_users=4, n_merchants=2
        )
        with caplog.at_level("WARNING", logger="repro.baselines"):
            scores = FBoxDetector(n_components=25, min_degree=1).score(graph)
        assert scores.user_scores.shape == (4,)
        assert any("clamping n_components" in record.message for record in caplog.records)


class TestDegreeDetector:
    def test_scores_are_degrees(self, tiny_graph):
        scores = DegreeDetector().score_users(tiny_graph)
        assert scores.tolist() == [2.0, 1.0, 1.0, 2.0]

    def test_weighted_variant(self):
        graph = BipartiteGraph(2, 1, [0, 1], [0, 0], edge_weights=[5.0, 1.0])
        scores = DegreeDetector(weighted=True).score_users(graph)
        assert scores.tolist() == [5.0, 1.0]

    def test_top_users(self, tiny_graph):
        top = DegreeDetector().top_users(tiny_graph, 2)
        assert set(top.tolist()) == {0, 3}

    def test_top_users_clamped(self, tiny_graph):
        assert DegreeDetector().top_users(tiny_graph, 99).size == 4

    def test_all_ties_rank_by_node_index(self):
        # regression: equal-degree users must rank deterministically by
        # node index (explicit (score, id) sort key, not argsort luck)
        graph = BipartiteGraph.from_edges(
            [(u, u % 3) for u in range(6)], n_users=6, n_merchants=3
        )
        assert DegreeDetector().score_users(graph).tolist() == [1.0] * 6
        assert DegreeDetector().top_users(graph, 6).tolist() == [0, 1, 2, 3, 4, 5]
        assert DegreeDetector().top_users(graph, 3).tolist() == [0, 1, 2]

    def test_ties_within_equal_scores_keep_index_order(self, tiny_graph):
        # degrees are [2, 1, 1, 2]: ties (0,3) and (1,2) each keep index order
        assert DegreeDetector().top_users(tiny_graph, 4).tolist() == [0, 3, 1, 2]
