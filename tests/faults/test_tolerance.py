"""Fault-tolerant fan-out: retry, degradation, quorum — and bitwise recovery."""

from __future__ import annotations

import pytest

from repro.datasets import uniform_bipartite
from repro.errors import InjectedFault, QuorumError, WorkerCrashError
from repro.faults import arm, disarm
from repro.faults.chaos import leaked_segments
from repro.ensemble import EnsemFDet, EnsemFDetConfig, detect_on_plans
from repro.fdet import FdetConfig
from repro.parallel import FaultTolerance, ReusablePool
from repro.sampling import RandomEdgeSampler, resolve_rng


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


@pytest.fixture(scope="module")
def graph():
    return uniform_bipartite(60, 30, 300, rng=0)


def _config(executor="serial", n_workers=None, **tolerance_kwargs):
    return EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4),
        n_samples=6,
        fdet=FdetConfig(max_blocks=6),
        executor=executor,
        n_workers=n_workers,
        seed=3,
        tolerance=FaultTolerance(**tolerance_kwargs),
    )


def _tables_equal(a, b) -> bool:
    return (
        a.n_samples == b.n_samples
        and dict(a.user_votes) == dict(b.user_votes)
        and dict(a.merchant_votes) == dict(b.merchant_votes)
    )


class TestToleranceValidation:
    def test_rejects_bad_values(self):
        from repro.errors import ReproError

        for kwargs in (
            {"member_timeout": 0},
            {"max_retries": -1},
            {"backoff_seconds": -0.1},
            {"min_quorum": 0.0},
            {"min_quorum": 1.5},
        ):
            with pytest.raises(ReproError):
                FaultTolerance(**kwargs)

    def test_required_survivors(self):
        assert FaultTolerance(min_quorum=0.5).required_survivors(6) == 3
        assert FaultTolerance(min_quorum=0.5).required_survivors(7) == 4
        assert FaultTolerance(min_quorum=0.01).required_survivors(10) == 1
        assert FaultTolerance.strict().required_survivors(8) == 8

    def test_backoff_doubles_deterministically(self):
        tolerance = FaultTolerance(backoff_seconds=0.5)
        assert tolerance.backoff_for(0) == 0.0
        assert tolerance.backoff_for(1) == 0.5
        assert tolerance.backoff_for(2) == 1.0
        assert FaultTolerance().backoff_for(3) == 0.0

    def test_dict_roundtrip(self):
        tolerance = FaultTolerance(member_timeout=2.5, max_retries=1, min_quorum=0.75)
        assert FaultTolerance.from_dict(tolerance.as_dict()) == tolerance
        assert FaultTolerance.from_dict(None) == FaultTolerance()


class TestTransientRecovery:
    def test_raise_fault_recovers_bitwise_identical(self, graph):
        reference = EnsemFDet(_config()).fit(graph)
        arm("raise:point=member.detect,index=2")
        result = EnsemFDet(_config()).fit(graph)
        assert not result.failed_members
        assert _tables_equal(result.vote_table, reference.vote_table)
        # the fault is visible in the retry log, not the result
        assert result.retry_log[0]["failed"] == [2]
        assert result.retry_log[1]["members"] == [2]
        assert result.retry_log[1]["failed"] == []

    def test_retry_log_is_deterministic(self, graph):
        plan = "raise:point=member.detect,index=1;raise:point=member.detect,index=4"
        logs, tables = [], []
        for _ in range(2):
            arm(plan)
            result = EnsemFDet(_config()).fit(graph)
            logs.append(result.retry_log)
            tables.append(result.vote_table)
        assert logs[0] == logs[1]
        assert _tables_equal(tables[0], tables[1])

    def test_strict_tolerance_raises_original_error(self, graph):
        arm("raise:point=member.detect,index=0")
        with pytest.raises(InjectedFault):
            EnsemFDet(
                EnsemFDetConfig(
                    sampler=RandomEdgeSampler(0.4),
                    n_samples=6,
                    seed=3,
                    tolerance=FaultTolerance.strict(),
                )
            ).fit(graph)

    def test_fit_identical_under_every_backend_with_faults(self, graph):
        reference = EnsemFDet(_config()).fit(graph)
        for executor in ("serial", "thread"):
            arm("raise:point=member.detect,index=0;raise:point=member.detect,index=5")
            result = EnsemFDet(_config(executor=executor)).fit(graph)
            assert _tables_equal(result.vote_table, reference.vote_table), executor


class TestQuorumDegradation:
    def test_permanent_failure_degrades_with_metadata(self, graph):
        arm("raise:point=member.detect,index=0,attempt=-1,times=-1")
        result = EnsemFDet(_config()).fit(graph)
        assert [f.index for f in result.failed_members] == [0]
        assert result.failed_members[0].kind == "error"
        assert result.failed_members[0].attempts == 3  # 1 try + 2 retries
        assert result.n_samples == 5
        assert result.effective_quorum == pytest.approx(5 / 6)

    def test_threshold_rescaled_to_survivors(self, graph):
        arm("raise:point=member.detect,index=0,attempt=-1,times=-1")
        result = EnsemFDet(_config()).fit(graph)
        # T=6 of N=6 becomes ceil(6·5/6)=5 of the 5 survivors
        assert result.effective_threshold(6) == 5
        assert result.effective_threshold(1) == 1
        detection = result.detect(6)
        assert detection.n_users >= 0  # threshold 6 > survivors would match nothing

    def test_below_quorum_raises(self, graph):
        plan = ";".join(
            f"raise:point=member.detect,index={i},attempt=-1,times=-1"
            for i in range(4)
        )
        arm(plan)
        with pytest.raises(QuorumError, match="2/6"):
            EnsemFDet(_config()).fit(graph)

    def test_min_quorum_one_rejects_any_loss(self, graph):
        arm("raise:point=member.detect,index=3,attempt=-1,times=-1")
        with pytest.raises(InjectedFault):
            EnsemFDet(_config(min_quorum=1.0)).fit(graph)


class TestProcessBackendFaults:
    def test_worker_crash_recovers_bitwise_identical(self, graph):
        reference = EnsemFDet(_config()).fit(graph)
        before = leaked_segments()
        arm("crash:point=member.detect,index=1")
        result = EnsemFDet(_config(executor="process", n_workers=2)).fit(graph)
        assert not result.failed_members
        assert _tables_equal(result.vote_table, reference.vote_table)
        kinds = result.retry_log[0]["kinds"].values()
        assert "crash" in kinds
        assert leaked_segments() == before

    def test_strict_worker_crash_raises_typed_error_and_leaks_nothing(self, graph):
        before = leaked_segments()
        arm("crash:point=member.detect,index=0")
        rng = resolve_rng(3)
        config = _config(executor="process", n_workers=2)
        plans = config.sampler.plan_many(graph, config.n_samples, rng)
        with pytest.raises(WorkerCrashError) as excinfo:
            detect_on_plans(
                graph,
                plans,
                config.fdet,
                mode="process",
                n_workers=2,
                tolerance=FaultTolerance.strict(),
            )
        assert excinfo.value.member_indices  # failed members identified
        assert leaked_segments() == before

    def test_hung_member_times_out_then_recovers(self, graph):
        reference = EnsemFDet(_config()).fit(graph)
        arm("hang:point=member.detect,index=1,seconds=20")
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.4),
            n_samples=2,
            fdet=FdetConfig(max_blocks=6),
            executor="process",
            n_workers=2,
            seed=3,
            tolerance=FaultTolerance(member_timeout=1.5),
        )
        result = EnsemFDet(config).fit(graph)
        assert not result.failed_members
        assert result.retry_log[0]["kinds"]["1"] == "timeout"
        assert result.vote_table.n_samples == 2
        assert reference is not None

    def test_shm_attach_failure_falls_back_to_pickled_store(self, graph):
        # a warm ReusablePool attaches at chunk time (no initializer), so
        # the injected attach failure surfaces as kind "shm", not a broken
        # pool — and the next attempt must switch to the pickled store
        reference = EnsemFDet(_config()).fit(graph)
        arm("raise:point=shm.attach")
        with ReusablePool(mode="process", n_workers=2) as pool:
            result = EnsemFDet(
                _config(executor="process", n_workers=2, degrade=False), pool=pool
            ).fit(graph)
        assert not result.failed_members
        assert _tables_equal(result.vote_table, reference.vote_table)
        assert result.retry_log[0]["shared_memory"] is True
        assert "shm" in result.retry_log[0]["kinds"].values()
        assert result.retry_log[1]["shared_memory"] is False
        assert leaked_segments() == []
