"""Crash-safe detection state: atomic commit, checksums, backup recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import uniform_bipartite
from repro.ensemble import (
    DetectionState,
    IncrementalEnsemFDet,
    load_detection_state,
    load_detection_state_with_recovery,
    save_detection_state,
    state_backup_path,
)
from repro.ensemble.results import STATE_FORMAT_VERSION
from repro.errors import InjectedFault, StateChecksumError, StateError
from repro.faults import arm, disarm
from repro.fdet import FdetConfig
from repro.sampling import StableEdgeSampler


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


def _make_state(seed: int = 0, rows: int = 120) -> DetectionState:
    graph = uniform_bipartite(30, 15, 120, rng=seed)
    rng = np.random.default_rng(seed)
    per_sample = lambda high, size: [  # noqa: E731 - tiny local builder
        np.sort(rng.choice(high, size=size, replace=False)).astype(np.int64)
        for _ in range(4)
    ]
    return DetectionState(
        config={"n_samples": 4, "seed": seed},
        graph=graph,
        detected_users=per_sample(30, 5),
        detected_merchants=per_sample(15, 3),
        sample_users=per_sample(30, 12),
        sample_merchants=per_sample(15, 7),
        meta={"watch_rows": rows},
    )


def _states_equal(a: DetectionState, b: DetectionState) -> bool:
    if a.config != b.config or a.meta != b.meta:
        return False
    if a.graph.n_users != b.graph.n_users or a.graph.n_merchants != b.graph.n_merchants:
        return False
    if not np.array_equal(a.graph.edge_users, b.graph.edge_users):
        return False
    if not np.array_equal(a.graph.edge_merchants, b.graph.edge_merchants):
        return False
    for name in ("detected_users", "detected_merchants", "sample_users", "sample_merchants"):
        left, right = getattr(a, name), getattr(b, name)
        if len(left) != len(right):
            return False
        if not all(np.array_equal(x, y) for x, y in zip(left, right)):
            return False
    return True


def _flip_byte(path, offset: int) -> None:
    data = bytearray(path.read_bytes())
    data[offset % len(data)] ^= 0xFF
    path.write_bytes(bytes(data))


class TestAtomicCommit:
    def test_roundtrip_and_version(self, tmp_path):
        state = _make_state()
        target = tmp_path / "state.npz"
        save_detection_state(state, target)
        assert _states_equal(load_detection_state(target), state)
        with np.load(target) as data:
            assert int(data["format_version"][0]) == STATE_FORMAT_VERSION
            manifest = json.loads(bytes(data["checksums_json"].tobytes()))
            assert "edge_users" in manifest

    def test_second_save_rotates_backup(self, tmp_path):
        first, second = _make_state(seed=1), _make_state(seed=2)
        target = tmp_path / "state.npz"
        save_detection_state(first, target)
        save_detection_state(second, target)
        assert _states_equal(load_detection_state(target), second)
        assert _states_equal(load_detection_state(state_backup_path(target)), first)
        assert not (tmp_path / "state.npz.tmp").exists()

    def test_crash_before_rotation_keeps_old_primary(self, tmp_path):
        first = _make_state(seed=1)
        target = tmp_path / "state.npz"
        save_detection_state(first, target)
        arm("raise:point=state.write,stage=tmp_written")
        with pytest.raises(InjectedFault):
            save_detection_state(_make_state(seed=2), target)
        assert _states_equal(load_detection_state(target), first)
        assert not (tmp_path / "state.npz.tmp").exists()

    def test_crash_after_rotation_recovers_from_backup(self, tmp_path):
        first = _make_state(seed=1)
        target = tmp_path / "state.npz"
        save_detection_state(first, target)
        arm("raise:point=state.write,stage=backup_done")
        with pytest.raises(InjectedFault):
            save_detection_state(_make_state(seed=2), target)
        # the primary was rotated away and the new file never committed
        with pytest.raises(FileNotFoundError):
            load_detection_state(target)
        state, recovered_from = load_detection_state_with_recovery(target)
        assert recovered_from == str(state_backup_path(target))
        assert _states_equal(state, first)


class TestCorruptionDetection:
    def test_corrupt_committed_snapshot_never_loads_silently(self, tmp_path):
        first, second = _make_state(seed=1), _make_state(seed=2)
        target = tmp_path / "state.npz"
        save_detection_state(first, target)
        # offset 485 sits inside a compressed zip member's payload, where a
        # flip must trip the container CRC (zip header padding would not)
        arm("corrupt:point=state.write,stage=committed,offset=485")
        save_detection_state(second, target)  # corrupts after the commit
        with pytest.raises(StateChecksumError):
            load_detection_state(target)
        state, recovered_from = load_detection_state_with_recovery(target)
        assert recovered_from == str(state_backup_path(target))
        assert _states_equal(state, first)

    def test_both_copies_corrupt_raises(self, tmp_path):
        target = tmp_path / "state.npz"
        save_detection_state(_make_state(seed=1), target)
        save_detection_state(_make_state(seed=2), target)
        _flip_byte(target, 300)
        _flip_byte(state_backup_path(target), 300)
        with pytest.raises(StateChecksumError, match="cannot be recovered"):
            load_detection_state_with_recovery(target)

    def test_missing_everything_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_detection_state_with_recovery(tmp_path / "absent.npz")

    def test_truncated_archive_is_checksum_error(self, tmp_path):
        target = tmp_path / "state.npz"
        save_detection_state(_make_state(), target)
        target.write_bytes(target.read_bytes()[: target.stat().st_size // 2])
        with pytest.raises(StateChecksumError, match="unreadable|checksum"):
            load_detection_state(target)

    @settings(max_examples=60, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=1 << 20))
    def test_any_single_byte_flip_is_detected_or_benign(self, tmp_path_factory, offset):
        # hypothesis + function-scoped tmp_path don't mix; build our own dir
        workdir = tmp_path_factory.mktemp("flip")
        reference = _make_state(seed=7)
        target = workdir / "state.npz"
        save_detection_state(reference, target)
        _flip_byte(target, offset)
        # a flip must either surface as a typed checksum failure or hit one
        # of the few bytes (zip timestamps/padding) that cannot change the
        # decoded state — a silently *different* table is the one bad outcome
        try:
            loaded = load_detection_state(target)
        except StateChecksumError:
            return
        assert _states_equal(loaded, reference)


class TestDiskFullLeftovers:
    """Regression: ENOSPC-shaped files must fail typed, then recover.

    A disk filling up mid-write (or a kill between open and write) leaves
    a zero-byte, truncated, or garbage ``.npz``. None of the underlying
    decoders' exceptions (``zipfile.BadZipFile``, ``EOFError``,
    ``zlib.error``) may escape raw — every shape surfaces as
    :class:`StateChecksumError`, and the recovery ladder must still fall
    back to the ``.bak`` snapshot exactly as for a flipped byte.
    """

    def _primary_with_backup(self, tmp_path):
        state = _make_state(seed=11)
        target = tmp_path / "state.npz"
        save_detection_state(state, target)
        save_detection_state(state, target)  # rotates a valid .bak
        return state, target

    def _spoil(self, target, shape: str) -> None:
        if shape == "zero_byte":
            target.write_bytes(b"")
        elif shape == "header_only":
            # the zip magic survives but everything else is gone
            target.write_bytes(target.read_bytes()[:4])
        elif shape == "half":
            target.write_bytes(target.read_bytes()[: target.stat().st_size // 2])
        elif shape == "no_central_directory":
            # valid local headers, truncated before the central directory:
            # the shape a torn rename or lost final flush leaves behind
            target.write_bytes(target.read_bytes()[:-64])
        elif shape == "garbage":
            target.write_bytes(b"\x00" * 2048)
        else:  # pragma: no cover - guard against typos in parametrize
            raise AssertionError(shape)

    SHAPES = ("zero_byte", "header_only", "half", "no_central_directory", "garbage")

    @pytest.mark.parametrize("shape", SHAPES)
    def test_spoiled_primary_is_typed_checksum_error(self, tmp_path, shape):
        state = _make_state(seed=11)
        target = tmp_path / "state.npz"
        save_detection_state(state, target)
        self._spoil(target, shape)
        with pytest.raises(StateChecksumError, match="unreadable|checksum"):
            load_detection_state(target)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_spoiled_primary_recovers_from_backup(self, tmp_path, shape, caplog):
        state, target = self._primary_with_backup(tmp_path)
        self._spoil(target, shape)
        with caplog.at_level("WARNING", logger="repro.state"):
            loaded, recovered_from = load_detection_state_with_recovery(target)
        assert recovered_from == str(state_backup_path(target))
        assert _states_equal(loaded, state)
        assert any("recovering from backup" in rec.message for rec in caplog.records)

    def test_spoiled_primary_and_backup_raise_together(self, tmp_path):
        _, target = self._primary_with_backup(tmp_path)
        self._spoil(target, "zero_byte")
        self._spoil(state_backup_path(target), "half")
        with pytest.raises(StateChecksumError, match="cannot be recovered"):
            load_detection_state_with_recovery(target)

    def test_missing_primary_with_backup_warns_and_recovers(self, tmp_path, caplog):
        state, target = self._primary_with_backup(tmp_path)
        target.unlink()
        with caplog.at_level("WARNING", logger="repro.state"):
            loaded, recovered_from = load_detection_state_with_recovery(target)
        assert recovered_from == str(state_backup_path(target))
        assert _states_equal(loaded, state)
        assert any("is missing" in rec.message for rec in caplog.records)


class TestFormatVersions:
    def _rewrite(self, target, version: int, drop_checksums: bool) -> None:
        with np.load(target) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["format_version"] = np.array([version], dtype=np.int64)
        if drop_checksums:
            arrays.pop("checksums_json", None)
        with open(target, "wb") as handle:
            np.savez_compressed(handle, **arrays)

    def test_v1_legacy_archive_still_loads(self, tmp_path):
        state = _make_state()
        target = tmp_path / "state.npz"
        save_detection_state(state, target)
        self._rewrite(target, version=1, drop_checksums=True)
        assert _states_equal(load_detection_state(target), state)

    def test_future_version_is_a_state_error(self, tmp_path):
        target = tmp_path / "state.npz"
        save_detection_state(_make_state(), target)
        self._rewrite(target, version=99, drop_checksums=False)
        with pytest.raises(StateError, match="v99"):
            load_detection_state(target)

    def test_v2_without_manifest_is_corrupt(self, tmp_path):
        target = tmp_path / "state.npz"
        save_detection_state(_make_state(), target)
        self._rewrite(target, version=STATE_FORMAT_VERSION, drop_checksums=True)
        with pytest.raises(StateChecksumError, match="manifest"):
            load_detection_state(target)


class TestDetectorRecovery:
    def test_incremental_load_with_recovery(self, tmp_path):
        graph = uniform_bipartite(60, 30, 300, rng=0)
        from repro.ensemble import EnsemFDetConfig

        config = EnsemFDetConfig(
            sampler=StableEdgeSampler(0.4, stripe=64),
            n_samples=6,
            fdet=FdetConfig(max_blocks=6),
            seed=3,
            track_appearances=True,
        )
        detector = IncrementalEnsemFDet(config)
        detector.fit(graph)
        target = tmp_path / "state.npz"
        detector.save(target)
        detector.save(target)  # second save creates the rolling backup
        _flip_byte(target, 400)
        recovered, recovered_from = IncrementalEnsemFDet.load_with_recovery(target)
        assert recovered_from == str(state_backup_path(target))
        assert dict(recovered.vote_table.user_votes) == dict(
            detector.vote_table.user_votes
        )
        assert dict(recovered.vote_table.merchant_votes) == dict(
            detector.vote_table.merchant_votes
        )
