"""Fault injection at the window-compaction point.

Compaction is a pure memory optimisation: an injected failure at
``window.compact`` must defer it (never corrupt the accumulator), leave
windowed detection bit-identical to a cold fit on the live window, and
never interfere with v3 state saves (``window_state`` is pure array
filtering with no fault points on its path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet
from repro.errors import InjectedFault
from repro.faults import arm, disarm
from repro.fdet import FdetConfig
from repro.graph import GraphAccumulator, WindowConfig
from repro.sampling import StableEdgeSampler


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


def _full_accumulator() -> GraphAccumulator:
    """A windowed accumulator sitting right above its compaction threshold."""
    acc = GraphAccumulator(window=WindowConfig(max_batches=1, compact_threshold=0.4))
    acc.append(np.arange(10), np.arange(10) % 4)
    acc.append(np.arange(10, 16), np.arange(6) % 4)
    acc.expire()  # 10 of 16 rows dead: dead_fraction 0.625 > 0.4
    return acc


class TestCompactionFaults:
    def test_compact_fires_before_mutation(self):
        acc = _full_accumulator()
        before = acc.window()
        arm("raise:point=window.compact")
        with pytest.raises(InjectedFault):
            acc.compact()
        after = acc.window()
        # nothing moved: same stored rows, same liveness, same ids
        assert after.graph.n_edges == before.graph.n_edges
        assert np.array_equal(after.alive, before.alive)
        assert np.array_equal(after.edge_ids, before.edge_ids)

    def test_maybe_compact_defers_on_injected_fault(self):
        acc = _full_accumulator()
        arm("raise:point=window.compact")
        assert acc.maybe_compact() is False
        # the plan fired once (times=1); the next crossing compacts
        assert acc.maybe_compact() is True
        assert acc.window().graph.n_edges == acc.window().n_live

    def test_reads_unaffected_while_compaction_is_blocked(self):
        acc = _full_accumulator()
        expected = acc.live_graph()
        arm("raise:point=window.compact,times=-1")  # every crossing fails
        assert acc.maybe_compact() is False
        live = acc.live_graph()
        assert live == expected
        assert np.array_equal(live.edge_users, expected.edge_users)


def _config() -> EnsemFDetConfig:
    return EnsemFDetConfig(
        sampler=StableEdgeSampler(0.4, stripe=32),
        n_samples=6,
        fdet=FdetConfig(max_blocks=6),
        executor="serial",
        seed=3,
    )


def _stream(detector):
    rng = np.random.default_rng(11)
    for step in range(4):
        detector.update(
            rng.integers(0, 60, 40),
            rng.integers(0, 30, 40),
            timestamp=float(step + 1),
        )


class TestWindowedDetectionUnderChaos:
    def test_updates_stay_bitwise_correct_with_compaction_blocked(self):
        graph = uniform_bipartite(60, 30, 600, rng=0)
        config = _config()
        # tiny window + eager threshold: every update wants to compact
        window = WindowConfig(max_batches=2, compact_threshold=0.1)
        chaotic = IncrementalEnsemFDet(config, window=window)
        chaotic.fit(graph, timestamp=0.0)
        arm("raise:point=window.compact,times=-1")
        _stream(chaotic)
        snapshot = chaotic.window()
        # compaction really was blocked: tombstones piled up
        assert snapshot.graph.n_edges > snapshot.n_live
        disarm()

        calm = IncrementalEnsemFDet(config, window=window)
        calm.fit(graph, timestamp=0.0)
        _stream(calm)
        assert chaotic.vote_table.user_votes == calm.vote_table.user_votes
        assert chaotic.vote_table.merchant_votes == calm.vote_table.merchant_votes

        cold = EnsemFDet(config).fit_window(snapshot, track_members=True)
        assert cold.vote_table.user_votes == chaotic.vote_table.user_votes

    def test_v3_save_survives_compaction_chaos(self, tmp_path):
        graph = uniform_bipartite(60, 30, 600, rng=0)
        config = _config()
        window = WindowConfig(max_batches=2, compact_threshold=0.1)
        detector = IncrementalEnsemFDet(config, window=window)
        detector.fit(graph, timestamp=0.0)
        arm("raise:point=window.compact,times=-1")
        _stream(detector)
        path = tmp_path / "state.npz"
        detector.save(path)  # window_state never hits a fault point
        disarm()

        restored = IncrementalEnsemFDet.load(path)
        assert restored.window_config == window
        assert restored.vote_table.user_votes == detector.vote_table.user_votes
        # the restored accumulator is compacted (saves persist live rows only)
        snapshot = restored.window()
        assert snapshot.graph.n_edges == snapshot.n_live
        assert snapshot.watermark == detector.window().watermark
