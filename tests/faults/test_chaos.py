"""End-to-end chaos: kills, attach failures and torn writes must converge.

The headline invariant of the fault-tolerance layer: a watch lifecycle
driven through worker crashes, shared-memory attach failures, a mid-write
SIGKILL and snapshot corruption ends with a vote table **bitwise
identical** to the fault-free run's, and zero leaked ``/dev/shm``
segments. Rounds run the real CLI in subprocesses (the only honest way to
exercise SIGKILL faults); crashed rounds are re-run fault-free, emulating
an operator restart.
"""

from __future__ import annotations

import pytest

from repro.datasets import uniform_bipartite
from repro.faults.chaos import (
    ChaosRound,
    delta_batches,
    leaked_segments,
    run_chaos_cycle,
    vote_fingerprint,
)

WATCH_FLAGS = (
    "--ratio",
    "0.3",
    "--samples",
    "6",
    "--stripe",
    "64",
    "--max-blocks",
    "6",
    "--executor",
    "process",
    "--seed",
    "0",
)


@pytest.fixture(scope="module")
def graph():
    return uniform_bipartite(100, 50, 600, rng=0)


@pytest.fixture(scope="module")
def batches():
    return delta_batches(100, 50, sizes=[40, 40, 40, 40], seed=1)


def _rounds(batches, faults: list[str]) -> list[ChaosRound]:
    rounds = [ChaosRound(faults=faults[0])]  # cold fit
    for edges, plan in zip(batches, faults[1:]):
        rounds.append(ChaosRound(edges=edges, faults=plan))
    return rounds


def test_chaos_cycle_converges_bitwise(tmp_path, graph, batches):
    quiet = ["", "", "", "", ""]
    noisy = [
        "",  # clean cold fit: the state both cycles start from is identical
        "crash:point=member.detect,index=2",  # worker (or in-parent CLI) dies
        "raise:point=shm.attach",  # segment transport fails, store fallback
        "crash:point=state.write,stage=backup_done",  # SIGKILL mid-commit
        "corrupt:point=state.write,stage=committed,offset=485",  # torn bytes
    ]
    # one extra fault-free settle round so the corrupted final snapshot is
    # recovered from .bak and re-ingested before fingerprints are compared
    settle = ((10, 5), (11, 6), (12, 7))

    reference = run_chaos_cycle(
        tmp_path / "reference",
        graph,
        _rounds(batches, quiet) + [ChaosRound(edges=settle)],
        watch_flags=WATCH_FLAGS,
    )
    chaos = run_chaos_cycle(
        tmp_path / "chaos",
        graph,
        _rounds(batches, noisy) + [ChaosRound(edges=settle)],
        watch_flags=WATCH_FLAGS,
    )

    assert reference.crashes == 0 and reference.restarts == 0
    # the mid-commit SIGKILL guarantees at least one real crash + restart
    assert chaos.crashes >= 1
    assert chaos.restarts >= 1
    assert chaos.fingerprint == reference.fingerprint, "\n".join(chaos.logs[-3:])
    assert chaos.leaked == []
    assert reference.leaked == []


def test_fingerprint_is_stable_and_content_sensitive(tmp_path, graph):
    first = run_chaos_cycle(
        tmp_path / "a", graph, [ChaosRound()], watch_flags=WATCH_FLAGS
    )
    again = vote_fingerprint(tmp_path / "a" / "state.npz")
    assert first.fingerprint == again  # re-reading the same state is stable
    grown = run_chaos_cycle(
        tmp_path / "b",
        graph,
        [ChaosRound(), ChaosRound(edges=((0, 0), (1, 1), (2, 2)))],
        watch_flags=WATCH_FLAGS,
    )
    assert grown.fingerprint != first.fingerprint


def test_delta_batches_are_deterministic():
    assert delta_batches(10, 5, sizes=[3, 2], seed=9) == delta_batches(
        10, 5, sizes=[3, 2], seed=9
    )
    assert delta_batches(10, 5, sizes=[3], seed=1) != delta_batches(
        10, 5, sizes=[3], seed=2
    )


def test_no_segments_leaked_right_now():
    # module-level hygiene: nothing earlier in the suite left /dev/shm dirty
    assert leaked_segments() == []
