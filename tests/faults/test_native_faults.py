"""Faults at the batched native backend: the ``native.peel`` point.

The point fires per member inside the worker, right before the member is
enrolled into the multi-member kernel call — so an injected failure takes
down exactly that member, the retry machinery recovers it bitwise, and a
worker *crash* during a batched round degrades batching for the remaining
retries (the way shm failures degrade the shared segment).
"""

from __future__ import annotations

import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig
from repro.faults import arm, disarm
from repro.fdet import FdetConfig
from repro.fdet._native import native_available
from repro.parallel import FaultTolerance
from repro.sampling import RandomEdgeSampler

pytestmark = pytest.mark.skipif(
    not native_available(), reason="native kernel unavailable (no C compiler)"
)


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


@pytest.fixture(scope="module")
def graph():
    return uniform_bipartite(60, 30, 300, rng=0)


def _config(executor="serial", n_workers=None, **tolerance_kwargs):
    return EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4),
        n_samples=6,
        fdet=FdetConfig(max_blocks=6),
        executor=executor,
        n_workers=n_workers,
        seed=3,
        native_batch=True,
        tolerance=FaultTolerance(**tolerance_kwargs),
    )


def _tables_equal(a, b) -> bool:
    return (
        a.n_samples == b.n_samples
        and dict(a.user_votes) == dict(b.user_votes)
        and dict(a.merchant_votes) == dict(b.merchant_votes)
    )


class TestNativePeelFaults:
    def test_raise_recovers_bitwise_with_batch_still_on(self, graph):
        reference = EnsemFDet(_config()).fit(graph)
        arm("raise:point=native.peel,index=2")
        result = EnsemFDet(_config()).fit(graph)
        assert not result.failed_members
        assert _tables_equal(result.vote_table, reference.vote_table)
        # the faulted member failed round 0 and recovered in round 1
        assert result.retry_log[0]["failed"] == [2]
        assert result.retry_log[0]["kinds"]["2"] == "error"
        assert result.retry_log[1]["members"] == [2]
        assert result.retry_log[1]["failed"] == []
        # an application-level error does not indict the kernel: the batch
        # path stays enabled on the retry round
        assert result.retry_log[0]["native_batch"] is True
        assert result.retry_log[1]["native_batch"] is True

    def test_fault_isolates_one_member_not_the_batch(self, graph):
        """The other five members of the batched round still detect."""
        arm("raise:point=native.peel,index=3,attempt=-1,times=-1")
        result = EnsemFDet(_config()).fit(graph)
        assert [f.index for f in result.failed_members] == [3]
        assert result.n_samples == 5

    def test_worker_crash_disables_batching_for_retries(self, graph):
        reference = EnsemFDet(_config()).fit(graph)
        arm("crash:point=native.peel,index=1")
        result = EnsemFDet(_config(executor="process", n_workers=2)).fit(graph)
        assert not result.failed_members
        assert _tables_equal(result.vote_table, reference.vote_table)
        # a dead worker during a batched round is treated as a possible
        # kernel fault: retries degrade to the per-member path
        assert result.retry_log[0]["native_batch"] is True
        assert "crash" in result.retry_log[0]["kinds"].values()
        assert result.retry_log[-1]["native_batch"] is False

    def test_retry_log_is_deterministic_under_batch(self, graph):
        plan = "raise:point=native.peel,index=1;raise:point=native.peel,index=4"
        logs, tables = [], []
        for _ in range(2):
            arm(plan)
            result = EnsemFDet(_config()).fit(graph)
            logs.append(result.retry_log)
            tables.append(result.vote_table)
        assert logs[0] == logs[1]
        assert _tables_equal(tables[0], tables[1])
