"""The out-of-core transport degrades like shared memory: an injected
``mmap.open`` failure falls back to the pickled store, bitwise-identically."""

from __future__ import annotations

import pytest

from repro.datasets import uniform_bipartite
from repro.ensemble import EnsemFDet, EnsemFDetConfig
from repro.faults import arm, disarm
from repro.faults.chaos import leaked_segments
from repro.fdet import FdetConfig
from repro.parallel import FaultTolerance, ReusablePool
from repro.sampling import RandomEdgeSampler


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


@pytest.fixture(scope="module")
def graph():
    return uniform_bipartite(60, 30, 300, rng=0)


def _config(executor="serial", n_workers=None, mmap=False, **tolerance_kwargs):
    return EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4),
        n_samples=6,
        fdet=FdetConfig(max_blocks=6),
        executor=executor,
        n_workers=n_workers,
        seed=3,
        mmap=mmap,
        tolerance=FaultTolerance(**tolerance_kwargs),
    )


def _tables_equal(a, b) -> bool:
    return (
        a.n_samples == b.n_samples
        and dict(a.user_votes) == dict(b.user_votes)
        and dict(a.merchant_votes) == dict(b.merchant_votes)
    )


def test_mmap_open_failure_falls_back_to_pickled_store(graph):
    reference = EnsemFDet(_config()).fit(graph)
    arm("raise:point=mmap.open")
    with ReusablePool(mode="process", n_workers=2) as pool:
        result = EnsemFDet(
            _config(executor="process", n_workers=2, mmap=True, degrade=False),
            pool=pool,
        ).fit(graph)
    assert not result.failed_members
    assert _tables_equal(result.vote_table, reference.vote_table)
    # first attempt went out over the spilled store file…
    assert result.retry_log[0]["transport"] == "mmap"
    assert "shm" in result.retry_log[0]["kinds"].values()
    # …and the retry abandoned both zero-copy transports
    assert result.retry_log[1]["transport"] == "pickle"
    assert leaked_segments() == []
