"""Fault-plan grammar and injection-runtime semantics."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFault, ReproError
from repro.faults import (
    ENV_VAR,
    FaultKind,
    FaultPlan,
    FaultSpec,
    arm,
    arm_from_env,
    armed_plan,
    disarm,
    fault_point,
    fired_log,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


class TestSpecGrammar:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse(
            "raise:point=member.detect,index=3,attempt=-1,at=2,times=5"
        )
        assert spec.kind == FaultKind.RAISE
        assert spec.point == "member.detect"
        assert spec.index == 3
        assert spec.attempt == -1
        assert spec.at == 2
        assert spec.times == 5

    def test_defaults(self):
        spec = FaultSpec.parse("crash:point=state.write")
        assert spec.attempt == 0  # first try only: retries recover
        assert spec.times == 1
        assert spec.index is None
        assert spec.stage is None

    def test_roundtrip_through_serialise(self):
        plans = [
            "raise:point=member.detect,index=1",
            "crash:point=state.write,stage=backup_done",
            "hang:point=member.detect,index=0,seconds=2.5",
            "corrupt:point=state.write,stage=committed,offset=17",
        ]
        plan = FaultPlan.parse(";".join(plans))
        assert FaultPlan.parse(plan.serialise()) == plan
        assert len(plan.specs) == 4

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:point=x",  # unknown kind
            "raise:",  # missing point
            "raise:point=x,nonsense=1",  # unknown parameter
            "raise:point=x,index=ten",  # bad int
            "raise:point=x,index=1,index=2",  # duplicate
            "raise:point=x,at=-1",  # negative ordinal
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ReproError):
            FaultPlan.parse(bad)

    def test_empty_segments_skipped(self):
        plan = FaultPlan.parse(";;raise:point=x;;")
        assert len(plan.specs) == 1

    def test_matching_rules(self):
        spec = FaultSpec.parse("raise:point=member.detect,index=2")
        assert spec.matches("member.detect", {"index": 2, "attempt": 0})
        assert not spec.matches("member.detect", {"index": 1, "attempt": 0})
        assert not spec.matches("member.detect", {"index": 2, "attempt": 1})
        assert not spec.matches("shm.attach", {"index": 2})
        every = FaultSpec.parse("raise:point=member.detect,index=2,attempt=-1")
        assert every.matches("member.detect", {"index": 2, "attempt": 4})


class TestInjectionRuntime:
    def test_disarmed_is_inert(self):
        fault_point("member.detect", index=0, attempt=0)  # must not raise
        assert armed_plan() is None

    def test_raise_fires_and_logs(self):
        arm("raise:point=member.detect,index=1")
        fault_point("member.detect", index=0, attempt=0)  # other index: no-op
        with pytest.raises(InjectedFault, match="member.detect"):
            fault_point("member.detect", index=1, attempt=0)
        assert fired_log() == [
            ("raise", "member.detect", {"index": 1, "attempt": 0})
        ]

    def test_times_caps_firings(self):
        arm("raise:point=p")
        with pytest.raises(InjectedFault):
            fault_point("p")
        fault_point("p")  # capped: default times=1
        assert len(fired_log()) == 1

    def test_times_minus_one_is_unbounded(self):
        arm("raise:point=p,times=-1")
        for _ in range(3):
            with pytest.raises(InjectedFault):
                fault_point("p")
        assert len(fired_log()) == 3

    def test_at_selects_the_nth_hit(self):
        arm("raise:point=p,at=3")
        fault_point("p")
        fault_point("p")
        with pytest.raises(InjectedFault):
            fault_point("p")

    def test_rearming_resets_counters(self):
        arm("raise:point=p")
        with pytest.raises(InjectedFault):
            fault_point("p")
        arm("raise:point=p")  # same plan, fresh counters
        with pytest.raises(InjectedFault):
            fault_point("p")

    def test_attempt_zero_default_recovers_on_retry(self):
        arm("raise:point=member.detect")
        with pytest.raises(InjectedFault):
            fault_point("member.detect", index=0, attempt=0)
        fault_point("member.detect", index=0, attempt=1)  # retry: clean

    def test_hang_sleeps_briefly(self):
        arm("hang:point=p,seconds=0.01")
        fault_point("p")  # returns after the injected sleep
        assert fired_log()[0][0] == "hang"

    def test_corrupt_flips_one_byte(self, tmp_path):
        target = tmp_path / "blob.bin"
        target.write_bytes(bytes(range(16)))
        arm("corrupt:point=state.write,stage=committed,offset=3")
        fault_point("state.write", stage="committed", path=str(target))
        data = target.read_bytes()
        assert data[3] == 3 ^ 0xFF
        assert data[:3] == bytes(range(3)) and data[4:] == bytes(range(4, 16))

    def test_corrupt_without_path_context_is_an_error(self):
        arm("corrupt:point=p")
        with pytest.raises(ReproError, match="path"):
            fault_point("p")

    def test_arm_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise:point=env.test")
        arm_from_env()
        assert armed_plan() is not None
        with pytest.raises(InjectedFault):
            fault_point("env.test")

    def test_empty_env_is_noop(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  ")
        arm_from_env()
        assert armed_plan() is None
