"""Registry round-trip and determinism property tests.

The contracts the registry promises:

* every registered spec string parses, and its canonical form
  re-serialises to itself (round-trip stability);
* parsing is case-insensitive and accepts dicts and tuples;
* the same spec + context on a fixed-seed graph produces a bitwise
  identical :class:`Detection` across two independent runs, for every
  registered detector (the SVD baselines pin ARPACK's starting vector —
  see :func:`repro.baselines.spoken.svd_start_vector` — exactly so this
  holds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import toy_dataset
from repro.detectors import (
    DETECTOR_NAMES,
    DetectorContext,
    available_detectors,
    canonical_detector_spec,
    detector_info,
    make_detector,
    parse_detector_spec,
    split_detector_specs,
)
from repro.errors import DetectionError

#: canonical spec strings — one bare + one parameterised per detector
CANONICAL_SPECS = [
    "ensemfdet",
    "ensemfdet:n=6,ratio=0.5",
    "ensemfdet:n=6,sampler=res",
    "ensemfdet:n=6,ratio=0.4,sampler=ses,stripe=32,max_blocks=5",
    "incremental",
    "incremental:n=6,ratio=0.5,stripe=16",
    "fdet",
    "fdet:max_blocks=4,engine=reference",
    "fraudar",
    "fraudar:n_blocks=3",
    "fraudar:n_blocks=3,min_block_edges=2",
    "spoken",
    "spoken:components=3",
    "fbox",
    "fbox:components=3,min_degree=1,buckets=5",
    "degree",
    "degree:weighted=1",
]

#: every registered family must be bit-reproducible run to run
DETERMINISTIC_SPECS = [
    "ensemfdet:n=6,ratio=0.5",
    "ensemfdet:n=6,sampler=res",
    "incremental:n=6,ratio=0.5,stripe=16",
    "fdet:max_blocks=4",
    "fraudar:n_blocks=3",
    "spoken:components=3",
    "fbox:components=3,min_degree=1",
    "degree",
    "degree:weighted=1",
]

CONTEXT = DetectorContext(seed=0, n_samples=4, sample_ratio=0.5, stripe=32, max_blocks=4)


@pytest.fixture(scope="module")
def graph():
    return toy_dataset().graph


class TestRegistryNames:
    def test_all_seven_registered(self):
        assert DETECTOR_NAMES == (
            "ensemfdet", "incremental", "fdet", "fraudar", "spoken", "fbox", "degree"
        )
        assert available_detectors() == list(DETECTOR_NAMES)

    def test_unknown_name(self):
        with pytest.raises(DetectionError, match="unknown detector"):
            detector_info("oracle")
        with pytest.raises(DetectionError, match="unknown detector"):
            make_detector("oracle:k=1")

    def test_capability_flags(self):
        assert detector_info("incremental").streaming
        assert not detector_info("ensemfdet").streaming
        assert detector_info("ensemfdet").parity == detector_info("incremental").parity
        for name in ("fdet", "fraudar", "spoken", "fbox", "degree"):
            assert detector_info(name).parity is None

    def test_info_accepts_full_spec(self):
        assert detector_info("fraudar:n_blocks=8").name == "fraudar"


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", CANONICAL_SPECS)
    def test_canonical_specs_reserialize_to_themselves(self, spec):
        assert canonical_detector_spec(spec) == spec

    @pytest.mark.parametrize("spec", CANONICAL_SPECS)
    def test_parse_serialize_parse_is_stable(self, spec):
        _, config = parse_detector_spec(spec)
        _, reparsed = parse_detector_spec(canonical_detector_spec(spec))
        assert config == reparsed

    def test_case_and_order_insensitive(self):
        assert canonical_detector_spec("FRAUDAR:Min_Block_Edges=2,N_BLOCKS=3") == (
            "fraudar:n_blocks=3,min_block_edges=2"
        )

    def test_string_param_values_case_insensitive(self):
        # regression: 'sampler=SES' must hit the stable-sampler alias (and
        # honour stripe) exactly like 'sampler=ses'
        assert canonical_detector_spec("ensemfdet:sampler=SES") == "ensemfdet:sampler=ses"
        upper = make_detector("ensemfdet:sampler=SES,stripe=16", CONTEXT)
        lower = make_detector("ensemfdet:sampler=ses,stripe=16", CONTEXT)
        assert upper.config.sampler.stripe == lower.config.sampler.stripe == 16
        assert upper.parity_fingerprint() == lower.parity_fingerprint()

    def test_dict_and_tuple_specs(self):
        assert canonical_detector_spec(("degree", {"weighted": True})) == "degree:weighted=1"
        assert canonical_detector_spec({"name": "fbox", "components": 3}) == (
            "fbox:components=3"
        )

    def test_default_params_are_omitted(self):
        assert canonical_detector_spec("fraudar:") == "fraudar"

    def test_float_params_keep_full_precision(self):
        # regression: canonicalisation must never drift the config —
        # format(v, 'g') truncated to 6 significant digits
        spec = "ensemfdet:ratio=0.1234567891"
        assert canonical_detector_spec(spec) == spec
        detector = make_detector(spec, CONTEXT)
        assert detector.config.sampler.ratio == 0.1234567891

    def test_registered_extension_is_discoverable(self):
        from dataclasses import dataclass

        from repro.detectors import (
            Detection,
            DetectorInfo,
            DetectorSpec,
            register_detector,
        )

        @dataclass(frozen=True)
        class NullSpec(DetectorSpec):
            pass

        class NullDetector:
            def __init__(self, spec, config, context):
                self.spec = spec

            def fit(self, graph):
                import numpy as np

                return Detection(
                    spec=self.spec,
                    user_labels=graph.user_labels,
                    user_scores=np.zeros(graph.n_users),
                )

        register_detector(DetectorInfo("nulltest", NullSpec, NullDetector, "noop"))
        try:
            assert "nulltest" in available_detectors()
            assert detector_info("nulltest").description == "noop"
            with pytest.raises(DetectionError, match="already registered"):
                register_detector(
                    DetectorInfo("nulltest", NullSpec, NullDetector, "noop")
                )
        finally:
            from repro.detectors.registry import _REGISTRY

            _REGISTRY.pop("nulltest", None)

    def test_malformed_specs_rejected(self):
        for bad in ("fraudar:n_blocks", "fraudar:=3", "spoken:components=3,components=4"):
            with pytest.raises(DetectionError):
                parse_detector_spec(bad)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(DetectionError, match="unknown parameter"):
            parse_detector_spec("degree:bogus=1")

    def test_bad_types_rejected(self):
        with pytest.raises(DetectionError, match="not a valid int"):
            parse_detector_spec("fraudar:n_blocks=three")
        with pytest.raises(DetectionError, match="not a boolean"):
            parse_detector_spec("degree:weighted=maybe")

    def test_stripe_with_non_stable_sampler_rejected(self):
        # regression: an explicit stripe must never be silently dropped
        with pytest.raises(DetectionError, match="stable edge sampler"):
            make_detector("ensemfdet:sampler=res,stripe=8", CONTEXT)


def _assert_detection_equal(a, b):
    assert a.spec == b.spec
    np.testing.assert_array_equal(a.user_labels, b.user_labels)
    np.testing.assert_array_equal(a.user_scores, b.user_scores)
    assert (a.ranked_users is None) == (b.ranked_users is None)
    if a.ranked_users is not None:
        np.testing.assert_array_equal(a.ranked_users, b.ranked_users)
    assert (a.operating_points is None) == (b.operating_points is None)
    if a.operating_points is not None:
        assert len(a.operating_points) == len(b.operating_points)
        for (ta, la), (tb, lb) in zip(a.operating_points, b.operating_points):
            assert ta == tb
            np.testing.assert_array_equal(la, lb)
    np.testing.assert_array_equal(a.ranking(), b.ranking())


class TestDeterminism:
    @pytest.mark.parametrize("spec", DETERMINISTIC_SPECS)
    def test_two_runs_bitwise_identical(self, graph, spec):
        first = make_detector(spec, CONTEXT).fit(graph)
        second = make_detector(spec, CONTEXT).fit(graph)
        assert first.spec == canonical_detector_spec(spec)
        _assert_detection_equal(first, second)

    def test_context_seed_changes_ensemble(self, graph):
        a = make_detector("ensemfdet:n=6,ratio=0.5", CONTEXT).fit(graph)
        b = make_detector(
            "ensemfdet:n=6,ratio=0.5",
            DetectorContext(seed=99, n_samples=4, sample_ratio=0.5, stripe=32, max_blocks=4),
        ).fit(graph)
        assert not np.array_equal(a.user_scores, b.user_scores)

    def test_spec_seed_overrides_context(self, graph):
        via_spec = make_detector("ensemfdet:n=6,ratio=0.5,seed=7", CONTEXT).fit(graph)
        via_context = make_detector(
            "ensemfdet:n=6,ratio=0.5",
            DetectorContext(seed=7, n_samples=4, sample_ratio=0.5, stripe=32, max_blocks=4),
        ).fit(graph)
        np.testing.assert_array_equal(via_spec.user_scores, via_context.user_scores)


class TestSplitDetectorSpecs:
    def test_plain_names(self):
        assert split_detector_specs("ensemfdet,incremental") == [
            "ensemfdet", "incremental"
        ]

    def test_params_stay_attached(self):
        assert split_detector_specs("ensemfdet:n=8,sampler=ses,degree") == [
            "ensemfdet:n=8,sampler=ses", "degree"
        ]

    def test_mixed_parameterised_specs(self):
        assert split_detector_specs(
            "degree:weighted=1,fraudar:n_blocks=3,min_block_edges=2,spoken"
        ) == ["degree:weighted=1", "fraudar:n_blocks=3,min_block_edges=2", "spoken"]

    def test_blank_segments_dropped(self):
        assert split_detector_specs(" ensemfdet , ,degree ") == ["ensemfdet", "degree"]

    def test_comma_for_colon_typo_recovers(self):
        # 'degree,weighted=1' can only mean 'degree:weighted=1' — a bare
        # name followed by a parameter starts its parameter list
        assert split_detector_specs("degree,weighted=1") == ["degree:weighted=1"]
        assert split_detector_specs("ensemfdet,n=8,sampler=ses,degree") == [
            "ensemfdet:n=8,sampler=ses", "degree"
        ]
