"""Behavioural tests for the Detection result type and the adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import toy_dataset
from repro.detectors import (
    Detection,
    Detector,
    DetectorContext,
    StreamingDetector,
    make_detector,
)
from repro.ensemble import EnsemFDet
from repro.metrics import detection_curve, evaluate_detection

CONTEXT = DetectorContext(seed=0, n_samples=6, sample_ratio=0.5, stripe=32, max_blocks=5)


@pytest.fixture(scope="module")
def dataset():
    return toy_dataset()


@pytest.fixture(scope="module")
def detections(dataset):
    """One fitted Detection per registered detector family."""
    return {
        spec: make_detector(spec, CONTEXT).fit(dataset.graph)
        for spec in ("ensemfdet", "incremental", "fdet", "fraudar", "spoken", "fbox", "degree")
    }


class TestDetectionShape:
    def test_scores_parallel_to_labels(self, dataset, detections):
        for spec, detection in detections.items():
            assert detection.spec == spec
            assert detection.user_labels.shape == detection.user_scores.shape
            assert detection.n_users == dataset.graph.n_users
            assert detection.seconds >= 0.0

    def test_protocol_conformance(self):
        for spec in ("ensemfdet", "fraudar", "degree"):
            assert isinstance(make_detector(spec, CONTEXT), Detector)
        assert isinstance(make_detector("incremental", CONTEXT), StreamingDetector)

    def test_ranking_is_a_permutation_prefix(self, dataset, detections):
        labels = set(dataset.graph.user_labels.tolist())
        for detection in detections.values():
            ranking = detection.ranking().tolist()
            assert len(ranking) == len(set(ranking))  # no duplicates
            assert set(ranking) <= labels

    def test_ranking_respects_scores(self, detections):
        for detection in detections.values():
            ranked_scores = [detection.score_of(label) for label in detection.ranking()]
            assert ranked_scores == sorted(ranked_scores, reverse=True)

    def test_top_users_prefix(self, detections):
        detection = detections["degree"]
        np.testing.assert_array_equal(detection.top_users(5), detection.ranking()[:5])

    def test_score_of_unknown_label(self, detections):
        assert detections["degree"].score_of(10**9) == 0.0


class TestTopKDeterminism:
    """Regression: ``--top K`` must clamp K and break ties deterministically.

    ``top_users`` used to slice with an unclamped negative K (returning the
    ranking minus its tail), and the score-fallback ranking broke ties by
    label value — out of step with the DegreeDetector / serving-layer
    ``(-score, node index)`` convention.
    """

    def _detection(self, labels, scores):
        return Detection(
            spec="test",
            user_labels=np.asarray(labels, dtype=np.int64),
            user_scores=np.asarray(scores, dtype=np.float64),
        )

    def test_k_zero_is_empty(self, detections):
        for detection in detections.values():
            assert detection.top_users(0).size == 0

    def test_k_equal_n_is_full_ranking(self, detections):
        for detection in detections.values():
            full = detection.ranking()
            np.testing.assert_array_equal(detection.top_users(full.size), full)

    def test_k_beyond_n_is_clamped(self, detections):
        for detection in detections.values():
            full = detection.ranking()
            np.testing.assert_array_equal(detection.top_users(full.size + 1000), full)

    def test_negative_k_is_empty(self, detections):
        for detection in detections.values():
            assert detection.top_users(-3).size == 0

    def test_all_ties_rank_by_node_index(self):
        # labels deliberately unsorted: index order, not label order, wins
        detection = self._detection([9, 2, 7, 4], [1.0, 1.0, 1.0, 1.0])
        np.testing.assert_array_equal(detection.ranking(), [9, 2, 7, 4])
        np.testing.assert_array_equal(detection.top_users(2), [9, 2])

    def test_partial_ties_break_by_node_index_within_score(self):
        detection = self._detection([5, 3, 8, 1], [2.0, 5.0, 2.0, 5.0])
        np.testing.assert_array_equal(detection.ranking(), [3, 1, 5, 8])

    def test_matches_degree_detector_convention(self, dataset):
        from repro.baselines import DegreeDetector

        detection = make_detector("degree", CONTEXT).fit(dataset.graph)
        n = dataset.graph.n_users
        # the baseline returns local indices; the adapter returns labels
        expected = dataset.graph.user_labels[DegreeDetector().top_users(dataset.graph, n)]
        np.testing.assert_array_equal(detection.top_users(n), expected)


class TestEnsembleAdapter:
    def test_threshold_sweep_matches_majority_vote(self, dataset, detections):
        """The single-pass sweep must reproduce majority_vote bit for bit."""
        from repro.ensemble import EnsemFDet, majority_vote

        table = EnsemFDet(
            make_detector("ensemfdet", CONTEXT).config
        ).fit(dataset.graph).vote_table
        for threshold, labels in detections["ensemfdet"].operating_points:
            np.testing.assert_array_equal(
                labels, majority_vote(table, int(threshold)).user_labels
            )

    def test_votes_match_direct_fit(self, dataset, detections):
        """The adapter's scores are exactly EnsemFDet's vote counts."""
        direct = EnsemFDet(
            make_detector("ensemfdet", CONTEXT).config
        ).fit(dataset.graph)
        detection = detections["ensemfdet"]
        for label, votes in direct.vote_table.user_votes.items():
            assert detection.score_of(label) == votes

    def test_operating_points_sweep_all_thresholds(self, detections):
        points = detections["ensemfdet"].operating_points
        assert [threshold for threshold, _ in points] == [
            float(t) for t in range(1, CONTEXT.n_samples + 1)
        ]
        sizes = [labels.size for _, labels in points]
        assert sizes == sorted(sizes, reverse=True)

    def test_cold_and_incremental_fit_identical(self, detections):
        cold, warm = detections["ensemfdet"], detections["incremental"]
        np.testing.assert_array_equal(cold.user_scores, warm.user_scores)
        np.testing.assert_array_equal(cold.ranking(), warm.ranking())


class TestBlockAdapters:
    @pytest.mark.parametrize("spec", ["fdet", "fraudar"])
    def test_operating_points_are_cumulative_unions(self, detections, spec):
        detection = detections[spec]
        assert detection.blocks
        previous: set[int] = set()
        for threshold, labels in detection.operating_points:
            current = set(labels.tolist())
            assert previous <= current
            previous = current
        assert threshold == float(len(detection.blocks))

    def test_extraction_order_ranking(self, detections):
        detection = detections["fraudar"]
        first_block = detection.blocks[0]
        ranking = detection.ranking()
        np.testing.assert_array_equal(
            np.sort(ranking[: first_block.n_users]), first_block.user_labels
        )

    def test_fdet_meta_records_truncation(self, detections):
        meta = detections["fdet"].meta
        assert meta["k_hat"] == len(detections["fdet"].blocks)
        assert meta["n_blocks_extracted"] >= meta["k_hat"]


class TestScoreAdapters:
    def test_score_detectors_have_no_operating_points(self, detections):
        for spec in ("spoken", "fbox", "degree"):
            assert detections[spec].operating_points is None
            assert detections[spec].ranked_users is None

    def test_degree_scores_are_degrees(self, dataset, detections):
        np.testing.assert_array_equal(
            detections["degree"].user_scores,
            dataset.graph.user_degrees().astype(np.float64),
        )

    def test_spoken_scores_merchants_too(self, detections):
        assert detections["spoken"].merchant_scores is not None
        assert detections["spoken"].merchant_scores.shape == (
            detections["spoken"].merchant_labels.shape
        )

    def test_svd_meta_reports_clamped_rank(self):
        """On a graph smaller than the configured rank, meta must record
        what actually ran, not the configured number."""
        from repro.graph import BipartiteGraph

        graph = BipartiteGraph.from_edges(
            [(u, v) for u in range(4) for v in range(3)], n_users=4, n_merchants=3
        )
        for spec in ("spoken:components=25", "fbox:components=25,min_degree=1"):
            detection = make_detector(spec, CONTEXT).fit(graph)
            assert detection.meta["n_components"] == 2


class TestEvaluateDetection:
    def test_every_family_evaluates(self, dataset, detections):
        for detection in detections.values():
            metrics = evaluate_detection(detection, dataset.blacklist, k=10)
            for key in ("best_f1", "precision", "recall", "auc_pr", "precision_at_k"):
                assert 0.0 <= metrics[key] <= 1.0
            assert metrics["n_detected"] >= 0

    def test_integer_thresholds_stay_ints(self, dataset, detections):
        metrics = evaluate_detection(detections["ensemfdet"], dataset.blacklist)
        assert isinstance(metrics["best_threshold"], int)

    def test_perfect_synthetic_detection(self, dataset):
        truth = np.sort(dataset.clean_fraud_labels)
        labels = dataset.graph.user_labels
        detection = Detection(
            spec="oracle",
            user_labels=labels,
            user_scores=np.isin(labels, truth).astype(np.float64),
        )
        metrics = evaluate_detection(detection, dataset.blacklist, k=truth.size)
        assert metrics["best_f1"] == 1.0
        assert metrics["precision_at_k"] == 1.0

    def test_curve_max_points_caps_length(self, dataset, detections):
        full = detection_curve(detections["ensemfdet"], dataset.blacklist)
        capped = detection_curve(detections["ensemfdet"], dataset.blacklist, max_points=3)
        assert len(full) == CONTEXT.n_samples
        assert len(capped) <= 3

    def test_score_curve_path(self, dataset, detections):
        curve = detection_curve(detections["degree"], dataset.blacklist, max_points=10)
        assert 0 < len(curve) <= 10
