"""Unit tests for JD-like datasets, stats rows and persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    JD_CONFIGS,
    dataset_row,
    datasets_table,
    load_dataset,
    make_all_jd_datasets,
    make_jd_dataset,
    save_dataset,
    toy_dataset,
)
from repro.errors import DatasetError


SCALE = 0.08  # tiny but structurally faithful


class TestMakeJdDataset:
    def test_invalid_index(self):
        with pytest.raises(DatasetError):
            make_jd_dataset(4)

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            make_jd_dataset(1, scale=0.0)

    def test_sizes_track_config_ratios(self):
        dataset = make_jd_dataset(1, scale=SCALE, seed=0)
        config = JD_CONFIGS[1]
        # fraud users and merchants are appended on top of the background
        assert dataset.graph.n_users >= int(config.n_users * SCALE)
        assert dataset.graph.n_edges >= int(config.n_edges * SCALE)

    def test_reproducible(self):
        a = make_jd_dataset(2, scale=SCALE, seed=5)
        b = make_jd_dataset(2, scale=SCALE, seed=5)
        assert a.graph == b.graph
        assert a.blacklist == b.blacklist

    def test_different_indices_differ(self):
        a = make_jd_dataset(1, scale=SCALE, seed=0)
        b = make_jd_dataset(2, scale=SCALE, seed=0)
        assert a.graph.n_users != b.graph.n_users

    def test_blacklist_overlaps_planted_fraud(self):
        dataset = make_jd_dataset(1, scale=0.2, seed=0)
        planted = set(dataset.clean_fraud_labels.tolist())
        listed = set(dataset.blacklist.labels)
        # noise drops ~30% and adds ~45%, so overlap is large but partial
        overlap = len(planted & listed) / len(planted)
        assert 0.5 <= overlap <= 0.95

    def test_fraud_users_have_high_degree(self):
        dataset = make_jd_dataset(1, scale=0.2, seed=0)
        degrees = dataset.graph.user_degrees()
        fraud_mean = degrees[dataset.clean_fraud_labels].mean()
        assert fraud_mean > degrees.mean() * 2

    def test_name_encodes_scale(self):
        assert make_jd_dataset(1, scale=1.0, seed=0).name == "jd1"
        assert "@" in make_jd_dataset(1, scale=0.5, seed=0).name

    def test_params_provenance(self):
        dataset = make_jd_dataset(3, scale=SCALE, seed=7)
        assert dataset.params["index"] == 3
        assert dataset.params["seed"] == 7
        assert dataset.params["n_fraud_planted"] == dataset.clean_fraud_labels.size

    def test_make_all(self):
        datasets = make_all_jd_datasets(scale=SCALE, seed=0)
        assert [d.params["index"] for d in datasets] == [1, 2, 3]


class TestStatsRows:
    def test_dataset_row_layout(self):
        dataset = make_jd_dataset(1, scale=SCALE, seed=0)
        row = dataset_row(dataset)
        assert set(row) == {"dataset", "node_pin", "fraud_pin", "node_merchant", "edge"}
        assert row["node_pin"] == dataset.graph.n_users

    def test_datasets_table(self):
        datasets = make_all_jd_datasets(scale=SCALE, seed=0)
        table = datasets_table(datasets)
        assert len(table) == 3


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        dataset = make_jd_dataset(1, scale=SCALE, seed=0)
        save_dataset(dataset, tmp_path / "jd1")
        loaded = load_dataset(tmp_path / "jd1")
        assert loaded.name == dataset.name
        assert loaded.graph == dataset.graph
        assert loaded.blacklist == dataset.blacklist
        assert np.array_equal(loaded.clean_fraud_labels, dataset.clean_fraud_labels)

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "nope")


class TestToyDataset:
    def test_deterministic(self):
        assert toy_dataset(0).graph == toy_dataset(0).graph

    def test_has_planted_fraud(self, toy):
        assert toy.clean_fraud_labels.size == 55
        assert len(toy.blacklist) == 55  # clean labels: no noise

    def test_fraud_blocks_denser_than_background(self, toy):
        degrees = toy.graph.user_degrees()
        fraud_mean = degrees[toy.clean_fraud_labels].mean()
        assert fraud_mean > 2 * degrees.mean()
