"""Unit tests for fraud injection and the blacklist ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    Blacklist,
    FraudBlockSpec,
    inject_fraud_blocks,
    uniform_bipartite,
)
from repro.errors import DatasetError


class TestFraudBlockSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0, "n_merchants": 5},
            {"n_users": 5, "n_merchants": 0},
            {"n_users": 5, "n_merchants": 5, "density": 0.0},
            {"n_users": 5, "n_merchants": 5, "density": 1.5},
            {"n_users": 5, "n_merchants": 5, "reuse_merchant_fraction": -0.1},
            {"n_users": 5, "n_merchants": 5, "camouflage_per_user": -1},
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(DatasetError):
            FraudBlockSpec(**kwargs)

    def test_block_wider_than_item_universe_fails_fast(self):
        """Regression: absurdly wide blocks used to pass validation and only
        die deep inside edge generation on the Bernoulli-mask allocation;
        now ``__post_init__`` rejects them with a clear error."""
        with pytest.raises(DatasetError, match="wider than the supported item universe"):
            FraudBlockSpec(n_users=2**16, n_merchants=2**16)

    def test_max_cells_boundary_accepted(self):
        from repro.datasets.injection import MAX_BLOCK_CELLS

        spec = FraudBlockSpec(n_users=1, n_merchants=MAX_BLOCK_CELLS)
        assert spec.n_merchants == MAX_BLOCK_CELLS
        with pytest.raises(DatasetError):
            FraudBlockSpec(n_users=2, n_merchants=MAX_BLOCK_CELLS)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 2.0, "n_merchants": 5},
            {"n_users": 5, "n_merchants": "6"},
            {"n_users": True, "n_merchants": 5},
            {"n_users": 5, "n_merchants": 5, "camouflage_per_user": 1.5},
        ],
    )
    def test_non_integer_sizes_rejected(self, kwargs):
        with pytest.raises(DatasetError, match="must be an integer"):
            FraudBlockSpec(**kwargs)

    def test_numpy_integer_sizes_accepted(self):
        spec = FraudBlockSpec(n_users=np.int64(4), n_merchants=np.int32(3))
        assert spec.n_users == 4 and spec.n_merchants == 3


class TestInjection:
    def test_new_users_appended(self, rng):
        background = uniform_bipartite(50, 30, 100, rng=rng)
        result = inject_fraud_blocks(
            background, [FraudBlockSpec(10, 4, density=0.5)], rng
        )
        assert result.graph.n_users == 60
        assert np.all(result.fraud_user_labels >= 50)

    def test_every_fraud_user_buys_something(self, rng):
        background = uniform_bipartite(50, 30, 100, rng=rng)
        result = inject_fraud_blocks(
            background, [FraudBlockSpec(12, 3, density=0.05)], rng
        )
        degrees = result.graph.user_degrees()
        assert np.all(degrees[result.fraud_user_labels] >= 1)

    def test_merchant_reuse_zero_creates_all_new(self, rng):
        background = uniform_bipartite(50, 30, 100, rng=rng)
        result = inject_fraud_blocks(
            background,
            [FraudBlockSpec(5, 4, density=0.8, reuse_merchant_fraction=0.0)],
            rng,
        )
        assert result.graph.n_merchants == 34
        assert np.all(result.fraud_merchant_labels >= 30)

    def test_merchant_reuse_one_creates_none(self, rng):
        background = uniform_bipartite(50, 30, 100, rng=rng)
        result = inject_fraud_blocks(
            background,
            [FraudBlockSpec(5, 4, density=0.8, reuse_merchant_fraction=1.0)],
            rng,
        )
        assert result.graph.n_merchants == 30

    def test_camouflage_adds_edges_to_background_merchants(self, rng):
        background = uniform_bipartite(50, 30, 100, rng=rng)
        plain = inject_fraud_blocks(
            background,
            [FraudBlockSpec(8, 3, density=1.0, reuse_merchant_fraction=0.0)],
            np.random.default_rng(0),
        )
        camo = inject_fraud_blocks(
            background,
            [
                FraudBlockSpec(
                    8, 3, density=1.0, reuse_merchant_fraction=0.0, camouflage_per_user=2
                )
            ],
            np.random.default_rng(0),
        )
        assert camo.graph.n_edges == plain.graph.n_edges + 16

    def test_multiple_blocks_tracked_separately(self, rng):
        background = uniform_bipartite(50, 30, 100, rng=rng)
        result = inject_fraud_blocks(
            background,
            [FraudBlockSpec(5, 2, density=0.9), FraudBlockSpec(7, 3, density=0.9)],
            rng,
        )
        assert len(result.block_user_labels) == 2
        assert result.fraud_user_labels.size == 12
        assert result.block_user_labels[0].size == 5

    def test_no_blocks_is_identity(self, rng):
        background = uniform_bipartite(20, 10, 30, rng=rng)
        result = inject_fraud_blocks(background, [], rng)
        assert result.graph is background
        assert len(result.blacklist) == 0

    def test_blacklist_matches_fraud_users(self, rng):
        background = uniform_bipartite(50, 30, 100, rng=rng)
        result = inject_fraud_blocks(background, [FraudBlockSpec(6, 3, density=0.7)], rng)
        assert result.blacklist.labels == frozenset(result.fraud_user_labels.tolist())


class TestBlacklist:
    def test_basic_set_semantics(self):
        blacklist = Blacklist([3, 1, 2, 3])
        assert len(blacklist) == 3
        assert 2 in blacklist
        assert 99 not in blacklist
        assert blacklist.as_array().tolist() == [1, 2, 3]

    def test_mask(self):
        blacklist = Blacklist([1, 3])
        mask = blacklist.mask(np.array([0, 1, 2, 3]))
        assert mask.tolist() == [False, True, False, True]

    def test_equality_and_hash(self):
        assert Blacklist([1, 2]) == Blacklist([2, 1])
        assert hash(Blacklist([1])) == hash(Blacklist([1]))

    def test_noise_drop(self, rng):
        blacklist = Blacklist(range(200))
        noisy = blacklist.with_noise(
            np.arange(1000), drop_fraction=0.5, add_fraction=0.0, rng=rng
        )
        assert 40 <= len(noisy) <= 160  # ~binomial(200, 0.5)
        assert noisy.labels <= blacklist.labels

    def test_noise_add_draws_from_normals(self, rng):
        blacklist = Blacklist(range(100))
        noisy = blacklist.with_noise(
            np.arange(1000), drop_fraction=0.0, add_fraction=0.5, rng=rng
        )
        assert len(noisy) == 150
        added = noisy.labels - blacklist.labels
        assert all(label >= 100 for label in added)

    def test_noise_validation(self, rng):
        blacklist = Blacklist([1])
        with pytest.raises(DatasetError):
            blacklist.with_noise(np.arange(10), drop_fraction=1.0, rng=rng)
        with pytest.raises(DatasetError):
            blacklist.with_noise(np.arange(10), add_fraction=-0.5, rng=rng)

    def test_save_load_roundtrip(self, tmp_path):
        blacklist = Blacklist([5, 2, 9])
        path = tmp_path / "blacklist.json"
        blacklist.save(path)
        assert Blacklist.load(path) == blacklist

    def test_load_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(DatasetError):
            Blacklist.load(path)
