"""Chunked synthetic emitters and the streaming store writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    chung_lu_edge_chunks,
    uniform_edge_chunks,
    write_store,
)
from repro.errors import DatasetError
from repro.graph import GraphStore, read_file_layout


class TestEmitters:
    @pytest.mark.parametrize("emit", [uniform_edge_chunks, chung_lu_edge_chunks])
    def test_chunks_cover_exact_edge_count(self, emit):
        chunks = list(emit(100, 40, 2500, rng=0, chunk=512))
        assert sum(c[0].size for c in chunks) == 2500
        assert all(c[0].size == c[1].size for c in chunks)
        # all but the last chunk are full
        assert [c[0].size for c in chunks[:-1]] == [512] * (len(chunks) - 1)

    @pytest.mark.parametrize("emit", [uniform_edge_chunks, chung_lu_edge_chunks])
    def test_endpoints_in_range(self, emit):
        for users, merchants, weights in emit(64, 16, 5000, rng=1, chunk=1024):
            assert users.min() >= 0 and users.max() < 64
            assert merchants.min() >= 0 and merchants.max() < 16
            assert weights is None

    def test_deterministic_for_seed(self):
        a = list(chung_lu_edge_chunks(100, 50, 3000, rng=3, chunk=700, weighted=True))
        b = list(chung_lu_edge_chunks(100, 50, 3000, rng=3, chunk=700, weighted=True))
        for (ua, ma, wa), (ub, mb, wb) in zip(a, b):
            assert np.array_equal(ua, ub)
            assert np.array_equal(ma, mb)
            assert np.array_equal(wa, wb)

    def test_weights_are_float32_exact(self):
        for _, _, weights in uniform_edge_chunks(
            10, 10, 2000, rng=2, chunk=512, weighted=True
        ):
            assert np.array_equal(weights.astype(np.float32).astype(np.float64), weights)

    def test_rejects_bad_sizes(self):
        with pytest.raises(DatasetError):
            next(uniform_edge_chunks(0, 10, 100))
        with pytest.raises(DatasetError):
            next(uniform_edge_chunks(10, 10, -1))
        with pytest.raises(DatasetError):
            next(uniform_edge_chunks(10, 10, 100, chunk=0))

    def test_zero_edges_yields_nothing(self):
        assert list(uniform_edge_chunks(5, 5, 0)) == []


class TestWriteStore:
    def test_writes_compact_openable_store(self, tmp_path):
        path = tmp_path / "s.store"
        layout = write_store(path, 5_000, 800, 40_000, rng=6, chunk=1 << 12, weighted=True)
        assert layout.id_dtype == "int32"
        assert layout.weight_dtype == "float32"
        assert read_file_layout(path).n_edges == 40_000
        store = GraphStore.open(path, mmap=True)
        assert store.n_edges == 40_000
        assert int(store.edge_users.max()) < 5_000
        assert store.edge_weights.dtype == np.float32

    def test_uniform_kind(self, tmp_path):
        path = tmp_path / "u.store"
        write_store(path, 100, 50, 1_000, kind="uniform", rng=0)
        assert GraphStore.open(path).n_edges == 1_000

    def test_rejects_unknown_kind(self, tmp_path):
        with pytest.raises(DatasetError, match="unknown stream emitter"):
            write_store(tmp_path / "x.store", 10, 10, 10, kind="zipf")

    def test_matches_emitter_output(self, tmp_path):
        path = tmp_path / "m.store"
        write_store(path, 200, 80, 5_000, rng=9, chunk=512)
        users = np.concatenate(
            [c[0] for c in chung_lu_edge_chunks(200, 80, 5_000, rng=9, chunk=512)]
        )
        store = GraphStore.open(path)
        assert np.array_equal(np.asarray(store.edge_users, dtype=np.int64), users)
