"""Unit tests for synthetic background generators."""

from __future__ import annotations

import pytest

from repro.datasets import chung_lu_bipartite, powerlaw_weights, uniform_bipartite
from repro.errors import DatasetError
from repro.graph import degree_gini, has_duplicate_edges


class TestPowerlawWeights:
    def test_bounds(self, rng):
        weights = powerlaw_weights(1000, exponent=2.0, rng=rng, w_min=1.0, w_max=50.0)
        assert weights.min() >= 1.0
        assert weights.max() <= 50.0

    def test_empty(self, rng):
        assert powerlaw_weights(0, 2.0, rng).size == 0

    def test_invalid_exponent(self, rng):
        with pytest.raises(DatasetError):
            powerlaw_weights(10, 0.0, rng)

    def test_heavier_tail_for_smaller_exponent(self, rng):
        light = powerlaw_weights(5000, exponent=3.0, rng=rng)
        heavy = powerlaw_weights(5000, exponent=1.3, rng=rng)
        assert heavy.max() / heavy.mean() > light.max() / light.mean()


class TestChungLu:
    def test_sizes(self, rng):
        graph = chung_lu_bipartite(300, 100, 900, rng=rng)
        assert graph.n_users == 300
        assert graph.n_merchants == 100
        # dedup removes a few collisions but stays close to target
        assert 700 <= graph.n_edges <= 900

    def test_no_duplicate_edges_after_dedup(self, rng):
        graph = chung_lu_bipartite(100, 50, 600, rng=rng)
        assert not has_duplicate_edges(graph)

    def test_duplicates_kept_when_requested(self, rng):
        graph = chung_lu_bipartite(20, 10, 500, rng=rng, deduplicate=False)
        assert graph.n_edges == 500

    def test_heavy_tail_realised(self, rng):
        graph = chung_lu_bipartite(2000, 800, 6000, rng=rng)
        assert degree_gini(graph.merchant_degrees()) > 0.3

    def test_invalid_sizes(self, rng):
        with pytest.raises(DatasetError):
            chung_lu_bipartite(0, 10, 5, rng=rng)
        with pytest.raises(DatasetError):
            chung_lu_bipartite(10, 10, -1, rng=rng)

    def test_seeded_reproducibility(self):
        a = chung_lu_bipartite(100, 40, 300, rng=9)
        b = chung_lu_bipartite(100, 40, 300, rng=9)
        assert a == b


class TestUniform:
    def test_sizes(self, rng):
        graph = uniform_bipartite(100, 50, 200, rng=rng)
        assert graph.n_users == 100
        assert graph.n_edges <= 200

    def test_flat_degrees(self, rng):
        graph = uniform_bipartite(2000, 1000, 6000, rng=rng)
        assert degree_gini(graph.user_degrees()) < 0.45

    def test_invalid(self, rng):
        with pytest.raises(DatasetError):
            uniform_bipartite(0, 5, 10, rng=rng)
