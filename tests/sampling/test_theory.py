"""Tests of the Lemma-1 / Theorem-1 helpers, including empirical checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import chung_lu_bipartite
from repro.errors import SamplingError
from repro.fdet import LogWeightedDensity
from repro.sampling import (
    RandomEdgeSampler,
    epsilon_approximation_holds,
    expected_sampled_degree_counts_es,
    expected_sampled_degree_counts_ns,
    lemma1_crossover_degree,
    theorem1_edge_probability,
)


class TestLemma1Formulas:
    def test_ns_expectation_linear_in_p(self):
        degrees = np.array([1, 1, 2, 3])
        expected = expected_sampled_degree_counts_ns(degrees, 0.5)
        assert expected == {1: 1.0, 2: 0.5, 3: 0.5}

    def test_es_expectation_formula(self):
        degrees = np.array([1, 2])
        expected = expected_sampled_degree_counts_es(degrees, 0.5)
        assert expected[1] == pytest.approx(0.5)
        assert expected[2] == pytest.approx(0.75)  # 1 - 0.25

    def test_es_exceeds_ns_above_crossover(self):
        p_v, p_e = 0.3, 0.3
        crossover = lemma1_crossover_degree(p_v, p_e)
        degrees = np.arange(1, 30)
        ns = expected_sampled_degree_counts_ns(degrees, p_v)
        es = expected_sampled_degree_counts_es(degrees, p_e)
        for q in degrees.tolist():
            if q > crossover:
                assert es[q] > ns[q], f"degree {q} should favour edge sampling"

    def test_crossover_equals_one_for_equal_probs(self):
        # log(1-p)/log(1-p) == 1: edge sampling wins for every degree > 1
        assert lemma1_crossover_degree(0.2, 0.2) == pytest.approx(1.0)

    def test_bad_probabilities_rejected(self):
        degrees = np.array([1])
        with pytest.raises(SamplingError):
            expected_sampled_degree_counts_ns(degrees, 1.2)
        with pytest.raises(SamplingError):
            expected_sampled_degree_counts_es(degrees, -0.1)
        with pytest.raises(SamplingError):
            lemma1_crossover_degree(0.0, 0.5)

    def test_empirical_es_bias_toward_high_degree(self):
        """Edge sampling selects high-degree nodes more often than node sampling."""
        graph = chung_lu_bipartite(400, 200, 1200, rng=5)
        degrees = graph.user_degrees()
        high = np.nonzero(degrees >= 6)[0]
        if high.size == 0:
            pytest.skip("generator produced no high-degree users at this seed")
        ratio = 0.2
        hits = 0
        trials = 30
        sampler = RandomEdgeSampler(ratio)
        for seed in range(trials):
            sub = sampler.sample(graph, seed)
            sampled_users = set(sub.user_labels.tolist())
            hits += sum(1 for u in high.tolist() if u in sampled_users)
        es_rate = hits / (trials * high.size)
        # node sampling would include them at exactly `ratio`
        assert es_rate > ratio * 1.5


class TestTheorem1:
    def test_probability_clipped_to_one(self, tiny_graph):
        assert theorem1_edge_probability(tiny_graph, epsilon=0.01) == 1.0

    def test_probability_decreases_with_epsilon(self):
        graph = chung_lu_bipartite(2000, 800, 8000, rng=2)
        p_tight = theorem1_edge_probability(graph, epsilon=10.0)
        p_loose = theorem1_edge_probability(graph, epsilon=20.0)
        assert p_loose <= p_tight

    def test_bad_epsilon_rejected(self, tiny_graph):
        with pytest.raises(SamplingError):
            theorem1_edge_probability(tiny_graph, epsilon=0.0)

    def test_sandwich_check(self):
        assert epsilon_approximation_holds(1.0, 1.05, epsilon=0.1)
        assert not epsilon_approximation_holds(1.0, 2.0, epsilon=0.1)
        assert epsilon_approximation_holds(0.0, 0.0, epsilon=0.5)
        assert not epsilon_approximation_holds(1.0, 0.0, epsilon=0.5)
        with pytest.raises(SamplingError):
            epsilon_approximation_holds(1.0, 1.0, epsilon=0.0)

    def test_reweighted_sampling_approximates_density(self):
        """Empirical Theorem 1: re-weighted RES density ≈ original density.

        Uses the average-degree flavour of the argument: total edge weight is
        an unbiased estimator under 1/p re-weighting, so the density of the
        sample (over its node set) lands near the original for dense graphs.
        """
        graph = chung_lu_bipartite(300, 150, 4000, rng=3, deduplicate=False)
        metric = LogWeightedDensity()
        original = metric.density(graph)
        estimates = []
        for seed in range(12):
            sub = RandomEdgeSampler(0.5, reweight=True).sample(graph, seed)
            # evaluate with the original graph's degree scale by mapping labels
            estimates.append(metric.density(sub, graph.merchant_degrees()[sub.merchant_labels]))
        mean = float(np.mean(estimates))
        assert mean == pytest.approx(original, rel=0.35)


class TestRegistry:
    def test_all_names_construct(self):
        from repro.sampling import available_samplers, make_sampler

        for name in available_samplers():
            sampler = make_sampler(name, 0.5)
            assert sampler.ratio == 0.5

    def test_paper_names_present(self):
        from repro.sampling import PAPER_FIG5_NAMES, make_sampler

        for name in PAPER_FIG5_NAMES:
            make_sampler(name, 0.25)

    def test_unknown_name_rejected(self):
        from repro.sampling import make_sampler

        with pytest.raises(SamplingError, match="unknown sampler"):
            make_sampler("definitely-not-a-sampler", 0.5)

    def test_repetition_rate(self):
        from repro.sampling import RandomEdgeSampler

        assert RandomEdgeSampler(0.1).repetition_rate(80) == pytest.approx(8.0)
