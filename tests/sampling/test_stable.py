"""StableEdgeSampler: determinism, prefix stability, sampling behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import uniform_bipartite
from repro.errors import SamplingError
from repro.graph import GraphAccumulator
from repro.sampling import StableEdgeSampler, make_sampler


@pytest.fixture
def medium_graph():
    return uniform_bipartite(300, 150, 4000, rng=0)


class TestDeterminism:
    def test_same_seed_same_samples(self, medium_graph):
        sampler = StableEdgeSampler(0.2, stripe=32)
        first = sampler.sample_many(medium_graph, 10, 42)
        second = sampler.sample_many(medium_graph, 10, 42)
        assert all(a == b for a, b in zip(first, second))

    def test_different_seed_differs(self, medium_graph):
        sampler = StableEdgeSampler(0.2, stripe=32)
        first = sampler.sample_many(medium_graph, 10, 1)
        second = sampler.sample_many(medium_graph, 10, 2)
        assert any(a != b for a, b in zip(first, second))

    def test_single_sample_is_member_zero(self, medium_graph):
        sampler = StableEdgeSampler(0.3, stripe=16)
        assert sampler.sample(medium_graph, 5) == sampler.sample_many(medium_graph, 3, 5)[0]


class TestPrefixStability:
    def test_appending_edges_preserves_membership(self, medium_graph):
        sampler = StableEdgeSampler(0.25, stripe=64)
        key = sampler.derive_key(9)
        acc = GraphAccumulator.from_graph(medium_graph)
        rng = np.random.default_rng(0)
        acc.append(rng.integers(0, 300, 500), rng.integers(0, 150, 500))
        grown = acc.graph()
        for index in range(6):
            old = sampler.edge_mask(medium_graph.n_edges, key, index)
            new = sampler.edge_mask(grown.n_edges, key, index)
            assert np.array_equal(new[: medium_graph.n_edges], old)

    def test_stripe_row_matches_inclusion_matrix(self):
        sampler = StableEdgeSampler(0.3, stripe=16)
        key = sampler.derive_key(21)
        matrix = sampler.stripe_inclusion(50, 8, key)
        for index in range(8):
            assert np.array_equal(sampler.stripe_row(50, index, key), matrix[index])

    def test_delta_in_one_stripe_hits_few_members(self, medium_graph):
        sampler = StableEdgeSampler(0.1, stripe=4096)  # graph fits in one stripe
        key = sampler.derive_key(3)
        n_samples = 40
        inclusion = sampler.stripe_inclusion(
            sampler.n_stripes(medium_graph.n_edges + 10), n_samples, key
        )
        delta_stripe = medium_graph.n_edges // sampler.stripe
        hit = int(inclusion[:, delta_stripe].sum())
        assert hit < n_samples // 2  # ≈ S·N of N members own the stripe


class TestSamplingBehaviour:
    def test_ratio_one_keeps_everything(self, medium_graph):
        sampler = StableEdgeSampler(1.0, stripe=8)
        assert sampler.sample(medium_graph, 0).n_edges == medium_graph.n_edges

    def test_expected_fraction(self, medium_graph):
        sampler = StableEdgeSampler(0.2, stripe=8)
        samples = sampler.sample_many(medium_graph, 30, 11)
        fraction = np.mean([s.n_edges / medium_graph.n_edges for s in samples])
        assert 0.1 < fraction < 0.3

    def test_labels_reference_parent(self, medium_graph):
        sampler = StableEdgeSampler(0.5, stripe=8)
        sub = sampler.sample(medium_graph, 1)
        assert set(sub.user_labels.tolist()) <= set(medium_graph.user_labels.tolist())

    def test_registry_knows_it(self):
        assert isinstance(make_sampler("ses", 0.1), StableEdgeSampler)
        assert isinstance(make_sampler("stable_edge", 0.1), StableEdgeSampler)

    def test_invalid_stripe_rejected(self):
        with pytest.raises(SamplingError):
            StableEdgeSampler(0.1, stripe=0)

    def test_invalid_n_samples_rejected(self, medium_graph):
        with pytest.raises(SamplingError):
            StableEdgeSampler(0.1).sample_many(medium_graph, 0, 1)
