"""Unit tests for the three sampling methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph import BipartiteGraph, assert_subgraph_of
from repro.sampling import (
    OneSideNodeSampler,
    RandomEdgeSampler,
    SamplePlan,
    Side,
    TwoSideNodeSampler,
    recommend_side,
    resolve_rng,
)


class TestRatioValidation:
    @pytest.mark.parametrize("ratio", [0.0, -0.1, 1.5])
    def test_bad_ratio_rejected(self, ratio):
        with pytest.raises(SamplingError):
            RandomEdgeSampler(ratio)

    def test_ratio_one_allowed(self):
        RandomEdgeSampler(1.0)

    def test_bad_side_rejected(self):
        with pytest.raises(SamplingError):
            OneSideNodeSampler(0.5, side="bogus")

    def test_sample_many_needs_positive_count(self, tiny_graph):
        with pytest.raises(SamplingError):
            RandomEdgeSampler(0.5).sample_many(tiny_graph, 0)

    def test_plan_many_needs_positive_count(self, tiny_graph):
        with pytest.raises(SamplingError):
            RandomEdgeSampler(0.5).plan_many(tiny_graph, 0)


class TestResolveRng:
    def test_accepts_int_none_and_generator(self):
        generator = np.random.default_rng(1)
        assert resolve_rng(generator) is generator
        assert isinstance(resolve_rng(5), np.random.Generator)
        assert isinstance(resolve_rng(None), np.random.Generator)

    @pytest.mark.parametrize("seed", [True, False, np.True_])
    def test_bool_seed_rejected(self, seed):
        # bool is an int subclass: resolve_rng(True) used to silently mean
        # seed 1, hiding a misplaced flag argument
        with pytest.raises(SamplingError, match="bool"):
            resolve_rng(seed)

    def test_bool_seed_rejected_through_sampler(self, tiny_graph):
        with pytest.raises(SamplingError, match="bool"):
            RandomEdgeSampler(0.5).sample(tiny_graph, rng=True)


class TestSamplePlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SamplingError, match="kind"):
            SamplePlan(kind="bogus")

    def test_nbytes_counts_payload_arrays(self):
        plan = SamplePlan(kind="edges", edge_indices=np.arange(10, dtype=np.int64))
        assert plan.nbytes == 80


class TestRandomEdgeSampler:
    def test_edge_count_matches_ratio(self, clique_graph, rng):
        sub = RandomEdgeSampler(0.5).sample(clique_graph, rng)
        assert sub.n_edges == 10  # ceil(0.5 * 20)

    def test_is_subgraph(self, clique_graph, rng):
        sub = RandomEdgeSampler(0.3).sample(clique_graph, rng)
        assert_subgraph_of(sub, clique_graph)

    def test_no_isolated_nodes(self, planted_graph, rng):
        graph, _ = planted_graph
        sub = RandomEdgeSampler(0.2).sample(graph, rng)
        assert np.all(sub.user_degrees() > 0)
        assert np.all(sub.merchant_degrees() > 0)

    def test_ratio_one_keeps_all_edges(self, tiny_graph, rng):
        sub = RandomEdgeSampler(1.0).sample(tiny_graph, rng)
        assert sub.n_edges == tiny_graph.n_edges

    def test_empty_graph(self, rng):
        sub = RandomEdgeSampler(0.5).sample(BipartiteGraph.empty(3, 3), rng)
        assert sub.is_empty

    def test_reweight_scales_by_inverse_ratio(self, clique_graph, rng):
        sub = RandomEdgeSampler(0.5, reweight=True).sample(clique_graph, rng)
        assert np.allclose(sub.edge_weights, 2.0)

    def test_seeded_reproducibility(self, clique_graph):
        a = RandomEdgeSampler(0.4).sample(clique_graph, 7)
        b = RandomEdgeSampler(0.4).sample(clique_graph, 7)
        assert a == b

    def test_sample_many_count_and_independence(self, clique_graph):
        samples = RandomEdgeSampler(0.4).sample_many(clique_graph, 5, rng=3)
        assert len(samples) == 5
        # overwhelmingly unlikely that all five draws coincide
        assert any(samples[0] != s for s in samples[1:])


class TestOneSideNodeSampler:
    def test_user_side_limits_users(self, clique_graph, rng):
        sub = OneSideNodeSampler(0.4, Side.USER).sample(clique_graph, rng)
        assert sub.n_users == 2  # ceil(0.4 * 5)
        assert sub.n_merchants == 4  # all merchants touched

    def test_merchant_side_limits_merchants(self, clique_graph, rng):
        sub = OneSideNodeSampler(0.5, Side.MERCHANT).sample(clique_graph, rng)
        assert sub.n_merchants == 2
        assert sub.n_users == 5

    def test_keeps_all_edges_of_sampled_users(self, tiny_graph):
        sampler = OneSideNodeSampler(0.25, Side.USER)  # exactly one user
        for seed in range(8):
            sub = sampler.sample(tiny_graph, seed)
            label = int(sub.user_labels[0])
            expected = int((tiny_graph.edge_users == label).sum())
            assert sub.n_edges == expected

    def test_is_subgraph(self, planted_graph, rng):
        graph, _ = planted_graph
        sub = OneSideNodeSampler(0.3, Side.MERCHANT).sample(graph, rng)
        assert_subgraph_of(sub, graph)

    def test_keep_isolated_retains_nodes(self, rng):
        # merchant 1 has no edges; strict matrix-slice keeps the sampled row set
        graph = BipartiteGraph.from_edges([(0, 0)], n_users=1, n_merchants=2)
        sub = OneSideNodeSampler(1.0, Side.MERCHANT, keep_isolated=True).sample(graph, rng)
        assert sub.n_merchants == 2

    def test_name_reflects_side(self):
        assert OneSideNodeSampler(0.5, Side.USER).name == "ons_user"
        assert OneSideNodeSampler(0.5, Side.MERCHANT).name == "ons_merchant"


class TestTwoSideNodeSampler:
    def test_both_sides_limited(self, clique_graph, rng):
        sub = TwoSideNodeSampler(0.5).sample(clique_graph, rng)
        assert sub.n_users <= 3
        assert sub.n_merchants <= 2

    def test_expected_edge_fraction(self):
        assert TwoSideNodeSampler(0.1).expected_edge_fraction() == pytest.approx(0.01)
        assert TwoSideNodeSampler(0.1, merchant_ratio=0.5).expected_edge_fraction() == pytest.approx(0.05)

    def test_smaller_than_res_at_same_ratio(self, planted_graph):
        graph, _ = planted_graph
        ratio = 0.3
        res_edges = np.mean(
            [RandomEdgeSampler(ratio).sample(graph, s).n_edges for s in range(10)]
        )
        tns_edges = np.mean(
            [TwoSideNodeSampler(ratio).sample(graph, s).n_edges for s in range(10)]
        )
        assert tns_edges < res_edges

    def test_is_subgraph(self, planted_graph, rng):
        graph, _ = planted_graph
        sub = TwoSideNodeSampler(0.4).sample(graph, rng)
        assert_subgraph_of(sub, graph)

    def test_distinct_merchant_ratio(self, clique_graph, rng):
        sub = TwoSideNodeSampler(1.0, merchant_ratio=0.25).sample(clique_graph, rng)
        assert sub.n_merchants == 1
        assert sub.n_users == 5  # every user buys at the surviving merchant


class TestRecommendSide:
    def test_denser_merchant_side_recommended(self):
        # 6 users, 2 merchants: merchants are denser
        graph = BipartiteGraph.from_edges(
            [(u, u % 2) for u in range(6)], n_users=6, n_merchants=2
        )
        assert recommend_side(graph) == Side.MERCHANT

    def test_denser_user_side_recommended(self):
        graph = BipartiteGraph.from_edges(
            [(u % 2, v) for u in range(6) for v in range(3)], n_users=2, n_merchants=3
        )
        assert recommend_side(graph) == Side.USER
