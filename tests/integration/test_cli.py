"""Integration tests for the command-line interface."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.datasets import load_dataset, uniform_bipartite
from repro.errors import AggregationError
from repro.graph import save_edge_list


@pytest.fixture
def edges_file(tmp_path, toy):
    path = tmp_path / "edges.tsv"
    save_edge_list(toy.graph, path)
    return path


class TestDetectCommand:
    def test_detect_prints_nodes(self, edges_file, capsys):
        code = main(
            [
                "detect",
                str(edges_file),
                "--ratio", "0.4",
                "--samples", "8",
                "--threshold", "3",
                "--executor", "thread",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# detected" in out
        assert "user\t" in out

    def test_default_threshold(self, edges_file, capsys):
        code = main(
            ["detect", str(edges_file), "--ratio", "0.4", "--samples", "8",
             "--executor", "serial"]
        )
        assert code == 0
        assert "T=2" in capsys.readouterr().out

    def test_explicit_threshold_zero_not_replaced_by_default(self, edges_file):
        # regression: `args.threshold or default` swallowed an explicit 0 and
        # silently ran with T=N//4; 0 must reach the aggregator and be rejected
        with pytest.raises(AggregationError, match="threshold"):
            main(
                ["detect", str(edges_file), "--ratio", "0.4", "--samples", "8",
                 "--threshold", "0", "--executor", "serial"]
            )

    def test_explicit_threshold_one_honoured(self, edges_file, capsys):
        code = main(
            ["detect", str(edges_file), "--ratio", "0.4", "--samples", "8",
             "--threshold", "1", "--executor", "serial"]
        )
        assert code == 0
        assert "T=1" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_engine_flag(self, edges_file, capsys, engine):
        code = main(
            ["detect", str(edges_file), "--ratio", "0.4", "--samples", "6",
             "--executor", "serial", "--engine", engine]
        )
        assert code == 0
        assert "# detected" in capsys.readouterr().out

    def test_engines_detect_identically(self, edges_file, capsys):
        outputs = []
        for engine in ("reference", "fast"):
            code = main(
                ["detect", str(edges_file), "--ratio", "0.4", "--samples", "6",
                 "--threshold", "2", "--executor", "serial", "--engine", engine]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestDetectorFlag:
    @pytest.mark.parametrize(
        "spec", ["fraudar:n_blocks=3", "degree", "degree:weighted=1", "fdet:max_blocks=3"]
    )
    def test_registry_specs_run(self, edges_file, capsys, spec):
        code = main(["detect", str(edges_file), "--detector", spec, "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fitted" in out
        assert "user\t" in out

    def test_ensemble_spec_honours_flags(self, edges_file, capsys):
        code = main(
            ["detect", str(edges_file), "--detector", "ensemfdet",
             "--ratio", "0.4", "--samples", "6", "--executor", "serial", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# ensemfdet:" in out
        # at most 3 ranked users printed
        assert sum(1 for line in out.splitlines() if line.startswith("user\t")) <= 3

    def test_unknown_spec_fails_loudly(self, edges_file):
        from repro.errors import DetectionError

        with pytest.raises(DetectionError, match="unknown detector"):
            main(["detect", str(edges_file), "--detector", "oracle"])

    def test_threshold_with_detector_rejected(self, edges_file, capsys):
        # --threshold is meaningless on the ranking path; it must fail
        # loudly instead of being silently dropped
        code = main(
            ["detect", str(edges_file), "--detector", "degree", "--threshold", "3"]
        )
        assert code == 2
        assert "--threshold has no effect" in capsys.readouterr().err

    def test_ensemble_spec_reports_sampler(self, edges_file, capsys):
        code = main(
            ["detect", str(edges_file), "--detector", "ensemfdet",
             "--ratio", "0.4", "--samples", "6", "--executor", "serial", "--top", "1"]
        )
        assert code == 0
        assert "# sampler: StableEdgeSampler" in capsys.readouterr().out


class TestDetectorsCommand:
    def test_lists_registry(self, capsys):
        from repro.detectors import DETECTOR_NAMES

        code = main(["detectors", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in DETECTOR_NAMES:
            assert name in out
        assert "streaming" in out
        assert "parity=" in out


class TestDatasetCommand:
    def test_generates_loadable_dataset(self, tmp_path, capsys):
        outdir = tmp_path / "jd"
        code = main(["dataset", str(outdir), "--index", "1", "--scale", "0.08"])
        assert code == 0
        dataset = load_dataset(outdir)
        assert dataset.graph.n_edges > 0
        assert "wrote" in capsys.readouterr().out


class TestStatsCommand:
    def test_stats_output(self, edges_file, capsys):
        code = main(["stats", str(edges_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "edges" in out
        assert "avg_deg_user" in out


class TestExperimentsCommand:
    def test_runs_single_experiment(self, capsys):
        code = main(["experiments", "table1", "--scale", "tiny"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out


@pytest.fixture
def stream_file(tmp_path):
    graph = uniform_bipartite(120, 60, 900, rng=0)
    path = tmp_path / "stream.tsv"
    save_edge_list(graph, path)
    return path


def _watch_args(stream_file, state, extra=()):
    return [
        "watch", str(stream_file), "--state", str(state),
        "--ratio", "0.25", "--samples", "8", "--stripe", "128",
        "--executor", "serial", "--interval", "0",
        *extra,
    ]


class TestWatchCommand:
    def test_cold_fit_creates_state(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        code = main(_watch_args(stream_file, state, ["--iterations", "0"]))
        assert code == 0
        assert state.exists()
        out = capsys.readouterr().out
        assert "# cold fit" in out
        assert "# detected" in out

    def test_incremental_update_on_appended_rows(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        capsys.readouterr()
        rng = np.random.default_rng(4)
        with stream_file.open("a") as fh:
            for u, v in zip(rng.integers(0, 120, 12), rng.integers(0, 60, 12)):
                fh.write(f"{u}\t{v}\n")
        code = main(_watch_args(stream_file, state, ["--iterations", "1"]))
        assert code == 0
        out = capsys.readouterr().out
        assert "# loaded state" in out
        assert "# update: +12 edges" in out

    def test_no_new_rows_no_update(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        capsys.readouterr()
        code = main(_watch_args(stream_file, state, ["--iterations", "2"]))
        assert code == 0
        assert "# update" not in capsys.readouterr().out


class TestUpdateCommand:
    def test_headerless_delta(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        capsys.readouterr()
        delta = tmp_path / "delta.tsv"
        delta.write_text("3\t7\n5\t9\n")
        code = main(["update", str(delta), "--state", str(state)])
        assert code == 0
        out = capsys.readouterr().out
        assert "# update: +2 edges" in out
        assert "# detected" in out

    def test_missing_state_errors(self, tmp_path, capsys):
        delta = tmp_path / "delta.tsv"
        delta.write_text("0\t0\n")
        code = main(["update", str(delta), "--state", str(tmp_path / "none.npz")])
        assert code == 2
        assert "no detection state" in capsys.readouterr().err

    def test_update_then_watch_does_not_lose_file_rows(
        self, stream_file, tmp_path, capsys
    ):
        # regression: watch used the state's edge count as its file offset,
        # so delta edges applied via 'update' made it skip freshly appended
        # file rows; the offset is tracked in the state's meta instead
        state = tmp_path / "state.npz"
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        delta = tmp_path / "delta.tsv"
        delta.write_text("1\t1\n2\t2\n3\t3\n")
        assert main(["update", str(delta), "--state", str(state)]) == 0
        capsys.readouterr()
        with stream_file.open("a") as fh:
            for row in range(5):
                fh.write(f"{row}\t{row % 3}\n")
        code = main(_watch_args(stream_file, state, ["--iterations", "1"]))
        assert code == 0
        assert "# update: +5 edges" in capsys.readouterr().out


class TestWatchGracefulShutdown:
    """Regression: a signal in the poll gap must not lose state.

    ``watch`` used to sit in a bare ``time.sleep`` between polls — SIGINT
    there raised KeyboardInterrupt (traceback, non-zero exit) and SIGTERM
    killed the process outright, in both cases skipping the state commit.
    The loop now converts both signals into a clean drain-commit-exit.
    """

    def test_sigint_exits_zero_and_commits_state(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        capsys.readouterr()
        # interrupt an infinite watch mid-sleep; the handler is installed
        # before the loop starts, so a 1s timer cannot outrun it
        timer = threading.Timer(1.0, os.kill, (os.getpid(), signal.SIGINT))
        timer.start()
        try:
            code = main(
                _watch_args(
                    stream_file, state,
                    ["--iterations", "-1", "--interval", "0.2"],
                )
            )
        finally:
            timer.cancel()
        assert code == 0
        captured = capsys.readouterr()
        assert "# interrupted: state committed" in captured.err
        # the committed state is loadable and still append-consistent
        from repro.ensemble import IncrementalEnsemFDet

        detector, recovered_from = IncrementalEnsemFDet.load_with_recovery(state)
        assert recovered_from is None
        assert detector.meta["watch_rows"] == detector.graph.n_edges

    def test_previous_handlers_restored(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_signal_to_subprocess_commits_and_exits_zero(
        self, stream_file, tmp_path, sig
    ):
        state = tmp_path / "state.npz"
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli",
                *_watch_args(
                    stream_file, state, ["--iterations", "-1", "--interval", "0.2"]
                ),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # wait for the reload banner so the loop (and its handlers)
            # is definitely up before signalling
            line = ""
            while "# loaded state" not in line:
                line = proc.stdout.readline()
                assert line, "watch exited before becoming ready"
            proc.send_signal(sig)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "# interrupted: state committed" in err
        assert "Traceback" not in err


class TestScenarioCommand:
    def test_list_prints_registry(self, capsys):
        from repro.scenarios import SCENARIO_NAMES

        code = main(["scenario", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in SCENARIO_NAMES:
            assert name in out

    def test_grid_runs_and_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "scenario",
                "--scenarios", "naive_block,staged",
                "--intensities", "1.0",
                "--detectors", "ensemfdet,incremental",
                "--scale", "0.12",
                "--samples", "6",
                "--ratio", "0.4",
                "--stripe", "32",
                "--outdir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario_grid" in out
        assert "naive_block" in out and "staged" in out
        assert (tmp_path / "scenario_grid.json").exists()
        assert (tmp_path / "scenario_grid.csv").exists()

    def test_unknown_scenario_fails_loudly(self):
        from repro.errors import ScenarioError

        with pytest.raises(ScenarioError, match="unknown scenario"):
            main(["scenario", "--scenarios", "bogus", "--intensities", "1.0"])

    def test_registry_spec_detectors(self, capsys):
        """Parameterised specs pass through the comma-separated flag
        (params stay attached to their spec)."""
        code = main(
            [
                "scenario",
                "--scenarios", "naive_block",
                "--intensities", "1.0",
                "--detectors", "degree:weighted=1,fraudar:n_blocks=2",
                "--scale", "0.12",
                "--samples", "6",
                "--ratio", "0.4",
                "--stripe", "32",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degree:weighted=1" in out
        assert "fraudar:n_blocks=2" in out

    def test_unknown_detector_fails_loudly(self):
        from repro.errors import ScenarioError

        with pytest.raises(ScenarioError, match="unknown detectors"):
            main(["scenario", "--scenarios", "naive_block", "--detectors", "oracle"])


class TestWindowedWatch:
    def test_window_flag_round_trips_through_state(
        self, stream_file, tmp_path, capsys
    ):
        state = tmp_path / "state.npz"
        code = main(
            _watch_args(stream_file, state, ["--iterations", "0", "--window", "3"])
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rolling window (last 3 batches)" in out
        # the reloaded state still knows it is windowed — no flag needed
        code = main(_watch_args(stream_file, state, ["--iterations", "0"]))
        assert code == 0
        assert "rolling window (last 3 batches)" in capsys.readouterr().out

    def test_windowed_updates_expire_old_batches(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        assert main(
            _watch_args(stream_file, state, ["--iterations", "0", "--window", "2"])
        ) == 0
        rng = np.random.default_rng(9)
        for _ in range(3):
            with stream_file.open("a") as fh:
                for u, v in zip(rng.integers(0, 120, 10), rng.integers(0, 60, 10)):
                    fh.write(f"{u}\t{v}\n")
            capsys.readouterr()
            assert main(_watch_args(stream_file, state, ["--iterations", "1"])) == 0
        out = capsys.readouterr().out
        # by the third batch, a 2-batch window must have expired something
        assert "# update: +10 edges, expired" in out
        assert ", expired 0," not in out

    def test_horizon_flag_accepted(self, stream_file, tmp_path, capsys):
        state = tmp_path / "state.npz"
        code = main(
            _watch_args(
                stream_file, state, ["--iterations", "0", "--horizon", "3600"]
            )
        )
        assert code == 0
        assert "rolling window (horizon 3600)" in capsys.readouterr().out


class TestWindowedUpdate:
    def _windowed_state(self, stream_file, tmp_path):
        state = tmp_path / "state.npz"
        assert main(
            _watch_args(stream_file, state, ["--iterations", "0", "--window", "4"])
        ) == 0
        return state

    def test_remove_retracts_live_edges(self, stream_file, tmp_path, capsys):
        state = self._windowed_state(stream_file, tmp_path)
        graph = uniform_bipartite(120, 60, 900, rng=0)
        removals = tmp_path / "remove.tsv"
        removals.write_text(
            "".join(
                f"{u}\t{m}\n"
                for u, m in zip(
                    graph.edge_users[:4].tolist(), graph.edge_merchants[:4].tolist()
                )
            )
        )
        capsys.readouterr()
        code = main(["update", "--remove", str(removals), "--state", str(state)])
        assert code == 0
        out = capsys.readouterr().out
        assert "# update: +0 edges, -4 retracted" in out
        assert "# detected" in out

    def test_mixed_append_and_remove(self, stream_file, tmp_path, capsys):
        state = self._windowed_state(stream_file, tmp_path)
        graph = uniform_bipartite(120, 60, 900, rng=0)
        delta = tmp_path / "delta.tsv"
        delta.write_text("3\t7\n5\t9\n")
        removals = tmp_path / "remove.tsv"
        removals.write_text(
            f"{graph.edge_users[0]}\t{graph.edge_merchants[0]}\n"
        )
        capsys.readouterr()
        code = main(
            ["update", str(delta), "--remove", str(removals), "--state", str(state)]
        )
        assert code == 0
        assert "# update: +2 edges, -1 retracted" in capsys.readouterr().out

    def test_remove_on_append_only_state_is_refused(
        self, stream_file, tmp_path, capsys
    ):
        state = tmp_path / "state.npz"
        assert main(_watch_args(stream_file, state, ["--iterations", "0"])) == 0
        removals = tmp_path / "remove.tsv"
        removals.write_text("0\t0\n")
        capsys.readouterr()
        code = main(["update", "--remove", str(removals), "--state", str(state)])
        assert code == 2
        assert "windowed state" in capsys.readouterr().err

    def test_no_delta_and_no_remove_is_refused(self, stream_file, tmp_path, capsys):
        state = self._windowed_state(stream_file, tmp_path)
        capsys.readouterr()
        code = main(["update", "--state", str(state)])
        assert code == 2
        assert "nothing to apply" in capsys.readouterr().err


class TestDriftCommand:
    def test_drift_grid_runs_and_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "scenario", "--drift",
                "--scale", "0.12",
                "--samples", "6",
                "--ratio", "0.4",
                "--stripe", "32",
                "--window", "6",
                "--outdir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drift_grid" in out
        for name in ("slow_ramp", "burst_dormant", "attack_cleanup"):
            assert name in out
        assert "latency" in out
        assert (tmp_path / "drift_grid.json").exists()
        assert (tmp_path / "drift_grid.csv").exists()

    def test_drift_takes_one_intensity(self, capsys):
        code = main(["scenario", "--drift", "--intensities", "1.0,2.0"])
        assert code == 2
        assert "single value" in capsys.readouterr().err
