"""Integration tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.datasets import load_dataset
from repro.graph import save_edge_list


@pytest.fixture
def edges_file(tmp_path, toy):
    path = tmp_path / "edges.tsv"
    save_edge_list(toy.graph, path)
    return path


class TestDetectCommand:
    def test_detect_prints_nodes(self, edges_file, capsys):
        code = main(
            [
                "detect",
                str(edges_file),
                "--ratio", "0.4",
                "--samples", "8",
                "--threshold", "3",
                "--executor", "thread",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# detected" in out
        assert "user\t" in out

    def test_default_threshold(self, edges_file, capsys):
        code = main(
            ["detect", str(edges_file), "--ratio", "0.4", "--samples", "8",
             "--executor", "serial"]
        )
        assert code == 0
        assert "T=2" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_engine_flag(self, edges_file, capsys, engine):
        code = main(
            ["detect", str(edges_file), "--ratio", "0.4", "--samples", "6",
             "--executor", "serial", "--engine", engine]
        )
        assert code == 0
        assert "# detected" in capsys.readouterr().out

    def test_engines_detect_identically(self, edges_file, capsys):
        outputs = []
        for engine in ("reference", "fast"):
            code = main(
                ["detect", str(edges_file), "--ratio", "0.4", "--samples", "6",
                 "--threshold", "2", "--executor", "serial", "--engine", engine]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


class TestDatasetCommand:
    def test_generates_loadable_dataset(self, tmp_path, capsys):
        outdir = tmp_path / "jd"
        code = main(["dataset", str(outdir), "--index", "1", "--scale", "0.08"])
        assert code == 0
        dataset = load_dataset(outdir)
        assert dataset.graph.n_edges > 0
        assert "wrote" in capsys.readouterr().out


class TestStatsCommand:
    def test_stats_output(self, edges_file, capsys):
        code = main(["stats", str(edges_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "edges" in out
        assert "avg_deg_user" in out


class TestExperimentsCommand:
    def test_runs_single_experiment(self, capsys):
        code = main(["experiments", "table1", "--scale", "tiny"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out
