"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Blacklist,
    EnsemFDet,
    EnsemFDetConfig,
    FraudarDetector,
    RandomEdgeSampler,
    best_f1,
    ensemble_threshold_curve,
    fraudar_block_curve,
    make_jd_dataset,
)
from repro.fdet import FdetConfig
from repro.graph import GraphBuilder, load_edge_list, save_edge_list


class TestToyPipeline:
    def test_ensemble_beats_chance_and_tracks_fraudar(self, toy):
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.4),
            n_samples=24,
            fdet=FdetConfig(max_blocks=8),
            seed=0,
            executor="thread",
        )
        ensemble = EnsemFDet(config).fit(toy.graph)
        ensemble_best = best_f1(ensemble_threshold_curve(ensemble, toy.blacklist))

        fraudar = FraudarDetector(n_blocks=8).detect(toy.graph)
        fraudar_best = best_f1(fraudar_block_curve(fraudar, toy.blacklist))

        assert ensemble_best.f1 > 0.5
        assert ensemble_best.f1 > 0.6 * fraudar_best.f1  # parity band

    def test_smoothness_advantage(self, toy):
        """EnsemFDet's operating curve is finer-grained than Fraudar's."""
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.4), n_samples=24,
            fdet=FdetConfig(max_blocks=8), seed=0, executor="thread",
        )
        ensemble_curve = ensemble_threshold_curve(
            EnsemFDet(config).fit(toy.graph), toy.blacklist
        )
        fraudar_curve = fraudar_block_curve(
            FraudarDetector(n_blocks=8).detect(toy.graph), toy.blacklist
        )
        assert len(ensemble_curve) > len(fraudar_curve)


class TestJdPipeline:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_jd_dataset(1, scale=0.15, seed=0)

    def test_detection_quality_band(self, dataset):
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.3),
            n_samples=12,
            fdet=FdetConfig(max_blocks=10),
            seed=0,
            executor="thread",
        )
        result = EnsemFDet(config).fit(dataset.graph)
        best = best_f1(ensemble_threshold_curve(result, dataset.blacklist))
        # noisy labels cap F1 well below 1; random detection sits near 0.05
        assert 0.15 <= best.f1 <= 0.95

    def test_serial_and_process_agree(self, dataset):
        base = dict(
            sampler=RandomEdgeSampler(0.3),
            n_samples=6,
            fdet=FdetConfig(max_blocks=6),
            seed=3,
        )
        serial = EnsemFDet(EnsemFDetConfig(**base, executor="serial")).fit(dataset.graph)
        process = EnsemFDet(EnsemFDetConfig(**base, executor="process")).fit(dataset.graph)
        assert serial.vote_table.user_votes == process.vote_table.user_votes


class TestFileRoundtripPipeline:
    def test_build_save_load_detect(self, tmp_path, toy):
        """Transaction log -> builder -> TSV -> load -> detect."""
        builder = GraphBuilder()
        for u, v in toy.graph.iter_edges():
            builder.add_edge(f"pin-{u}", f"shop-{v}")
        built = builder.build()
        assert built.graph.n_edges == toy.graph.n_edges

        path = tmp_path / "transactions.tsv"
        save_edge_list(built.graph, path)
        loaded = load_edge_list(path)

        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.4), n_samples=10,
            fdet=FdetConfig(max_blocks=6), seed=0,
        )
        detection = EnsemFDet(config).fit_detect(loaded, threshold=4)
        assert detection.n_users > 0

        # detected labels round-trip to the builder's original keys
        keys = built.users_from_indices(detection.user_labels.tolist())
        assert all(key.startswith("pin-") for key in keys)


class TestBlacklistEvaluationPipeline:
    def test_noisy_blacklist_caps_precision(self, toy):
        """With heavy label noise, even a perfect detector loses precision."""
        rng = np.random.default_rng(0)
        noisy = Blacklist(toy.clean_fraud_labels.tolist()).with_noise(
            np.arange(toy.graph.n_users),
            drop_fraction=0.4,
            add_fraction=0.5,
            rng=rng,
        )
        # a perfect detector flags exactly the planted users
        from repro.metrics import detection_confusion

        confusion = detection_confusion(toy.clean_fraud_labels, noisy)
        assert confusion.precision <= 0.75
        assert confusion.recall <= 0.75
