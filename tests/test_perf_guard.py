"""Tier-1 hook for the peeling perf-regression guard.

Runs ``benchmarks/check_regression.py --fast`` as a subprocess so that an
accidental de-vectorisation of either peeling engine fails the regular test
suite, not just the (rarely run) benchmark suite. Fast mode times only the
smaller graph sizes, keeping the cost around a second; the threshold is
slightly looser than the standalone default to absorb CI noise on the
millisecond-scale cases.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GUARD = REPO_ROOT / "benchmarks" / "check_regression.py"
FAULT_GUARD = REPO_ROOT / "benchmarks" / "bench_fault_overhead.py"
WINDOW_GUARD = REPO_ROOT / "benchmarks" / "bench_window.py"


def test_peeling_perf_guard_fast():
    result = subprocess.run(
        [sys.executable, str(GUARD), "--fast", "--threshold", "3.0"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"perf guard failed (rc={result.returncode})\n"
        f"--- stdout ---\n{result.stdout}\n--- stderr ---\n{result.stderr}"
    )


def test_fault_layer_armed_idle_overhead_guard():
    # an armed-but-never-matching fault plan must not slow a fit measurably;
    # the guard gates on the derived overhead (per-call cost x calls per
    # fit), which stays stable on a loaded runner
    result = subprocess.run(
        [sys.executable, str(FAULT_GUARD), "--check", "--rounds", "5"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"fault-overhead guard failed (rc={result.returncode})\n"
        f"--- stdout ---\n{result.stdout}\n--- stderr ---\n{result.stderr}"
    )


def test_windowed_update_perf_guard():
    # the windowed incremental layer must keep the 1% churn update >= 5x
    # faster than a cold fit on the live window, stay bit-identical to it,
    # and hold the stored rows inside the compaction bound while sliding
    result = subprocess.run(
        [sys.executable, str(WINDOW_GUARD), "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"window guard failed (rc={result.returncode})\n"
        f"--- stdout ---\n{result.stdout}\n--- stderr ---\n{result.stderr}"
    )


def test_serve_load_baseline_meets_contract():
    # the committed serving baseline must itself satisfy the serve
    # contract: >= 1k edges/s HTTP ingest and sub-50ms query p99. The live
    # measurement is ratio-gated by check_regression --fast above and
    # floor-gated by ``bench_serve_load.py --check`` in the serve-smoke CI
    # job, so a drifting host shows up there, not as a stale JSON here.
    baseline = json.loads(
        (REPO_ROOT / "benchmarks" / "baselines" / "serve_load.json").read_text()
    )
    assert baseline["ingest"]["edges_per_second"] >= 1_000
    assert baseline["query"]["score_p99_ms"] < 50.0
    assert baseline["query"]["top_p99_ms"] < 50.0
