"""ReusablePool failure semantics: typed errors, respawn, injection hooks."""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import InjectedFault, ParallelError, WorkerCrashError
from repro.faults import arm, disarm
from repro.parallel import ExecutorMode, ReusablePool, kill_executor_workers


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm()
    yield
    disarm()


def _square(x: int) -> int:
    return x * x


def _die_on_negative(x: int) -> int:
    if x < 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


class TestWorkerCrash:
    def test_dead_worker_raises_typed_error_and_respawns(self):
        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.map(_die_on_negative, [1, -2, 3, 4])
            error = excinfo.value
            assert isinstance(error, ParallelError)
            assert error.member_indices  # the unfinished items are named
            assert all(0 <= i < 4 for i in error.member_indices)
            assert pool.restarts == 1
            # the respawned pool is immediately usable
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_message_carries_remediation_hint(self):
        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            with pytest.raises(WorkerCrashError, match="respawned"):
                pool.map(_die_on_negative, [-1, -1])


class TestPicklability:
    def test_unpicklable_task_is_a_parallel_error(self):
        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            with pytest.raises(ParallelError, match="pickle"):
                pool.map(lambda x: x, [1, 2])

    def test_task_exceptions_propagate_unchanged(self):
        def boom(x):
            raise ValueError(f"bad item {x}")

        with ReusablePool(ExecutorMode.THREAD, n_workers=2) as pool:
            with pytest.raises(ValueError, match="bad item"):
                pool.map(boom, [1])


class TestInjection:
    def test_pool_map_fault_point_fires(self):
        arm("raise:point=pool.map")
        with ReusablePool(ExecutorMode.THREAD, n_workers=2) as pool:
            with pytest.raises(InjectedFault, match="pool.map"):
                pool.map(_square, [1, 2])
            # the plan's times=1 budget is spent: next map runs clean
            assert pool.map(_square, [3]) == [9]


class TestKillWorkers:
    def test_thread_pool_has_nothing_to_kill(self):
        with ReusablePool(ExecutorMode.THREAD, n_workers=2) as pool:
            pool.map(_square, [1])
            assert pool.kill_workers() == 0

    def test_unspawned_pool_kills_nothing(self):
        pool = ReusablePool(ExecutorMode.PROCESS, n_workers=2)
        assert pool.kill_workers() == 0

    def test_kill_executor_workers_counts_processes(self):
        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            pool.map(_square, [1, 2, 3, 4])
            killed = kill_executor_workers(pool._executor)
            assert killed >= 1
            pool.respawn()
            assert pool.map(_square, [5]) == [25]
