"""Unit tests for the parallel-map substrate."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ReproError
from repro.parallel import (
    ExecutorMode,
    ReusablePool,
    Timer,
    default_workers,
    parallel_map,
    time_callable,
)


def square(x: int) -> int:
    return x * x


def failing(x: int) -> int:
    raise ValueError(f"boom on {x}")


class TestParallelMap:
    @pytest.mark.parametrize("mode", ExecutorMode.ALL)
    def test_preserves_order(self, mode):
        items = list(range(20))
        assert parallel_map(square, items, mode=mode) == [x * x for x in items]

    @pytest.mark.parametrize("mode", ExecutorMode.ALL)
    def test_empty_items(self, mode):
        assert parallel_map(square, [], mode=mode) == []

    def test_single_item_short_circuits(self):
        assert parallel_map(square, [3], mode=ExecutorMode.PROCESS) == [9]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown executor"):
            parallel_map(square, [1], mode="gpu")

    @pytest.mark.parametrize("mode", [ExecutorMode.THREAD, ExecutorMode.PROCESS])
    def test_exceptions_propagate(self, mode):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(failing, [1, 2], mode=mode)

    def test_n_workers_one_falls_back_to_serial(self):
        assert parallel_map(square, [1, 2, 3], mode=ExecutorMode.PROCESS, n_workers=1) == [1, 4, 9]

    def test_generator_input(self):
        assert parallel_map(square, (x for x in range(4)), mode=ExecutorMode.SERIAL) == [0, 1, 4, 9]


class TestDefaultWorkers:
    def test_capped_by_items(self):
        assert default_workers(n_items=2) <= 2

    def test_at_least_one(self):
        assert default_workers(n_items=0) >= 1
        assert default_workers() >= 1

    def test_bounded_by_cpu(self):
        assert default_workers() <= (os.cpu_count() or 1)

    def test_env_pin(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        assert default_workers(n_items=2) == 2  # items still cap the pin

    def test_env_pin_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        assert default_workers() == 1

    def test_env_pin_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ReproError, match="REPRO_WORKERS"):
            default_workers()

    def test_env_pin_blank_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert default_workers() >= 1


class TestReusablePool:
    def test_map_preserves_order(self):
        with ReusablePool(ExecutorMode.THREAD, n_workers=2) as pool:
            assert pool.map(square, range(10)) == [x * x for x in range(10)]

    def test_reused_across_calls(self):
        with ReusablePool(ExecutorMode.THREAD, n_workers=2) as pool:
            pool.map(square, [1])
            executor = pool._executor
            pool.map(square, [2, 3])
            assert pool._executor is executor  # same warm workers

    def test_process_pool_map(self):
        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            assert pool.map(square, [4, 5]) == [16, 25]

    def test_parallel_map_routes_through_pool(self):
        with ReusablePool(ExecutorMode.THREAD, n_workers=2) as pool:
            result = parallel_map(square, [1, 2, 3], mode=ExecutorMode.SERIAL, pool=pool)
            assert result == [1, 4, 9]
            assert pool._executor is not None

    def test_empty_map_does_not_spawn(self):
        pool = ReusablePool(ExecutorMode.PROCESS, n_workers=2)
        assert pool.map(square, []) == []
        assert pool._executor is None
        pool.close()

    def test_serial_mode_rejected(self):
        with pytest.raises(ReproError, match="thread' or 'process"):
            ReusablePool(ExecutorMode.SERIAL)

    def test_close_is_idempotent(self):
        pool = ReusablePool(ExecutorMode.THREAD, n_workers=1)
        pool.map(square, [1])
        pool.close()
        pool.close()

    def test_close_before_use_is_noop(self):
        pool = ReusablePool(ExecutorMode.PROCESS, n_workers=1)
        pool.close()
        pool.close()

    def test_initializer_runs_once_per_worker(self):
        with ReusablePool(
            ExecutorMode.PROCESS,
            n_workers=2,
            initializer=_set_init_mark,
            initargs=("yes",),
        ) as pool:
            marks = pool.map(_read_init_mark, range(8))
        assert marks == ["yes"] * 8


def _set_init_mark(value: str) -> None:
    os.environ["REPRO_POOL_INIT_MARK"] = value


def _read_init_mark(_: int) -> str:
    return os.environ.get("REPRO_POOL_INIT_MARK", "missing")


class TestReusablePoolEnsembleLifecycle:
    """The pool survives (and stays correct) across whole ensemble fits."""

    @staticmethod
    def _graph():
        from repro.graph import BipartiteGraph

        rng_local = __import__("numpy").random.default_rng(3)
        users = rng_local.integers(0, 120, size=900)
        merchants = rng_local.integers(0, 40, size=900)
        return BipartiteGraph(120, 40, users, merchants)

    @staticmethod
    def _config(**overrides):
        from repro.ensemble import EnsemFDetConfig
        from repro.fdet import FdetConfig
        from repro.sampling import RandomEdgeSampler

        defaults = dict(
            sampler=RandomEdgeSampler(0.4),
            n_samples=6,
            fdet=FdetConfig(max_blocks=4),
            executor=ExecutorMode.PROCESS,
            seed=9,
        )
        defaults.update(overrides)
        return EnsemFDetConfig(**defaults)

    @staticmethod
    def _leaked_segments():
        if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
            return []
        return [n for n in os.listdir("/dev/shm") if n.startswith("repro_gs_")]

    def test_reused_across_multiple_fits(self):
        from repro.ensemble import EnsemFDet

        graph = self._graph()
        with ReusablePool(ExecutorMode.PROCESS, n_workers=2) as pool:
            detector = EnsemFDet(self._config(), pool=pool)
            first = detector.fit(graph)
            executor = pool._executor
            second = detector.fit(graph)
            assert pool._executor is executor  # same warm workers
        serial = EnsemFDet(self._config(executor=ExecutorMode.SERIAL)).fit(graph)
        assert first.vote_table.user_votes == serial.vote_table.user_votes
        assert second.vote_table.user_votes == serial.vote_table.user_votes

    def test_repro_workers_pins_pool_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pool = ReusablePool(ExecutorMode.PROCESS)
        assert pool.n_workers == 2
        pool.close()

    def test_shared_segments_cleaned_after_fits_and_close(self):
        from repro.ensemble import EnsemFDet

        graph = self._graph()
        pool = ReusablePool(ExecutorMode.PROCESS, n_workers=2)
        try:
            EnsemFDet(self._config(), pool=pool).fit(graph)
            # the per-fit segment is already unlinked before fit returns
            assert self._leaked_segments() == []
            EnsemFDet(self._config(seed=10), pool=pool).fit(graph)
            assert self._leaked_segments() == []
        finally:
            pool.close()
        pool.close()  # idempotent after real use
        assert self._leaked_segments() == []


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_time_callable_returns_value(self):
        timing = time_callable(square, 7)
        assert timing.value == 49
        assert timing.seconds >= 0
