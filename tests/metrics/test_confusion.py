"""Unit tests for confusion counts and derived rates."""

from __future__ import annotations

import pytest

from repro.metrics import Confusion, confusion_from_sets


class TestConfusion:
    def test_precision_recall_f1(self):
        confusion = Confusion(tp=6, fp=2, fn=4)
        assert confusion.precision == pytest.approx(0.75)
        assert confusion.recall == pytest.approx(0.6)
        assert confusion.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)

    def test_zero_detected(self):
        confusion = Confusion(tp=0, fp=0, fn=5)
        assert confusion.precision == 0.0
        assert confusion.recall == 0.0
        assert confusion.f1 == 0.0

    def test_zero_truth(self):
        confusion = Confusion(tp=0, fp=3, fn=0)
        assert confusion.recall == 0.0

    def test_perfect(self):
        confusion = Confusion(tp=10, fp=0, fn=0)
        assert confusion.f1 == 1.0

    def test_fpr_needs_tn(self):
        with pytest.raises(ValueError):
            _ = Confusion(tp=1, fp=1, fn=1).false_positive_rate
        confusion = Confusion(tp=1, fp=1, fn=1, tn=7)
        assert confusion.false_positive_rate == pytest.approx(1 / 8)

    def test_as_row(self):
        row = Confusion(tp=1, fp=1, fn=2).as_row()
        assert row["n_detected"] == 2
        assert 0 <= row["precision"] <= 1


class TestConfusionFromSets:
    def test_counts(self):
        confusion = confusion_from_sets({1, 2, 3}, {2, 3, 4})
        assert (confusion.tp, confusion.fp, confusion.fn) == (2, 1, 1)

    def test_with_population(self):
        confusion = confusion_from_sets({1}, {1, 2}, n_population=10)
        assert confusion.tn == 8

    def test_population_too_small(self):
        with pytest.raises(ValueError):
            confusion_from_sets({1, 2}, {3, 4}, n_population=3)

    def test_empty_sets(self):
        confusion = confusion_from_sets(set(), set())
        assert confusion.f1 == 0.0

    def test_accepts_iterables(self):
        confusion = confusion_from_sets([1, 1, 2], (2, 3))
        assert confusion.tp == 1
