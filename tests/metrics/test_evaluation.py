"""Tests for the detector-evaluation glue."""

from __future__ import annotations

import numpy as np

from repro.baselines import DegreeDetector, FraudarDetector
from repro.datasets import Blacklist
from repro.ensemble import EnsemFDet, EnsemFDetConfig
from repro.fdet import FdetConfig
from repro.metrics import (
    detection_confusion,
    ensemble_threshold_curve,
    fraudar_block_curve,
    score_curve,
)
from repro.sampling import RandomEdgeSampler


def fitted(toy):
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(0.4), n_samples=8, fdet=FdetConfig(max_blocks=5), seed=0
    )
    return EnsemFDet(config).fit(toy.graph)


class TestDetectionConfusion:
    def test_against_blacklist(self):
        blacklist = Blacklist([1, 2, 3])
        confusion = detection_confusion(np.array([2, 3, 4]), blacklist)
        assert confusion.tp == 2
        assert confusion.fp == 1
        assert confusion.fn == 1

    def test_with_population(self):
        blacklist = Blacklist([0])
        confusion = detection_confusion(np.array([0]), blacklist, n_population=10)
        assert confusion.tn == 9


class TestEnsembleCurve:
    def test_full_sweep_length(self, toy):
        result = fitted(toy)
        curve = ensemble_threshold_curve(result, toy.blacklist)
        assert len(curve) == result.n_samples
        assert [p.threshold for p in curve] == list(range(1, 9))

    def test_explicit_thresholds(self, toy):
        result = fitted(toy)
        curve = ensemble_threshold_curve(result, toy.blacklist, thresholds=[2, 4])
        assert [p.threshold for p in curve] == [2.0, 4.0]

    def test_detected_counts_decrease_with_t(self, toy):
        curve = ensemble_threshold_curve(fitted(toy), toy.blacklist)
        sizes = [p.n_detected for p in curve]
        assert sizes == sorted(sizes, reverse=True)


class TestFraudarCurve:
    def test_one_point_per_block(self, toy):
        result = FraudarDetector(n_blocks=5).detect(toy.graph)
        curve = fraudar_block_curve(result, toy.blacklist)
        assert len(curve) == len(result.blocks)
        assert [p.threshold for p in curve] == [float(i) for i in range(1, len(curve) + 1)]

    def test_cumulative_growth(self, toy):
        result = FraudarDetector(n_blocks=5).detect(toy.graph)
        curve = fraudar_block_curve(result, toy.blacklist)
        sizes = [p.n_detected for p in curve]
        assert sizes == sorted(sizes)


class TestScoreCurve:
    def test_degree_scores(self, toy):
        scores = DegreeDetector().score_users(toy.graph)
        curve = score_curve(toy.graph, scores, toy.blacklist, max_points=30)
        assert len(curve) <= 30
        assert all(0 <= p.f1 <= 1 for p in curve)

    def test_labels_bridge_local_indices(self, toy):
        # construct scores that flag exactly the planted fraud users
        truth_mask = toy.blacklist.mask(toy.graph.user_labels)
        scores = truth_mask.astype(float)
        curve = score_curve(toy.graph, scores, toy.blacklist)
        best = max(curve, key=lambda p: p.f1)
        assert best.f1 == 1.0
