"""Tests for run-to-run stability measures."""

from __future__ import annotations

import pytest

from repro.ensemble import EnsemFDetConfig
from repro.fdet import FdetConfig
from repro.metrics import detection_stability, f1_spread, jaccard, seed_sweep_stability
from repro.sampling import RandomEdgeSampler


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, [1, 2]) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_one_empty(self):
        assert jaccard({1}, []) == 0.0


class TestDetectionStability:
    def test_single_run(self):
        assert detection_stability([{1, 2}]) == 1.0

    def test_identical_runs(self):
        assert detection_stability([{1, 2}, {1, 2}, {1, 2}]) == 1.0

    def test_mixed_runs(self):
        value = detection_stability([{1, 2}, {1, 2}, {3}])
        assert 0.0 < value < 1.0


class TestF1Spread:
    def test_empty(self):
        assert f1_spread([]) == 0.0

    def test_band(self):
        assert f1_spread([0.5, 0.6, 0.55]) == pytest.approx(0.1)


class TestSeedSweep:
    def test_ensemble_detections_are_stable_across_seeds(self, toy):
        """The paper's stability claim, quantified on the toy dataset."""
        config = EnsemFDetConfig(
            sampler=RandomEdgeSampler(0.4),
            n_samples=16,
            fdet=FdetConfig(max_blocks=6),
            executor="thread",
        )
        summary = seed_sweep_stability(
            toy.graph, toy.blacklist, config, seeds=[1, 2, 3], threshold=6
        )
        assert summary["detection_jaccard"] > 0.5
        assert summary["f1_spread"] < 0.2
        assert 0.0 < summary["f1_mean"] <= 1.0
