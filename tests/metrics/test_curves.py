"""Unit & property tests for operating-curve utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    CurvePoint,
    auc_pr,
    best_f1,
    curve_from_detections,
    max_detected_gap,
    pr_curve_from_scores,
    precision_at_k,
    precision_at_recall,
)


def point(threshold, n, p, r):
    f1 = 2 * p * r / (p + r) if (p + r) else 0.0
    return CurvePoint(threshold=threshold, n_detected=n, precision=p, recall=r, f1=f1)


class TestPrCurveFromScores:
    def test_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.1, 0.05])
        truth = np.array([True, True, False, False])
        points = pr_curve_from_scores(scores, truth)
        assert any(p.precision == 1.0 and p.recall == 1.0 for p in points)

    def test_shapes_checked(self):
        with pytest.raises(ValueError):
            pr_curve_from_scores(np.array([1.0]), np.array([True, False]))

    def test_thresholds_descending_detection_growing(self):
        rng = np.random.default_rng(0)
        scores = rng.random(100)
        truth = rng.random(100) < 0.2
        points = pr_curve_from_scores(scores, truth)
        sizes = [p.n_detected for p in points]
        assert sizes == sorted(sizes)

    def test_max_points_subsampling(self):
        rng = np.random.default_rng(1)
        scores = rng.random(500)
        truth = rng.random(500) < 0.5
        points = pr_curve_from_scores(scores, truth, max_points=10)
        assert len(points) <= 10

    def test_ties_handled(self):
        scores = np.array([0.5, 0.5, 0.5])
        truth = np.array([True, False, True])
        points = pr_curve_from_scores(scores, truth)
        assert len(points) == 1
        assert points[0].n_detected == 3
        assert points[0].precision == pytest.approx(2 / 3)


class TestCurveFromDetections:
    def test_basic(self):
        points = curve_from_detections(
            [(1.0, [1, 2]), (2.0, [1])], truth=[1, 3]
        )
        assert points[0].precision == pytest.approx(0.5)
        assert points[1].precision == pytest.approx(1.0)
        assert points[1].recall == pytest.approx(0.5)

    def test_empty_detection(self):
        points = curve_from_detections([(1.0, [])], truth=[1])
        assert points[0].n_detected == 0
        assert points[0].f1 == 0.0


class TestCurveStatistics:
    def test_max_detected_gap(self):
        points = [point(1, 10, 0.5, 0.1), point(2, 500, 0.3, 0.4), point(3, 520, 0.2, 0.5)]
        assert max_detected_gap(points) == 490

    def test_max_detected_gap_sorts_first(self):
        points = [point(1, 520, 0.2, 0.5), point(2, 10, 0.5, 0.1), point(3, 500, 0.3, 0.4)]
        assert max_detected_gap(points) == 490

    def test_max_detected_gap_degenerate(self):
        assert max_detected_gap([]) == 0
        assert max_detected_gap([point(1, 5, 0.5, 0.5)]) == 0

    def test_auc_pr_unit_square(self):
        points = [point(1, 1, 1.0, 0.0), point(2, 2, 1.0, 1.0)]
        assert auc_pr(points) == pytest.approx(1.0)

    def test_auc_pr_degenerate(self):
        assert auc_pr([]) == 0.0
        assert auc_pr([point(1, 1, 0.5, 0.5)]) == 0.0

    def test_auc_keeps_best_precision_per_recall(self):
        points = [point(1, 1, 0.2, 0.5), point(2, 2, 0.8, 0.5), point(3, 3, 0.6, 1.0)]
        value = auc_pr(points)
        assert value == pytest.approx((0.8 + 0.6) / 2 * 0.5)

    def test_best_f1(self):
        points = [point(1, 1, 1.0, 0.1), point(2, 5, 0.6, 0.6)]
        assert best_f1(points).threshold == 2
        assert best_f1([]) is None

    def test_precision_at_recall(self):
        points = [point(1, 1, 0.9, 0.2), point(2, 5, 0.5, 0.6)]
        assert precision_at_recall(points, 0.5) == pytest.approx(0.5)
        assert precision_at_recall(points, 0.9) == 0.0


@given(
    st.lists(st.floats(0, 1, allow_nan=False), min_size=5, max_size=60),
    st.lists(st.booleans(), min_size=5, max_size=60),
)
@settings(max_examples=60, deadline=None)
def test_pr_curve_points_always_bounded(scores, truth):
    n = min(len(scores), len(truth))
    points = pr_curve_from_scores(np.array(scores[:n]), np.array(truth[:n]))
    for p in points:
        assert 0.0 <= p.precision <= 1.0
        assert 0.0 <= p.recall <= 1.0
        assert 0.0 <= p.f1 <= 1.0
        assert 0 <= p.n_detected <= n


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_recall_monotone_as_threshold_loosens(data):
    n = data.draw(st.integers(10, 60))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    scores = rng.random(n)
    truth = rng.random(n) < 0.3
    points = pr_curve_from_scores(scores, truth)
    recalls = [p.recall for p in points]
    assert recalls == sorted(recalls)


class TestPrecisionAtK:
    def test_counts_hits_in_top_k(self):
        ranked = [5, 3, 9, 1, 7]
        assert precision_at_k(ranked, {5, 9}, 3) == pytest.approx(2 / 3)
        assert precision_at_k(ranked, {5, 9}, 5) == pytest.approx(2 / 5)

    def test_short_ranking_still_divides_by_k(self):
        # standard definition: unranked slots count as misses, keeping the
        # score comparable across detectors with different ranking lengths
        assert precision_at_k([4, 2], {4}, 10) == pytest.approx(1 / 10)

    def test_empty_ranking_scores_zero(self):
        assert precision_at_k([], {1, 2}, 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], {1}, 0)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=40, unique=True),
        st.sets(st.integers(0, 50), max_size=20),
        st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_a_fraction(self, ranked, truth, k):
        value = precision_at_k(ranked, truth, k)
        assert 0.0 <= value <= 1.0
        hits = sum(1 for label in ranked[:k] if label in truth)
        assert value == pytest.approx(hits / k)
