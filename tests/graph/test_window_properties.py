"""Property-based tests (hypothesis) for the rolling-window layer.

Two contracts the windowed refactor stands on:

* **membership stability** — stripe-hash sample membership is keyed by
  original append id, so expiring, retracting or compacting *other*
  edges never moves a surviving edge between ensemble members;
* **replay equivalence** — streaming batches through a windowed
  accumulator (append + retract + expire) lands on exactly the graph you
  get by appending everything and then removing the dead append ids —
  bitwise, for random streams and for every registered scenario
  generator.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphAccumulator, WindowConfig
from repro.sampling import StableEdgeSampler
from repro.sampling.base import materialize_plan, resolve_rng
from repro.scenarios import BatchKind, SCENARIO_NAMES, make_scenario

N_SAMPLES = 4


@st.composite
def batch_streams(draw, max_batches=6, max_batch_size=12):
    """Random append streams over a small label universe."""
    n_batches = draw(st.integers(2, max_batches))
    batches = []
    for _ in range(n_batches):
        size = draw(st.integers(1, max_batch_size))
        users = draw(
            st.lists(st.integers(0, 15), min_size=size, max_size=size)
        )
        merchants = draw(
            st.lists(st.integers(0, 9), min_size=size, max_size=size)
        )
        batches.append((np.asarray(users), np.asarray(merchants)))
    return batches


def _memberships(sampler, window, n_samples, seed):
    """Per-member sets of live append ids, via the stripe-hash tables."""
    key = sampler.derive_key(resolve_rng(seed))
    inclusion = sampler.stripe_inclusion(
        sampler.n_stripes(window.watermark), n_samples, key
    )
    live_ids = window.edge_ids[window.alive]
    return [
        set(live_ids[inclusion[member][live_ids // sampler.stripe]].tolist())
        for member in range(n_samples)
    ]


@given(
    stream=batch_streams(),
    keep=st.integers(1, 3),
    stripe=st.sampled_from([1, 4, 16]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_survivor_membership_invariant_under_expiry(stream, keep, stripe, seed):
    sampler = StableEdgeSampler(0.5, stripe=stripe)
    acc = GraphAccumulator(window=WindowConfig(max_batches=keep))
    for users, merchants in stream:
        acc.append(users, merchants)
    before = _memberships(sampler, acc.window(), N_SAMPLES, seed)

    expired = set(acc.expire().tolist())
    after = _memberships(sampler, acc.window(), N_SAMPLES, seed)

    for member_before, member_after in zip(before, after):
        # exactly the expired ids left; no survivor changed membership
        assert member_after == member_before - expired


@given(
    stream=batch_streams(),
    keep=st.integers(1, 3),
    stripe=st.sampled_from([1, 4, 16]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_materialized_members_survive_compaction_bitwise(stream, keep, stripe, seed):
    sampler = StableEdgeSampler(0.5, stripe=stripe)
    acc = GraphAccumulator(window=WindowConfig(max_batches=keep))
    for users, merchants in stream:
        acc.append(users, merchants)
    acc.expire()

    key = sampler.derive_key(resolve_rng(seed))
    inclusion = sampler.stripe_inclusion(
        sampler.n_stripes(acc.window().watermark), N_SAMPLES, key
    )
    plans = [sampler.stripe_plan(inclusion[m]) for m in range(N_SAMPLES)]
    window = acc.window()
    before = [
        materialize_plan(window.graph, plan, window.edge_window()) for plan in plans
    ]
    acc.compact()
    window = acc.window()
    after = [
        materialize_plan(window.graph, plan, window.edge_window()) for plan in plans
    ]
    for sub_before, sub_after in zip(before, after):
        assert sub_after == sub_before
        assert np.array_equal(sub_after.edge_users, sub_before.edge_users)
        assert np.array_equal(sub_after.edge_merchants, sub_before.edge_merchants)
        assert np.array_equal(sub_after.user_labels, sub_before.user_labels)
        assert np.array_equal(sub_after.merchant_labels, sub_before.merchant_labels)


@given(stream=batch_streams(), keep=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_windowed_stream_equals_append_then_remove(stream, keep):
    """accumulate+expire ≡ append everything, then drop the dead ids."""
    windowed = GraphAccumulator(window=WindowConfig(max_batches=keep))
    dead: list[int] = []
    for users, merchants in stream:
        windowed.append(users, merchants)
        dead.extend(windowed.expire().tolist())

    plain = GraphAccumulator()
    for users, merchants in stream:
        plain.append(users, merchants)
    # append ids are positions in the append-only log, so the dead ids
    # index the plain graph's edge rows directly
    expected = plain.graph().remove_edges(np.asarray(sorted(dead), dtype=np.int64))

    live = windowed.live_graph()
    assert live == expected
    assert np.array_equal(live.edge_users, expected.edge_users)
    assert np.array_equal(live.edge_merchants, expected.edge_merchants)
    assert np.array_equal(live.user_labels, expected.user_labels)
    assert np.array_equal(live.merchant_labels, expected.merchant_labels)


@given(
    name=st.sampled_from(SCENARIO_NAMES),
    seed=st.integers(0, 2**16),
    # keep >= 4 so attack_cleanup's CLEANUP batch always finds its attack
    # edges still live (retracting an expired edge is a GraphError)
    keep=st.integers(4, 6),
)
@settings(max_examples=30, deadline=None)
def test_every_generator_replays_bitwise_through_a_window(name, seed, keep):
    """Windowed replay of every registry scenario ≡ live window from scratch.

    CLEANUP batches retract; everything else appends and then expires.
    The reference is the append-only accumulation of the same stream with
    the dead append ids (expired + retracted) removed.
    """
    result = make_scenario(name).generate(intensity=1.0, scale=0.08, seed=seed)

    windowed = GraphAccumulator(window=WindowConfig(max_batches=keep))
    dead: list[int] = []
    for batch, kind in zip(result.batches, result.batch_kinds):
        if kind == BatchKind.CLEANUP:
            dead.extend(windowed.retract(batch.users, batch.merchants).tolist())
        else:
            windowed.append(batch.users, batch.merchants, batch.weights)
            dead.extend(windowed.expire().tolist())
        windowed.maybe_compact()

    plain = GraphAccumulator()
    for batch, kind in zip(result.batches, result.batch_kinds):
        if kind != BatchKind.CLEANUP:
            plain.append(batch.users, batch.merchants, batch.weights)
    expected = plain.graph().remove_edges(np.asarray(sorted(dead), dtype=np.int64))

    live = windowed.live_graph()
    assert live == expected
    assert np.array_equal(live.edge_users, expected.edge_users)
    assert np.array_equal(live.edge_merchants, expected.edge_merchants)
    assert np.array_equal(live.user_labels, expected.user_labels)
    assert np.array_equal(live.merchant_labels, expected.merchant_labels)
