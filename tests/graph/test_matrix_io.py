"""Unit tests for matrix conversion and file IO."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError, GraphValidationError
from repro.graph import (
    BipartiteGraph,
    from_scipy,
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
    to_dense,
    to_scipy,
)


class TestMatrixConversion:
    def test_to_scipy_shape_and_sum(self, tiny_graph):
        matrix = to_scipy(tiny_graph)
        assert matrix.shape == (4, 3)
        assert matrix.sum() == tiny_graph.n_edges

    def test_to_scipy_binary_clips(self):
        graph = BipartiteGraph(1, 1, [0, 0], [0, 0])  # parallel edges
        matrix = to_scipy(graph, binary=True)
        assert matrix.toarray().tolist() == [[1.0]]

    def test_parallel_edges_sum_weights(self):
        graph = BipartiteGraph(1, 1, [0, 0], [0, 0], edge_weights=[2.0, 3.0])
        assert to_scipy(graph).toarray().tolist() == [[5.0]]

    def test_from_scipy_roundtrip_structure(self, tiny_graph):
        back = from_scipy(to_scipy(tiny_graph))
        assert back.n_users == tiny_graph.n_users
        assert back.n_merchants == tiny_graph.n_merchants
        assert back.n_edges == tiny_graph.n_edges

    def test_from_scipy_drops_explicit_zeros(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        graph = from_scipy(matrix)
        assert graph.n_edges == 1

    def test_from_scipy_keeps_nonunit_weights(self):
        matrix = sp.csr_matrix(np.array([[2.5]]))
        graph = from_scipy(matrix)
        assert graph.edge_weights.tolist() == [2.5]

    def test_to_dense_guard(self):
        graph = BipartiteGraph.empty(5000, 5000)
        with pytest.raises(GraphValidationError):
            to_dense(graph, max_cells=1000)

    def test_to_dense_small(self, tiny_graph):
        dense = to_dense(tiny_graph)
        assert dense.shape == (4, 3)
        assert dense[0, 0] == 1.0


class TestEdgeListIO:
    def test_roundtrip_unweighted(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        save_edge_list(tiny_graph, path)
        back = load_edge_list(path)
        assert back.n_edges == tiny_graph.n_edges
        assert set(back.user_labels.tolist()) <= set(range(4))

    def test_roundtrip_weighted(self, tmp_path):
        graph = BipartiteGraph(2, 2, [0, 1], [0, 1], edge_weights=[1.5, 2.5])
        path = tmp_path / "weighted.tsv"
        save_edge_list(graph, path)
        back = load_edge_list(path)
        assert back.is_weighted
        assert sorted(back.edge_weights.tolist()) == [1.5, 2.5]

    def test_labels_written_not_local_indices(self, tiny_graph, tmp_path):
        sub = tiny_graph.edge_subgraph([5])  # the (3, 2) edge
        path = tmp_path / "sub.tsv"
        save_edge_list(sub, path)
        content = path.read_text()
        assert "3\t2" in content

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t0\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad2.tsv"
        path.write_text("# bipartite users=1 merchants=1 edges=1 weighted=0\nonly-one-column\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "sparse.tsv"
        path.write_text(
            "# bipartite users=2 merchants=1 edges=1 weighted=0\n\n# comment\n1\t4\n"
        )
        graph = load_edge_list(path)
        assert graph.n_edges == 1
        assert graph.user_labels.tolist() == [1]
        assert graph.merchant_labels.tolist() == [4]


class TestNpzIO:
    def test_roundtrip_exact(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(tiny_graph, path)
        back = load_npz(path)
        assert back == tiny_graph

    def test_roundtrip_weighted_with_labels(self, tmp_path):
        graph = BipartiteGraph(
            2, 2, [0, 1], [1, 0],
            edge_weights=[0.5, 0.25],
            user_labels=[10, 20],
            merchant_labels=[30, 40],
        )
        path = tmp_path / "labelled.npz"
        save_npz(graph, path)
        assert load_npz(path) == graph
