"""Tests for one-mode bipartite projections."""

from __future__ import annotations

import numpy as np

from repro.graph import (
    BipartiteGraph,
    co_purchase_counts,
    project_merchants,
    project_users,
)


def shared_merchant_graph() -> BipartiteGraph:
    """Users 0,1 share merchants 0 and 1; user 2 shares merchant 1 with both."""
    return BipartiteGraph.from_edges(
        [(0, 0), (1, 0), (0, 1), (1, 1), (2, 1)], n_users=3, n_merchants=2
    )


class TestProjectUsers:
    def test_shared_counts(self):
        projection = project_users(shared_merchant_graph())
        assert projection[0, 1] == 2  # two shared merchants
        assert projection[0, 2] == 1
        assert projection[1, 2] == 1

    def test_diagonal_removed(self):
        projection = project_users(shared_merchant_graph())
        assert projection.diagonal().sum() == 0

    def test_symmetry(self):
        projection = project_users(shared_merchant_graph())
        assert (projection != projection.T).nnz == 0

    def test_merchant_degree_cap(self):
        # merchant 1 has degree 3; capping at 2 removes it from the projection
        projection = project_users(shared_merchant_graph(), max_merchant_degree=2)
        assert projection[0, 2] == 0
        assert projection[0, 1] == 1  # only merchant 0 remains shared

    def test_fraud_ring_forms_clique(self, planted_graph):
        graph, injection = planted_graph
        projection = project_users(graph)
        ring = injection.fraud_user_labels
        # in-block: every pair of the 15 ring users shares several merchants
        sub = projection[np.ix_(ring, ring)]
        n = ring.size
        density = sub.nnz / (n * (n - 1))
        assert density > 0.9


class TestProjectMerchants:
    def test_shared_buyers(self):
        projection = project_merchants(shared_merchant_graph())
        assert projection[0, 1] == 2  # merchants 0 and 1 share users 0 and 1

    def test_user_degree_cap(self):
        projection = project_merchants(shared_merchant_graph(), max_user_degree=1)
        # users 0 and 1 have degree 2, dropped; user 2 has degree 1 but buys
        # from only one merchant -> no co-purchases remain
        assert projection.nnz == 0


class TestCoPurchaseCounts:
    def test_counts_match_projection(self):
        graph = shared_merchant_graph()
        counts = co_purchase_counts(graph, 0)
        assert counts == {1: 2, 2: 1}

    def test_isolated_user(self):
        graph = BipartiteGraph.from_edges([(0, 0)], n_users=2, n_merchants=1)
        assert co_purchase_counts(graph, 1) == {}
