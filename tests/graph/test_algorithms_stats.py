"""Unit tests for graph algorithms and statistics."""

from __future__ import annotations

import numpy as np

from repro.graph import (
    BipartiteGraph,
    connected_components,
    core_numbers,
    degree_gini,
    degree_histogram,
    describe,
    edge_density,
    k_core,
    largest_component,
)


class TestConnectedComponents:
    def test_single_component(self, clique_graph):
        user_comp, merchant_comp, n = connected_components(clique_graph)
        assert n == 1
        assert set(user_comp.tolist()) == {0}
        assert set(merchant_comp.tolist()) == {0}

    def test_two_components(self):
        graph = BipartiteGraph.from_edges([(0, 0), (1, 1)], n_users=2, n_merchants=2)
        _, _, n = connected_components(graph)
        assert n == 2

    def test_isolated_nodes_are_own_components(self):
        graph = BipartiteGraph.from_edges([(0, 0)], n_users=2, n_merchants=2)
        _, _, n = connected_components(graph)
        assert n == 3  # the edge pair + isolated user + isolated merchant

    def test_empty_graph(self):
        graph = BipartiteGraph.empty(0, 0)
        user_comp, merchant_comp, n = connected_components(graph)
        assert n == 0
        assert user_comp.size == 0

    def test_largest_component_picks_most_edges(self):
        edges = [(0, 0), (0, 1), (1, 0), (1, 1)] + [(2, 2)]
        graph = BipartiteGraph.from_edges(edges, n_users=3, n_merchants=3)
        largest = largest_component(graph)
        assert largest.n_edges == 4
        assert set(largest.user_labels.tolist()) == {0, 1}

    def test_largest_component_empty_graph(self):
        graph = BipartiteGraph.empty(2, 2)
        assert largest_component(graph) is graph


class TestCoreNumbers:
    def test_clique_core(self, clique_graph):
        user_core, merchant_core = core_numbers(clique_graph)
        # 5x4 biclique: users have degree 4, merchants 5 -> core number 4
        assert user_core.tolist() == [4] * 5
        assert merchant_core.tolist() == [4] * 4

    def test_path_core_is_one(self):
        graph = BipartiteGraph.from_edges([(0, 0), (1, 0), (1, 1)], n_users=2, n_merchants=2)
        user_core, merchant_core = core_numbers(graph)
        assert max(user_core.max(), merchant_core.max()) == 1

    def test_k_core_extraction(self, clique_graph):
        core = k_core(clique_graph, 4)
        assert core.n_edges == clique_graph.n_edges
        empty = k_core(clique_graph, 5)
        assert empty.is_empty

    def test_core_with_pendant(self):
        # clique plus a pendant user
        edges = [(u, v) for u in range(3) for v in range(3)] + [(3, 0)]
        graph = BipartiteGraph.from_edges(edges, n_users=4, n_merchants=3)
        user_core, _ = core_numbers(graph)
        assert user_core[3] == 1
        assert user_core[0] == 3
        assert k_core(graph, 2).n_users == 3


class TestStats:
    def test_describe_counts(self, tiny_graph):
        stats = describe(tiny_graph)
        assert stats.n_users == 4
        assert stats.n_edges == 6
        assert stats.avg_user_degree == 1.5
        assert stats.avg_merchant_degree == 2.0
        assert stats.isolated_users == 0

    def test_describe_empty(self):
        stats = describe(BipartiteGraph.empty(2, 3))
        assert stats.avg_user_degree == 0.0
        assert stats.isolated_users == 2
        assert stats.edge_density == 0.0

    def test_edge_density_clique(self, clique_graph):
        assert edge_density(clique_graph) == 1.0

    def test_describe_as_row_keys(self, tiny_graph):
        row = describe(tiny_graph).as_row()
        assert {"users", "merchants", "edges"} <= set(row)

    def test_degree_histogram(self, tiny_graph):
        hist = degree_histogram(tiny_graph.user_degrees())
        assert hist == {1: 2, 2: 2}

    def test_degree_histogram_empty(self):
        assert degree_histogram(np.array([], dtype=np.int64)) == {}

    def test_gini_uniform_is_zero(self):
        assert degree_gini(np.full(100, 5)) == 0.0

    def test_gini_concentrated_is_high(self):
        degrees = np.zeros(100)
        degrees[0] = 1000
        assert degree_gini(degrees) > 0.9

    def test_gini_empty_and_zero(self):
        assert degree_gini(np.array([])) == 0.0
        assert degree_gini(np.zeros(5)) == 0.0
