"""Unit tests for the core BipartiteGraph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph import BipartiteGraph


class TestConstruction:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.n_users == 4
        assert tiny_graph.n_merchants == 3
        assert tiny_graph.n_edges == 6
        assert tiny_graph.n_nodes == 7

    def test_default_labels_are_arange(self, tiny_graph):
        assert np.array_equal(tiny_graph.user_labels, np.arange(4))
        assert np.array_equal(tiny_graph.merchant_labels, np.arange(3))

    def test_empty_graph(self):
        graph = BipartiteGraph.empty(3, 2)
        assert graph.is_empty
        assert graph.n_edges == 0
        assert graph.n_nodes == 5

    def test_from_edges_infers_sizes(self):
        graph = BipartiteGraph.from_edges([(2, 5)])
        assert graph.n_users == 3
        assert graph.n_merchants == 6

    def test_from_edges_empty(self):
        graph = BipartiteGraph.from_edges([])
        assert graph.n_users == 0
        assert graph.n_merchants == 0
        assert graph.is_empty

    def test_from_edges_deduplicate(self):
        graph = BipartiteGraph.from_edges([(0, 0), (0, 0), (0, 1)], deduplicate=True)
        assert graph.n_edges == 2

    def test_out_of_range_user_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph(1, 1, [1], [0])

    def test_out_of_range_merchant_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph(1, 1, [0], [5])

    def test_negative_index_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph(2, 2, [-1], [0])

    def test_mismatched_endpoint_arrays_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph(2, 2, [0, 1], [0])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph(2, 2, [0], [0], edge_weights=[1.0, 2.0])

    def test_mismatched_labels_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph(2, 2, [0], [0], user_labels=[7])

    def test_negative_partition_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph(-1, 2, [], [])

    def test_equality(self, tiny_graph):
        clone = BipartiteGraph(
            4, 3, tiny_graph.edge_users.copy(), tiny_graph.edge_merchants.copy()
        )
        assert tiny_graph == clone

    def test_inequality_different_edges(self, tiny_graph):
        other = BipartiteGraph.from_edges([(0, 0)], n_users=4, n_merchants=3)
        assert tiny_graph != other

    def test_equality_non_graph(self, tiny_graph):
        assert tiny_graph != "not a graph"


class TestDegrees:
    def test_user_degrees(self, tiny_graph):
        assert tiny_graph.user_degrees().tolist() == [2, 1, 1, 2]

    def test_merchant_degrees(self, tiny_graph):
        assert tiny_graph.merchant_degrees().tolist() == [2, 2, 2]

    def test_degrees_sum_to_edges(self, tiny_graph):
        assert tiny_graph.user_degrees().sum() == tiny_graph.n_edges
        assert tiny_graph.merchant_degrees().sum() == tiny_graph.n_edges

    def test_weighted_degrees_default_ones(self, tiny_graph):
        assert np.allclose(
            tiny_graph.weighted_user_degrees(), tiny_graph.user_degrees().astype(float)
        )

    def test_weighted_degrees_with_weights(self):
        graph = BipartiteGraph(2, 1, [0, 1], [0, 0], edge_weights=[2.0, 0.5])
        assert np.allclose(graph.weighted_user_degrees(), [2.0, 0.5])
        assert np.allclose(graph.weighted_merchant_degrees(), [2.5])

    def test_weights_or_ones_unweighted(self, tiny_graph):
        assert np.array_equal(tiny_graph.weights_or_ones(), np.ones(6))


class TestAdjacency:
    def test_user_adjacency_partitions_edges(self, tiny_graph):
        indptr, edge_index = tiny_graph.user_adjacency()
        assert indptr[-1] == tiny_graph.n_edges
        assert sorted(edge_index.tolist()) == list(range(6))

    def test_user_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.user_neighbors(0).tolist()) == [0, 1]
        assert sorted(tiny_graph.user_neighbors(3).tolist()) == [1, 2]

    def test_merchant_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.merchant_neighbors(0).tolist()) == [0, 1]

    def test_iter_edges(self, tiny_graph):
        edges = list(tiny_graph.iter_edges())
        assert len(edges) == 6
        assert (0, 0) in edges


class TestSubgraphs:
    def test_edge_subgraph_compacts_nodes(self, tiny_graph):
        sub = tiny_graph.edge_subgraph([3])  # edge (2, 2)
        assert sub.n_users == 1
        assert sub.n_merchants == 1
        assert sub.n_edges == 1
        assert sub.user_labels.tolist() == [2]
        assert sub.merchant_labels.tolist() == [2]

    def test_edge_subgraph_empty_selection(self, tiny_graph):
        sub = tiny_graph.edge_subgraph([])
        assert sub.is_empty
        assert sub.n_users == 0

    def test_edge_subgraph_out_of_range(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            tiny_graph.edge_subgraph([99])

    def test_edge_subgraph_keeps_weights(self):
        graph = BipartiteGraph(2, 2, [0, 1], [0, 1], edge_weights=[3.0, 4.0])
        sub = graph.edge_subgraph([1])
        assert sub.edge_weights.tolist() == [4.0]

    def test_induced_subgraph_both_sides(self, tiny_graph):
        sub = tiny_graph.induced_subgraph(users=[0, 1], merchants=[0])
        # edges (0,0) and (1,0) survive
        assert sub.n_edges == 2
        assert set(sub.user_labels.tolist()) == {0, 1}
        assert set(sub.merchant_labels.tolist()) == {0}

    def test_induced_subgraph_none_keeps_side(self, tiny_graph):
        sub = tiny_graph.induced_subgraph(users=[0])
        assert sub.n_edges == 2  # both of user 0's edges
        assert set(sub.merchant_labels.tolist()) == {0, 1}

    def test_induced_keep_isolated(self, tiny_graph):
        sub = tiny_graph.induced_subgraph(
            users=[0, 2], merchants=[0, 1], keep_isolated=True
        )
        # user 2 only buys at merchant 2, so it is isolated here but kept
        assert sub.n_users == 2
        assert sub.n_merchants == 2
        assert sub.n_edges == 2

    def test_induced_drop_isolated(self, tiny_graph):
        sub = tiny_graph.induced_subgraph(users=[0, 2], merchants=[0, 1])
        assert sub.n_users == 1  # user 2 dropped
        assert set(sub.user_labels.tolist()) == {0}

    def test_label_propagation_through_two_levels(self, tiny_graph):
        first = tiny_graph.edge_subgraph([0, 1, 5])  # users {0, 3}
        second = first.edge_subgraph([2])  # the (3, 2) edge
        assert second.user_labels.tolist() == [3]
        assert second.merchant_labels.tolist() == [2]

    def test_remove_edges_keeps_nodes(self, tiny_graph):
        out = tiny_graph.remove_edges([0, 1])
        assert out.n_users == tiny_graph.n_users
        assert out.n_merchants == tiny_graph.n_merchants
        assert out.n_edges == 4

    def test_remove_all_edges(self, tiny_graph):
        out = tiny_graph.remove_edges(np.arange(6))
        assert out.is_empty
        assert out.n_nodes == tiny_graph.n_nodes

    def test_with_weights_roundtrip(self, tiny_graph):
        weighted = tiny_graph.with_weights(np.full(6, 2.0))
        assert weighted.is_weighted
        assert weighted.with_weights(None).edge_weights is None


class TestTrustedConstruction:
    def test_trusted_matches_validated(self, tiny_graph):
        trusted = BipartiteGraph._from_trusted(
            n_users=tiny_graph.n_users,
            n_merchants=tiny_graph.n_merchants,
            edge_users=tiny_graph.edge_users,
            edge_merchants=tiny_graph.edge_merchants,
            edge_weights=None,
            user_labels=tiny_graph.user_labels,
            merchant_labels=tiny_graph.merchant_labels,
        )
        assert trusted == tiny_graph
        assert np.array_equal(trusted.user_degrees(), tiny_graph.user_degrees())

    def test_subgraph_ops_still_validated_lazily(self, tiny_graph):
        # trusted-path subgraphs must behave identically to the originals
        sub = tiny_graph.edge_subgraph([0, 2, 3])
        rebuilt = BipartiteGraph(
            sub.n_users,
            sub.n_merchants,
            sub.edge_users,
            sub.edge_merchants,
            user_labels=sub.user_labels,
            merchant_labels=sub.merchant_labels,
        )
        assert sub == rebuilt

    def test_remove_edges_trusted_adjacency(self, tiny_graph):
        out = tiny_graph.remove_edges([0])
        indptr, edge_idx = out.user_adjacency()
        assert indptr[-1] == out.n_edges
        assert np.array_equal(np.sort(edge_idx), np.arange(out.n_edges))


class TestWeightCaches:
    def test_weights_or_ones_cached(self, tiny_graph):
        first = tiny_graph.weights_or_ones()
        assert first is tiny_graph.weights_or_ones()  # same instance, no realloc
        assert first.dtype == np.float64
        assert first.sum() == tiny_graph.n_edges

    def test_weights_or_ones_returns_weights_when_weighted(self, tiny_graph):
        weighted = tiny_graph.with_weights(np.full(6, 2.5))
        assert weighted.weights_or_ones() is weighted.edge_weights

    def test_weighted_degrees_unweighted_dtype_and_values(self, tiny_graph):
        degrees = tiny_graph.weighted_user_degrees()
        assert degrees.dtype == np.float64
        assert np.array_equal(degrees, tiny_graph.user_degrees().astype(np.float64))
        merchant = tiny_graph.weighted_merchant_degrees()
        assert merchant.dtype == np.float64
        assert np.array_equal(merchant, tiny_graph.merchant_degrees().astype(np.float64))

    def test_weighted_degrees_with_weights(self, tiny_graph):
        weighted = tiny_graph.with_weights(np.arange(1.0, 7.0))
        expected = np.bincount(
            weighted.edge_users, weights=weighted.edge_weights, minlength=weighted.n_users
        )
        assert np.allclose(weighted.weighted_user_degrees(), expected)
