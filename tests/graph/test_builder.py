"""Unit tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder


class TestGraphBuilder:
    def test_interns_keys_in_insertion_order(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "shop-z")
        builder.add_edge("bob", "shop-a")
        built = builder.build()
        assert built.user_keys == ["alice", "bob"]
        assert built.merchant_keys == ["shop-z", "shop-a"]
        assert built.user_index["bob"] == 1

    def test_repeat_keys_reuse_indices(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "shop-a")
        builder.add_edge("alice", "shop-b")
        built = builder.build()
        assert built.graph.n_users == 1
        assert built.graph.n_edges == 2

    def test_deduplicate(self):
        builder = GraphBuilder(deduplicate=True)
        builder.add_edge("alice", "shop-a")
        builder.add_edge("alice", "shop-a")
        assert builder.n_edges == 1

    def test_parallel_edges_kept_by_default(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "shop-a")
        builder.add_edge("alice", "shop-a")
        assert builder.n_edges == 2

    def test_weights_only_materialise_when_non_unit(self):
        builder = GraphBuilder()
        builder.add_edge("a", "x")
        built = builder.build()
        assert built.graph.edge_weights is None

        builder2 = GraphBuilder()
        builder2.add_edge("a", "x", weight=2.5)
        built2 = builder2.build()
        assert built2.graph.edge_weights.tolist() == [2.5]

    def test_isolated_nodes_allowed(self):
        builder = GraphBuilder()
        builder.add_user("lurker")
        builder.add_merchant("ghost-shop")
        builder.add_edge("alice", "shop-a")
        built = builder.build()
        assert built.graph.n_users == 2
        assert built.graph.n_merchants == 2
        assert built.graph.n_edges == 1

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "x"), ("b", "y"), ("a", "y")])
        assert builder.n_edges == 3
        assert builder.n_users == 2
        assert builder.n_merchants == 2

    def test_cannot_reuse_after_build(self):
        builder = GraphBuilder()
        builder.add_edge("a", "x")
        builder.build()
        with pytest.raises(GraphError):
            builder.add_edge("b", "y")
        with pytest.raises(GraphError):
            builder.build()

    def test_index_translation_helpers(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "shop-a")
        builder.add_edge("bob", "shop-b")
        built = builder.build()
        assert built.users_from_indices([1, 0]) == ["bob", "alice"]
        assert built.merchants_from_indices([0]) == ["shop-a"]

    def test_empty_build(self):
        built = GraphBuilder().build()
        assert built.graph.is_empty
        assert built.graph.n_users == 0
