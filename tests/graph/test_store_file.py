"""Unit tests for the file-backed GraphStore: save/open, compact dtypes,
int32 boundary guards, the streaming writer and the mmap fault point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, InjectedFault
from repro.faults import arm, disarm
from repro.graph import (
    BipartiteGraph,
    GraphStore,
    StoreFileWriter,
    StoreLayout,
    attached_store,
    detach_all,
    read_file_layout,
)
from repro.graph.store import INT32_MAX, _DATA_OFFSET


@pytest.fixture
def weighted_graph() -> BipartiteGraph:
    rng = np.random.default_rng(7)
    users = rng.integers(0, 60, size=500)
    merchants = rng.integers(0, 25, size=500)
    # half-integers: bit-exact in float32, so compact() narrows them
    weights = rng.integers(1, 64, size=500) / 2.0
    return BipartiteGraph(60, 25, users, merchants, edge_weights=weights)


def assert_same_columns(graph: BipartiteGraph, other: BipartiteGraph) -> None:
    assert (graph.n_users, graph.n_merchants) == (other.n_users, other.n_merchants)
    assert np.array_equal(graph.edge_users, other.edge_users)
    assert np.array_equal(graph.edge_merchants, other.edge_merchants)
    assert (graph.edge_weights is None) == (other.edge_weights is None)
    if graph.edge_weights is not None:
        assert np.array_equal(graph.edge_weights, other.edge_weights)
    assert np.array_equal(graph.user_labels, other.user_labels)
    assert np.array_equal(graph.merchant_labels, other.merchant_labels)


class TestSaveOpen:
    @pytest.mark.parametrize("mmap", [True, False])
    @pytest.mark.parametrize("compact", [True, False])
    def test_round_trip(self, tmp_path, weighted_graph, mmap, compact):
        path = tmp_path / "g.store"
        layout = GraphStore.from_graph(weighted_graph).save(path, compact=compact)
        assert layout.kind == "file"
        opened = GraphStore.open(path, mmap=mmap)
        assert_same_columns(weighted_graph, opened.to_graph())
        if compact:
            assert opened.edge_users.dtype == np.int32
            assert opened.edge_weights.dtype == np.float32
        else:
            assert opened.edge_users.dtype == np.int64
            assert opened.edge_weights.dtype == np.float64

    def test_open_is_read_only(self, tmp_path, weighted_graph):
        path = tmp_path / "g.store"
        GraphStore.from_graph(weighted_graph).save(path)
        opened = GraphStore.open(path)
        with pytest.raises(ValueError):
            opened.edge_users[0] = 1

    def test_unweighted_round_trip(self, tmp_path):
        graph = BipartiteGraph(5, 4, [0, 1, 2], [0, 1, 3])
        path = tmp_path / "g.store"
        GraphStore.from_graph(graph).save(path)
        assert_same_columns(graph, GraphStore.open(path).to_graph())

    def test_empty_graph_round_trip(self, tmp_path):
        graph = BipartiteGraph(3, 2, [], [])
        path = tmp_path / "g.store"
        GraphStore.from_graph(graph).save(path)
        opened = GraphStore.open(path)
        assert opened.n_edges == 0
        assert_same_columns(graph, opened.to_graph())

    def test_windowed_round_trip(self, tmp_path, weighted_graph):
        store = GraphStore.from_graph(weighted_graph)
        alive = np.ones(store.n_edges, dtype=bool)
        alive[::3] = False
        edge_ids = np.arange(store.n_edges, dtype=np.int64) * 2
        windowed = GraphStore(
            n_users=store.n_users,
            n_merchants=store.n_merchants,
            edge_users=store.edge_users,
            edge_merchants=store.edge_merchants,
            edge_weights=store.edge_weights,
            user_labels=store.user_labels,
            merchant_labels=store.merchant_labels,
            edge_ids=edge_ids,
            edge_alive=alive,
        )
        path = tmp_path / "w.store"
        layout = windowed.save(path)
        assert layout.windowed
        opened = GraphStore.open(path)
        window = opened.edge_window()
        assert np.array_equal(np.asarray(window.alive), alive)
        assert np.array_equal(np.asarray(window.edge_ids), edge_ids)

    def test_lossy_weights_stay_float64(self, tmp_path):
        graph = BipartiteGraph(4, 4, [0, 1], [0, 1], edge_weights=[0.1, 0.2])
        path = tmp_path / "g.store"
        layout = GraphStore.from_graph(graph).save(path)
        assert layout.weight_dtype == "float64"
        assert np.array_equal(GraphStore.open(path).edge_weights, [0.1, 0.2])

    def test_attached_store_caches_file_layouts(self, tmp_path, weighted_graph):
        path = tmp_path / "g.store"
        layout = GraphStore.from_graph(weighted_graph).save(path)
        try:
            first = attached_store(layout)
            second = attached_store(layout)
            assert first is second
            assert_same_columns(weighted_graph, first.to_graph())
        finally:
            detach_all()


class TestFileErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="does not exist"):
            GraphStore.open(tmp_path / "nope.store")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.store"
        path.write_bytes(b"this is not a graph store, honest" * 10)
        with pytest.raises(GraphError, match="bad magic"):
            GraphStore.open(path)

    def test_truncated_payload(self, tmp_path, weighted_graph):
        path = tmp_path / "g.store"
        GraphStore.from_graph(weighted_graph).save(path)
        with open(path, "r+b") as handle:
            handle.truncate(_DATA_OFFSET + 16)
        with pytest.raises(GraphError, match="truncated"):
            GraphStore.open(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "g.store"
        path.write_bytes(b"REPROGS1" + (1 << 20).to_bytes(8, "little") + b"{}")
        with pytest.raises(GraphError):
            read_file_layout(path)

    def test_mmap_open_fault_point(self, tmp_path, weighted_graph):
        path = tmp_path / "g.store"
        layout = GraphStore.from_graph(weighted_graph).save(path)
        arm("raise:point=mmap.open")
        try:
            with pytest.raises(InjectedFault):
                attached_store(layout)
        finally:
            disarm()
            detach_all()


class TestInt32Boundaries:
    def test_layout_rejects_overflowing_id_dtype(self):
        layout = StoreLayout(
            segment="x",
            n_users=INT32_MAX + 2,
            n_merchants=1,
            n_edges=0,
            weighted=False,
            id_dtype="int32",
        )
        with pytest.raises(GraphError, match="int32 node ids cannot address"):
            layout.validate()

    def test_layout_boundary_is_inclusive(self):
        # exactly 2**31 nodes: max index 2**31-1 still fits int32
        layout = StoreLayout(
            segment="x",
            n_users=INT32_MAX + 1,
            n_merchants=1,
            n_edges=0,
            weighted=False,
            id_dtype="int32",
        )
        layout.validate()

    def test_layout_rejects_unknown_dtype(self):
        layout = StoreLayout(
            segment="x",
            n_users=1,
            n_merchants=1,
            n_edges=0,
            weighted=False,
            id_dtype="int16",
        )
        with pytest.raises(GraphError):
            layout.validate()

    def test_writer_rejects_out_of_range_endpoints(self, tmp_path):
        with StoreFileWriter(tmp_path / "w.store", 4, 4, 2) as writer:
            with pytest.raises(GraphError, match="out-of-range"):
                writer.append(np.array([0, 9]), np.array([0, 1]))
            writer.append(np.array([0, 1]), np.array([0, 1]))

    def test_writer_rejects_count_overflow(self, tmp_path):
        with StoreFileWriter(tmp_path / "w.store", 4, 4, 1) as writer:
            with pytest.raises(GraphError, match="overflows the declared edge count"):
                writer.append(np.array([0, 1]), np.array([0, 1]))
            writer.append(np.array([0]), np.array([0]))

    def test_writer_rejects_int32_label_overflow(self, tmp_path):
        writer = StoreFileWriter(tmp_path / "w.store", 2, 2, 0, id_dtype="int32")
        try:
            with pytest.raises(GraphError, match="int32 label dtype"):
                writer.set_user_labels(np.array([0, INT32_MAX + 1]))
        finally:
            writer.abort()

    def test_writer_rejects_lossy_float32_weights(self, tmp_path):
        writer = StoreFileWriter(
            tmp_path / "w.store", 2, 2, 1, weighted=True, weight_dtype="float32"
        )
        try:
            with pytest.raises(GraphError, match="float32"):
                writer.append(np.array([0]), np.array([0]), np.array([0.1]))
        finally:
            writer.abort()


class TestStoreFileWriter:
    def test_chunked_write_matches_bulk_save(self, tmp_path, weighted_graph):
        bulk = tmp_path / "bulk.store"
        GraphStore.from_graph(weighted_graph).save(bulk)
        streamed = tmp_path / "streamed.store"
        with StoreFileWriter(
            streamed,
            n_users=weighted_graph.n_users,
            n_merchants=weighted_graph.n_merchants,
            n_edges=weighted_graph.n_edges,
            weighted=True,
            weight_dtype="float32",
        ) as writer:
            for start in range(0, weighted_graph.n_edges, 128):
                stop = min(start + 128, weighted_graph.n_edges)
                writer.append(
                    weighted_graph.edge_users[start:stop],
                    weighted_graph.edge_merchants[start:stop],
                    weighted_graph.edge_weights[start:stop],
                )
        assert_same_columns(
            GraphStore.open(bulk).to_graph(), GraphStore.open(streamed).to_graph()
        )

    def test_incomplete_writer_refuses_close(self, tmp_path):
        writer = StoreFileWriter(tmp_path / "w.store", 4, 4, 3)
        writer.append(np.array([0]), np.array([0]))
        with pytest.raises(GraphError, match="appended"):
            writer.close()
        writer.abort()

    def test_abort_removes_partial_file(self, tmp_path):
        path = tmp_path / "w.store"
        with pytest.raises(RuntimeError):
            with StoreFileWriter(path, 4, 4, 3) as writer:
                writer.append(np.array([0]), np.array([0]))
                raise RuntimeError("boom")
        assert not path.exists()

    def test_auto_id_dtype_narrows(self, tmp_path):
        with StoreFileWriter(tmp_path / "w.store", 10, 10, 1) as writer:
            writer.append(np.array([3]), np.array([4]))
        assert writer.layout.id_dtype == "int32"
