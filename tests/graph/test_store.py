"""Unit tests for the columnar GraphStore and its shared-memory lifecycle."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    BipartiteGraph,
    GraphStore,
    StoreLayout,
    attached_store,
    detach_all,
)


@pytest.fixture
def weighted_graph() -> BipartiteGraph:
    rng = np.random.default_rng(2)
    users = rng.integers(0, 50, size=400)
    merchants = rng.integers(0, 20, size=400)
    weights = rng.uniform(0.1, 3.0, size=400)
    return BipartiteGraph(50, 20, users, merchants, edge_weights=weights)


def assert_same_columns(graph: BipartiteGraph, other: BipartiteGraph) -> None:
    assert (graph.n_users, graph.n_merchants) == (other.n_users, other.n_merchants)
    assert np.array_equal(graph.edge_users, other.edge_users)
    assert np.array_equal(graph.edge_merchants, other.edge_merchants)
    assert (graph.edge_weights is None) == (other.edge_weights is None)
    if graph.edge_weights is not None:
        assert np.array_equal(graph.edge_weights, other.edge_weights)
    assert np.array_equal(graph.user_labels, other.user_labels)
    assert np.array_equal(graph.merchant_labels, other.merchant_labels)


class TestGraphStore:
    def test_from_graph_is_zero_copy(self, weighted_graph):
        store = GraphStore.from_graph(weighted_graph)
        assert store.edge_users is weighted_graph.edge_users
        assert store.edge_weights is weighted_graph.edge_weights

    def test_to_graph_round_trip(self, weighted_graph):
        round_tripped = GraphStore.from_graph(weighted_graph).to_graph()
        assert_same_columns(weighted_graph, round_tripped)

    def test_nbytes_accounts_for_all_columns(self, weighted_graph):
        store = GraphStore.from_graph(weighted_graph)
        expected = 8 * (400 + 400 + 50 + 20 + 400)
        assert store.nbytes == expected

    def test_layout_matches_nbytes(self, weighted_graph):
        store = GraphStore.from_graph(weighted_graph)
        shared = store.export_shared()
        try:
            assert shared.layout.nbytes == store.nbytes
            assert shared.layout.weighted
        finally:
            shared.dispose()

    def test_layout_is_small_and_picklable(self, weighted_graph):
        shared = GraphStore.from_graph(weighted_graph).export_shared()
        try:
            payload = pickle.dumps(shared.layout)
            assert len(payload) < 512
            assert pickle.loads(payload) == shared.layout
        finally:
            shared.dispose()


class TestSharedLifecycle:
    def test_export_attach_round_trip(self, weighted_graph):
        shared = GraphStore.from_graph(weighted_graph).export_shared()
        try:
            view = attached_store(shared.layout)
            assert_same_columns(weighted_graph, view.to_graph())
            for column in ("edge_users", "edge_merchants", "edge_weights"):
                assert not getattr(view, column).flags.writeable
        finally:
            detach_all()
            shared.dispose()

    def test_attach_is_cached_per_segment(self, weighted_graph):
        shared = GraphStore.from_graph(weighted_graph).export_shared()
        try:
            first = attached_store(shared.layout)
            assert attached_store(shared.layout) is first
        finally:
            detach_all()
            shared.dispose()

    def test_new_segment_evicts_previous_attachment(self, weighted_graph):
        first_shared = GraphStore.from_graph(weighted_graph).export_shared()
        second_shared = GraphStore.from_graph(weighted_graph).export_shared()
        try:
            attached_store(first_shared.layout)
            attached_store(second_shared.layout)
            from repro.graph.store import _ATTACHED

            assert list(_ATTACHED) == [second_shared.layout.segment]
        finally:
            detach_all()
            first_shared.dispose()
            second_shared.dispose()

    def test_attach_missing_segment_raises(self):
        layout = StoreLayout(
            segment="repro_gs_definitely_missing", n_users=1, n_merchants=1,
            n_edges=0, weighted=False,
        )
        with pytest.raises(GraphError, match="does not exist"):
            GraphStore.attach(layout)

    def test_dispose_removes_dev_shm_entry(self, weighted_graph):
        shared = GraphStore.from_graph(weighted_graph).export_shared()
        path = f"/dev/shm/{shared.layout.segment}"
        if os.path.isdir("/dev/shm"):
            assert os.path.exists(path)
        shared.dispose()
        assert shared.disposed
        assert not os.path.exists(path)

    def test_context_manager_disposes(self, weighted_graph):
        with GraphStore.from_graph(weighted_graph).export_shared() as shared:
            segment = shared.layout.segment
        assert not os.path.exists(f"/dev/shm/{segment}")

    def test_unweighted_and_empty_graphs_export(self):
        for graph in (
            BipartiteGraph.from_edges([(0, 0), (1, 1)]),
            BipartiteGraph.empty(3, 2),
        ):
            shared = GraphStore.from_graph(graph).export_shared()
            try:
                view = attached_store(shared.layout)
                assert_same_columns(graph, view.to_graph())
            finally:
                detach_all()
                shared.dispose()
