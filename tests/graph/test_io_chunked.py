"""Chunked/streaming IO: batch readers, accumulator, truncation guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    BipartiteGraph,
    GraphAccumulator,
    iter_edge_batches,
    iter_npz_batches,
    load_edge_list,
    load_edge_list_chunked,
    save_edge_list,
    save_npz,
)


def assert_graphs_bitwise_equal(a: BipartiteGraph, b: BipartiteGraph) -> None:
    assert (a.n_users, a.n_merchants) == (b.n_users, b.n_merchants)
    assert np.array_equal(a.edge_users, b.edge_users)
    assert np.array_equal(a.edge_merchants, b.edge_merchants)
    assert np.array_equal(a.user_labels, b.user_labels)
    assert np.array_equal(a.merchant_labels, b.merchant_labels)
    assert a.edge_users.dtype == b.edge_users.dtype
    assert (a.edge_weights is None) == (b.edge_weights is None)
    if a.edge_weights is not None:
        assert np.array_equal(a.edge_weights, b.edge_weights)


@pytest.fixture
def weighted_graph(rng):
    graph = BipartiteGraph.from_edges(
        [(int(u), int(v)) for u, v in zip(rng.integers(0, 40, 300), rng.integers(0, 25, 300))]
    )
    return graph.with_weights(rng.random(graph.n_edges) * 3.0)


@pytest.fixture
def large_label_graph(rng):
    """Non-contiguous, far-from-dense labels (db ids in the 1e12 range)."""
    base = BipartiteGraph.from_edges(
        [(int(u), int(v)) for u, v in zip(rng.integers(0, 30, 200), rng.integers(0, 20, 200))]
    )
    user_labels = np.sort(rng.choice(10**12, size=base.n_users, replace=False))
    merchant_labels = np.sort(rng.choice(10**12, size=base.n_merchants, replace=False))
    return BipartiteGraph(
        base.n_users,
        base.n_merchants,
        base.edge_users,
        base.edge_merchants,
        user_labels=user_labels,
        merchant_labels=merchant_labels,
    )


class TestChunkedLoader:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 10**6])
    def test_bitwise_equals_whole_file(self, tiny_graph, tmp_path, batch_size):
        path = tmp_path / "g.tsv"
        save_edge_list(tiny_graph, path)
        assert_graphs_bitwise_equal(
            load_edge_list(path), load_edge_list_chunked(path, batch_size=batch_size)
        )

    @pytest.mark.parametrize("batch_size", [3, 50, 10**6])
    def test_weighted_roundtrip(self, weighted_graph, tmp_path, batch_size):
        path = tmp_path / "w.tsv"
        save_edge_list(weighted_graph, path)
        whole = load_edge_list(path)
        chunked = load_edge_list_chunked(path, batch_size=batch_size)
        assert whole.is_weighted and chunked.is_weighted
        assert_graphs_bitwise_equal(whole, chunked)

    def test_large_noncontiguous_labels(self, large_label_graph, tmp_path):
        path = tmp_path / "big.tsv"
        save_edge_list(large_label_graph, path)
        whole = load_edge_list(path)
        chunked = load_edge_list_chunked(path, batch_size=17)
        assert_graphs_bitwise_equal(whole, chunked)
        assert whole.user_labels.max() > 10**10  # labels survived verbatim

    def test_batch_iteration_shapes(self, tiny_graph, tmp_path):
        path = tmp_path / "g.tsv"
        save_edge_list(tiny_graph, path)
        batches = list(iter_edge_batches(path, batch_size=4))
        assert [b.n_edges for b in batches] == [4, 2]
        assert all(b.weights is None for b in batches)

    def test_bad_batch_size_rejected(self, tiny_graph, tmp_path):
        path = tmp_path / "g.tsv"
        save_edge_list(tiny_graph, path)
        with pytest.raises(GraphError):
            list(iter_edge_batches(path, batch_size=0))


class TestTruncationGuard:
    def _truncated(self, graph, tmp_path):
        path = tmp_path / "full.tsv"
        save_edge_list(graph, path)
        lines = path.read_text().splitlines()
        short = tmp_path / "short.tsv"
        short.write_text("\n".join(lines[: 1 + graph.n_edges // 2]) + "\n")
        return short

    def test_whole_file_loader_rejects_truncation(self, tiny_graph, tmp_path):
        path = self._truncated(tiny_graph, tmp_path)
        with pytest.raises(GraphError, match="declares edges="):
            load_edge_list(path)

    def test_chunked_loader_rejects_truncation(self, tiny_graph, tmp_path):
        path = self._truncated(tiny_graph, tmp_path)
        with pytest.raises(GraphError, match="declares edges="):
            load_edge_list_chunked(path, batch_size=2)

    def test_extra_rows_rejected(self, tiny_graph, tmp_path):
        path = tmp_path / "extra.tsv"
        save_edge_list(tiny_graph, path)
        with path.open("a") as fh:
            fh.write("0\t0\n")
        with pytest.raises(GraphError, match="declares edges="):
            load_edge_list(path)

    def test_non_strict_tolerates_mismatch(self, tiny_graph, tmp_path):
        path = self._truncated(tiny_graph, tmp_path)
        batches = list(iter_edge_batches(path, strict=False))
        assert sum(b.n_edges for b in batches) == tiny_graph.n_edges // 2

    def test_malformed_count_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("# bipartite users=1 merchants=1 edges=abc weighted=0\n0\t0\n")
        with pytest.raises(GraphError, match="malformed edges="):
            load_edge_list(path)

    def test_header_without_count_still_loads(self, tmp_path):
        path = tmp_path / "old.tsv"
        path.write_text("# bipartite users=1 merchants=1 weighted=0\n0\t0\n")
        assert load_edge_list(path).n_edges == 1


class TestNpzBatches:
    def test_roundtrip_through_accumulator(self, weighted_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(weighted_graph, path)
        accumulator = GraphAccumulator()
        for batch in iter_npz_batches(path, batch_size=37):
            accumulator.append(batch.users, batch.merchants, batch.weights)
        rebuilt = accumulator.graph()
        assert rebuilt.n_edges == weighted_graph.n_edges
        assert np.array_equal(
            rebuilt.user_labels[rebuilt.edge_users],
            weighted_graph.user_labels[weighted_graph.edge_users],
        )
        assert np.array_equal(rebuilt.edge_weights, weighted_graph.edge_weights)


class TestGraphAccumulator:
    def test_append_returns_delta_range(self):
        acc = GraphAccumulator()
        assert acc.append([1, 2], [10, 11]) == (0, 2)
        assert acc.append([3], [10]) == (2, 3)
        assert acc.append([], []) == (3, 3)
        assert acc.n_edges == 3

    def test_interns_across_batches(self):
        acc = GraphAccumulator()
        acc.append([5, 7], [100, 200])
        acc.append([7, 9], [200, 300])
        graph = acc.graph()
        assert graph.n_users == 3 and graph.n_merchants == 3
        # user 7 / merchant 200 reuse their first-batch indices
        assert graph.edge_users.tolist() == [0, 1, 1, 2]
        assert graph.edge_merchants.tolist() == [0, 1, 1, 2]

    def test_snapshot_then_grow(self):
        acc = GraphAccumulator()
        acc.append([0, 1], [0, 1])
        first = acc.graph()
        acc.append([2], [0])
        second = acc.graph()
        assert first.n_edges == 2  # earlier snapshot is unaffected
        assert second.n_edges == 3
        assert np.array_equal(second.edge_users[:2], first.edge_users)

    def test_weighted_batch_after_unweighted_prefix(self):
        acc = GraphAccumulator()
        acc.append([0, 1], [0, 1])
        acc.append([2], [2], weights=[4.0])
        graph = acc.graph()
        assert graph.is_weighted
        assert graph.edge_weights.tolist() == [1.0, 1.0, 4.0]

    def test_from_graph_appends_in_label_space(self, tiny_graph):
        acc = GraphAccumulator.from_graph(tiny_graph)
        start, stop = acc.append([3, 10], [0, 99])
        assert (start, stop) == (tiny_graph.n_edges, tiny_graph.n_edges + 2)
        grown = acc.graph()
        assert grown.n_users == tiny_graph.n_users + 1  # label 10 is new
        assert grown.n_merchants == tiny_graph.n_merchants + 1  # label 99 is new
        assert np.array_equal(grown.edge_users[: tiny_graph.n_edges], tiny_graph.edge_users)
        # existing label 3 mapped to its existing index
        assert grown.edge_users[tiny_graph.n_edges] == 3

    def test_mismatched_batch_rejected(self):
        acc = GraphAccumulator()
        with pytest.raises(GraphError):
            acc.append([1, 2], [3])
        with pytest.raises(GraphError):
            acc.append([1], [3], weights=[1.0, 2.0])
