"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    BipartiteGraph,
    assert_subgraph_of,
    connected_components,
    core_numbers,
    from_scipy,
    to_scipy,
    validate_graph,
)


@st.composite
def bipartite_graphs(draw, max_users=12, max_merchants=10, max_edges=40):
    """Random small bipartite graphs (possibly with parallel edges)."""
    n_users = draw(st.integers(1, max_users))
    n_merchants = draw(st.integers(1, max_merchants))
    n_edges = draw(st.integers(0, max_edges))
    edge_users = draw(
        st.lists(st.integers(0, n_users - 1), min_size=n_edges, max_size=n_edges)
    )
    edge_merchants = draw(
        st.lists(st.integers(0, n_merchants - 1), min_size=n_edges, max_size=n_edges)
    )
    return BipartiteGraph(n_users, n_merchants, edge_users, edge_merchants)


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_degrees_sum_to_edge_count(graph):
    assert graph.user_degrees().sum() == graph.n_edges
    assert graph.merchant_degrees().sum() == graph.n_edges


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_adjacency_partitions_edge_set(graph):
    validate_graph(graph, require_unique_labels=True)


@given(bipartite_graphs(), st.randoms())
@settings(max_examples=60, deadline=None)
def test_edge_subgraph_always_subgraph(graph, random):
    if graph.is_empty:
        return
    k = random.randint(1, graph.n_edges)
    picked = random.sample(range(graph.n_edges), k)
    sub = graph.edge_subgraph(picked)
    assert sub.n_edges == k
    assert_subgraph_of(sub, graph)


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_remove_edges_complements_edge_subgraph(graph):
    if graph.is_empty:
        return
    half = np.arange(graph.n_edges // 2)
    removed = graph.remove_edges(half)
    assert removed.n_edges == graph.n_edges - half.size
    assert removed.n_nodes == graph.n_nodes


@given(bipartite_graphs())
@settings(max_examples=40, deadline=None)
def test_scipy_roundtrip_preserves_degree_multiset(graph):
    back = from_scipy(to_scipy(graph))
    # parallel edges collapse into weights, so compare weighted degrees
    assert np.allclose(
        np.sort(back.weighted_user_degrees()), np.sort(graph.weighted_user_degrees())
    )


@given(bipartite_graphs())
@settings(max_examples=40, deadline=None)
def test_component_labels_consistent_across_edges(graph):
    user_comp, merchant_comp, n = connected_components(graph)
    for u, v in graph.iter_edges():
        assert user_comp[u] == merchant_comp[v]
    if graph.n_nodes:
        assert n >= 1


@given(bipartite_graphs())
@settings(max_examples=40, deadline=None)
def test_core_numbers_bounded_by_degree(graph):
    user_core, merchant_core = core_numbers(graph)
    assert np.all(user_core <= graph.user_degrees())
    assert np.all(merchant_core <= graph.merchant_degrees())
