"""Unit tests for the rolling-window liveness layer.

Covers the :class:`WindowConfig` retention policy, the windowed
:class:`GraphAccumulator` verbs (append/retract/expire/compact), the
:class:`LiveWindow` snapshot invariants, and the persist/restore
round-trip (``window_state`` / ``restore_window``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import BipartiteGraph, GraphAccumulator, WindowConfig
from repro.graph.window import LiveWindow


def _windowed(config: WindowConfig) -> GraphAccumulator:
    return GraphAccumulator(window=config)


def _append_batch(acc, offset: int, size: int = 5, timestamp=None):
    users = np.arange(offset, offset + size, dtype=np.int64)
    merchants = np.arange(offset, offset + size, dtype=np.int64) % 3
    return acc.append(users, merchants, timestamp=timestamp)


class TestWindowConfig:
    def test_requires_a_bound(self):
        with pytest.raises(GraphError, match="max_batches and/or horizon"):
            WindowConfig()

    def test_rejects_nonpositive_batches(self):
        with pytest.raises(GraphError, match="max_batches"):
            WindowConfig(max_batches=0)

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(GraphError, match="horizon"):
            WindowConfig(horizon=0.0)

    def test_rejects_bad_compact_threshold(self):
        with pytest.raises(GraphError, match="compact_threshold"):
            WindowConfig(max_batches=2, compact_threshold=0.0)

    @pytest.mark.parametrize(
        "config",
        [
            WindowConfig(max_batches=3),
            WindowConfig(horizon=2.5),
            WindowConfig(max_batches=4, horizon=10.0, compact_threshold=0.25),
        ],
    )
    def test_dict_round_trip(self, config):
        assert WindowConfig.from_dict(config.as_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(GraphError, match="unknown window config keys"):
            WindowConfig.from_dict({"max_batches": 2, "ttl": 5})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(GraphError, match="mapping"):
            WindowConfig.from_dict([2, 3])


class TestWindowedAppend:
    def test_batch_ids_are_append_positions(self):
        acc = _windowed(WindowConfig(max_batches=4))
        assert _append_batch(acc, 0, size=5) == (0, 5)
        assert _append_batch(acc, 5, size=3) == (5, 8)
        window = acc.window()
        assert window.watermark == 8
        assert window.n_live == 8
        assert np.array_equal(window.edge_ids, np.arange(8, dtype=np.int64))
        assert window.alive.all()

    def test_timestamps_default_to_ordinal_time(self):
        acc = _windowed(WindowConfig(horizon=2.5))
        _append_batch(acc, 0, timestamp=10.0)
        _append_batch(acc, 5)  # defaults to 11.0
        _append_batch(acc, 10)  # defaults to 12.0
        expired = acc.expire()
        # horizon 2.5 behind newest (12.0) keeps 10.0 — nothing expires yet
        assert expired.size == 0
        _append_batch(acc, 15, timestamp=13.0)
        assert acc.expire().size == 5  # batch 0 (10.0 < 13.0 - 2.5) drops

    def test_timestamps_must_not_decrease(self):
        acc = _windowed(WindowConfig(horizon=5.0))
        _append_batch(acc, 0, timestamp=3.0)
        with pytest.raises(GraphError):
            _append_batch(acc, 5, timestamp=2.0)

    def test_timestamp_rejected_without_window(self):
        acc = GraphAccumulator()
        with pytest.raises(GraphError):
            _append_batch(acc, 0, timestamp=1.0)


class TestExpire:
    def test_batch_count_window_drops_oldest(self):
        acc = _windowed(WindowConfig(max_batches=2))
        for i in range(4):
            _append_batch(acc, 5 * i, size=5)
        expired = acc.expire()
        assert np.array_equal(expired, np.arange(10, dtype=np.int64))
        window = acc.window()
        assert window.n_live == 10
        assert not window.alive[:10].any() and window.alive[10:].all()
        # a second expire is idempotent
        assert acc.expire().size == 0

    def test_horizon_window_uses_tightest_bound(self):
        acc = _windowed(WindowConfig(max_batches=10, horizon=1.5))
        _append_batch(acc, 0, timestamp=0.0)
        _append_batch(acc, 5, timestamp=1.0)
        _append_batch(acc, 10, timestamp=2.0)
        expired = acc.expire()
        # 0.0 < 2.0 - 1.5: batch 0 is out despite max_batches allowing it
        assert np.array_equal(expired, np.arange(5, dtype=np.int64))

    def test_explicit_now_advances_the_clock(self):
        acc = _windowed(WindowConfig(horizon=1.0))
        _append_batch(acc, 0, timestamp=0.0)
        assert acc.expire().size == 0
        assert acc.expire(now=5.0).size == 5

    def test_expire_requires_window(self):
        acc = GraphAccumulator()
        with pytest.raises(GraphError):
            acc.expire()


class TestRetract:
    def _acc(self):
        acc = _windowed(WindowConfig(max_batches=8))
        acc.append([1, 1, 2], [7, 7, 8])
        return acc

    def test_retracts_oldest_live_copy(self):
        acc = self._acc()
        assert np.array_equal(acc.retract([1], [7]), np.array([0], dtype=np.int64))
        # the second copy of (1, 7) is still live
        assert acc.window().n_live == 2
        assert np.array_equal(acc.retract([1], [7]), np.array([1], dtype=np.int64))

    def test_duplicate_pairs_retract_two_oldest(self):
        acc = self._acc()
        assert np.array_equal(
            acc.retract([1, 1], [7, 7]), np.array([0, 1], dtype=np.int64)
        )

    def test_missing_pair_raises(self):
        acc = self._acc()
        with pytest.raises(GraphError, match=r"no live edge to retract for \(2, 7\)"):
            acc.retract([2], [7])

    def test_unknown_label_raises(self):
        acc = self._acc()
        with pytest.raises(GraphError, match="unknown user label"):
            acc.retract([99], [7])

    def test_retract_requires_window(self):
        acc = GraphAccumulator()
        acc.append([1], [2])
        with pytest.raises(GraphError):
            acc.retract([1], [2])


class TestCompact:
    def test_compact_preserves_ids_and_live_graph(self):
        acc = _windowed(WindowConfig(max_batches=2, compact_threshold=0.01))
        for i in range(4):
            _append_batch(acc, 5 * i, size=5)
        acc.expire()
        before = acc.live_graph()
        reclaimed = acc.compact()
        assert reclaimed == 10
        window = acc.window()
        assert np.array_equal(window.edge_ids, np.arange(10, 20, dtype=np.int64))
        assert window.watermark == 20
        after = acc.live_graph()
        assert after == before
        assert np.array_equal(after.edge_users, before.edge_users)
        assert np.array_equal(after.edge_merchants, before.edge_merchants)

    def test_compact_with_no_dead_rows_is_a_noop(self):
        acc = _windowed(WindowConfig(max_batches=4))
        _append_batch(acc, 0)
        assert acc.compact() == 0

    def test_maybe_compact_honours_threshold(self):
        acc = _windowed(WindowConfig(max_batches=1, compact_threshold=0.9))
        _append_batch(acc, 0, size=5)
        _append_batch(acc, 5, size=5)
        acc.expire()  # 50% dead < 90% threshold
        assert acc.maybe_compact() is False
        tight = _windowed(WindowConfig(max_batches=1, compact_threshold=0.25))
        _append_batch(tight, 0, size=5)
        _append_batch(tight, 5, size=5)
        tight.expire()
        assert tight.maybe_compact() is True
        assert tight.window().graph.n_edges == 5


class TestLiveWindow:
    def test_live_graph_filters_dead_rows(self):
        acc = _windowed(WindowConfig(max_batches=1))
        _append_batch(acc, 0, size=4)
        _append_batch(acc, 4, size=4)
        acc.expire()
        live = acc.live_graph()
        assert live.n_edges == 4
        # the node universe is preserved — labels keep their meaning
        assert live.n_users == acc.n_users

    def test_live_graph_is_the_stored_graph_when_all_alive(self):
        acc = _windowed(WindowConfig(max_batches=4))
        _append_batch(acc, 0)
        window = acc.window()
        assert window.live_graph() is window.graph

    def test_snapshot_is_isolated_from_later_mutation(self):
        acc = _windowed(WindowConfig(max_batches=1))
        _append_batch(acc, 0, size=4)
        snapshot = acc.window()
        _append_batch(acc, 4, size=4)
        acc.expire()
        assert snapshot.n_live == 4
        assert snapshot.watermark == 4

    def test_mask_validation(self):
        graph = BipartiteGraph(2, 2, [0, 1], [0, 1])
        with pytest.raises(GraphError, match="alive mask"):
            LiveWindow(
                graph=graph,
                alive=np.ones(3, dtype=bool),
                edge_ids=np.arange(2, dtype=np.int64),
                watermark=2,
            )
        with pytest.raises(GraphError, match="watermark"):
            LiveWindow(
                graph=graph,
                alive=np.ones(2, dtype=bool),
                edge_ids=np.arange(2, dtype=np.int64),
                watermark=1,
            )


class TestRestoreWindow:
    def _state(self):
        acc = _windowed(WindowConfig(max_batches=2))
        for i in range(3):
            _append_batch(acc, 5 * i, size=5)
        acc.expire()
        acc.retract([5], [2])
        return acc.window_state()

    def test_round_trip_restores_the_live_window(self):
        state = self._state()
        config = WindowConfig.from_dict(state["config"])
        acc = GraphAccumulator.restore_window(
            state["graph"],
            config,
            edge_ids=state["edge_ids"],
            watermark=state["watermark"],
            batches=state["batches"],
        )
        window = acc.window()
        assert window.watermark == state["watermark"]
        assert window.alive.all()
        assert np.array_equal(window.edge_ids, state["edge_ids"])
        assert acc.live_graph() == state["graph"]
        # the restored accumulator keeps rolling: another batch still expires
        _append_batch(acc, 40, size=5)
        assert acc.expire().size > 0

    def test_rejects_mismatched_edge_ids(self):
        state = self._state()
        config = WindowConfig.from_dict(state["config"])
        with pytest.raises(GraphError, match="edge_ids length"):
            GraphAccumulator.restore_window(
                state["graph"],
                config,
                edge_ids=state["edge_ids"][:-1],
                watermark=state["watermark"],
                batches=state["batches"],
            )

    def test_rejects_non_increasing_edge_ids(self):
        state = self._state()
        config = WindowConfig.from_dict(state["config"])
        ids = state["edge_ids"].copy()
        ids[0], ids[1] = ids[1], ids[0]
        with pytest.raises(GraphError, match="strictly increasing"):
            GraphAccumulator.restore_window(
                state["graph"],
                config,
                edge_ids=ids,
                watermark=state["watermark"],
                batches=state["batches"],
            )

    def test_rejects_watermark_below_newest_id(self):
        state = self._state()
        config = WindowConfig.from_dict(state["config"])
        with pytest.raises(GraphError, match="watermark"):
            GraphAccumulator.restore_window(
                state["graph"],
                config,
                edge_ids=state["edge_ids"],
                watermark=int(state["edge_ids"][-1]),
                batches=state["batches"],
            )

    def test_rejects_disordered_batch_records(self):
        state = self._state()
        config = WindowConfig.from_dict(state["config"])
        batches = [list(b) for b in state["batches"]][::-1]
        if len(batches) < 2:
            pytest.skip("need two batch records to disorder")
        with pytest.raises(GraphError, match="batch records"):
            GraphAccumulator.restore_window(
                state["graph"],
                config,
                edge_ids=state["edge_ids"],
                watermark=state["watermark"],
                batches=batches,
            )
