"""Unit tests for deep graph validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph import (
    BipartiteGraph,
    assert_subgraph_of,
    has_duplicate_edges,
    validate_graph,
)


class TestValidateGraph:
    def test_valid_graph_passes(self, tiny_graph):
        validate_graph(tiny_graph)

    def test_duplicate_labels_rejected(self):
        graph = BipartiteGraph(2, 1, [0, 1], [0, 0], user_labels=[5, 5])
        with pytest.raises(GraphValidationError, match="user_labels"):
            validate_graph(graph)

    def test_duplicate_labels_allowed_when_disabled(self):
        graph = BipartiteGraph(2, 1, [0, 1], [0, 0], user_labels=[5, 5])
        validate_graph(graph, require_unique_labels=False)

    def test_non_finite_weights_rejected(self):
        graph = BipartiteGraph(1, 1, [0], [0], edge_weights=[np.inf])
        with pytest.raises(GraphValidationError, match="non-finite"):
            validate_graph(graph)

    def test_negative_weights_rejected(self):
        graph = BipartiteGraph(1, 1, [0], [0], edge_weights=[-1.0])
        with pytest.raises(GraphValidationError, match="negative"):
            validate_graph(graph)


class TestDuplicateEdges:
    def test_no_duplicates(self, tiny_graph):
        assert not has_duplicate_edges(tiny_graph)

    def test_with_duplicates(self):
        graph = BipartiteGraph(1, 1, [0, 0], [0, 0])
        assert has_duplicate_edges(graph)

    def test_empty(self):
        assert not has_duplicate_edges(BipartiteGraph.empty(1, 1))


class TestSubgraphAssertion:
    def test_edge_subgraph_is_subgraph(self, tiny_graph):
        sub = tiny_graph.edge_subgraph([0, 3])
        assert_subgraph_of(sub, tiny_graph)

    def test_induced_subgraph_is_subgraph(self, tiny_graph):
        sub = tiny_graph.induced_subgraph(users=[0, 1])
        assert_subgraph_of(sub, tiny_graph)

    def test_foreign_nodes_rejected(self, tiny_graph):
        foreign = BipartiteGraph(1, 1, [0], [0], user_labels=[99])
        with pytest.raises(GraphValidationError, match="user labels"):
            assert_subgraph_of(foreign, tiny_graph)

    def test_foreign_edge_rejected(self, tiny_graph):
        # nodes exist in parent but the (1, 2) edge does not
        foreign = BipartiteGraph(
            1, 1, [0], [0], user_labels=[1], merchant_labels=[2]
        )
        with pytest.raises(GraphValidationError, match="edges"):
            assert_subgraph_of(foreign, tiny_graph)
