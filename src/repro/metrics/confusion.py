"""Precision / recall / F1 over detected-node sets (paper §V-B1).

The paper evaluates with F1, recall and precision over detected fraud PINs
against the blacklist (accuracy is explicitly dismissed because of class
imbalance — we follow suit and do not expose it prominently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Confusion", "confusion_from_sets"]


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts with derived rates.

    ``tn`` is optional (``-1`` when unknown) because set-based evaluation
    against a blacklist does not need it for P/R/F1.
    """

    tp: int
    fp: int
    fn: int
    tn: int = -1

    @property
    def n_detected(self) -> int:
        """Total positives predicted."""
        return self.tp + self.fp

    @property
    def precision(self) -> float:
        """``tp / (tp + fp)`` — 0 when nothing was detected."""
        detected = self.tp + self.fp
        return self.tp / detected if detected else 0.0

    @property
    def recall(self) -> float:
        """``tp / (tp + fn)`` — 0 when the truth set is empty."""
        positives = self.tp + self.fn
        return self.tp / positives if positives else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        """``fp / (fp + tn)`` — requires ``tn`` to be known."""
        if self.tn < 0:
            raise ValueError("false positive rate needs tn; construct with n_population")
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0

    def as_row(self) -> dict[str, float | int]:
        """Flat dict for report tables."""
        return {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "n_detected": self.n_detected,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
        }


def confusion_from_sets(
    detected: Iterable[int],
    truth: Iterable[int],
    n_population: int | None = None,
) -> Confusion:
    """Compare a detected label set against a ground-truth label set.

    ``n_population`` (total number of users) enables ``tn`` and hence FPR.
    """
    detected_set = set(int(x) for x in detected)
    truth_set = set(int(x) for x in truth)
    tp = len(detected_set & truth_set)
    fp = len(detected_set - truth_set)
    fn = len(truth_set - detected_set)
    if n_population is None:
        tn = -1
    else:
        tn = n_population - tp - fp - fn
        if tn < 0:
            raise ValueError(
                f"n_population={n_population} smaller than the union of detected and truth sets"
            )
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)
