"""Evaluation metrics and operating-curve utilities (paper §V-B1)."""

from .confusion import Confusion, confusion_from_sets
from .curves import (
    CurvePoint,
    auc_pr,
    best_f1,
    curve_from_detections,
    max_detected_gap,
    pr_curve_from_scores,
    precision_at_k,
    precision_at_recall,
)
from .evaluation import (
    detection_confusion,
    detection_curve,
    ensemble_threshold_curve,
    evaluate_detection,
    fraudar_block_curve,
    score_curve,
)
from .stability import detection_stability, f1_spread, jaccard, seed_sweep_stability

__all__ = [
    "Confusion",
    "confusion_from_sets",
    "CurvePoint",
    "pr_curve_from_scores",
    "curve_from_detections",
    "max_detected_gap",
    "auc_pr",
    "best_f1",
    "precision_at_recall",
    "precision_at_k",
    "detection_confusion",
    "detection_curve",
    "evaluate_detection",
    "ensemble_threshold_curve",
    "fraudar_block_curve",
    "score_curve",
    "jaccard",
    "detection_stability",
    "f1_spread",
    "seed_sweep_stability",
]
