"""Run-to-run stability measures (the paper's fourth claim, §V).

The paper argues EnsemFDet is *stable*: performance barely moves across
ensemble sizes, sample ratios and (implicitly) sampling randomness. These
helpers quantify that directly:

* :func:`jaccard` — overlap of two detection sets;
* :func:`detection_stability` — mean pairwise Jaccard of detections across
  independent seeds (1.0 = perfectly reproducible detections);
* :func:`f1_spread` — max−min best-F1 across a parameter sweep (the band
  width the Fig. 7/8 analysis reasons about).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from ..datasets import Blacklist
from ..ensemble import EnsemFDet, EnsemFDetConfig
from ..graph import BipartiteGraph
from .curves import best_f1
from .evaluation import ensemble_threshold_curve

__all__ = ["jaccard", "detection_stability", "f1_spread", "seed_sweep_stability"]


def jaccard(a: Iterable[int], b: Iterable[int]) -> float:
    """Jaccard similarity of two label sets (1.0 when both empty)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


def detection_stability(detections: Sequence[Iterable[int]]) -> float:
    """Mean pairwise Jaccard across detection sets from independent runs."""
    if len(detections) < 2:
        return 1.0
    sets = [set(d) for d in detections]
    pairs = list(combinations(range(len(sets)), 2))
    return float(np.mean([jaccard(sets[i], sets[j]) for i, j in pairs]))


def f1_spread(f1_values: Sequence[float]) -> float:
    """Band width of best-F1 across a sweep: ``max − min``."""
    if not f1_values:
        return 0.0
    return float(max(f1_values) - min(f1_values))


def seed_sweep_stability(
    graph: BipartiteGraph,
    blacklist: Blacklist,
    config: EnsemFDetConfig,
    seeds: Sequence[int],
    threshold: int,
) -> dict[str, float]:
    """Fit the same ensemble under several seeds and summarise stability.

    Returns ``{"detection_jaccard": ..., "f1_mean": ..., "f1_spread": ...}``
    where the Jaccard is over the detected user sets at the given threshold
    and the F1 statistics are over each run's best operating point.
    """
    detections: list[set[int]] = []
    f1_values: list[float] = []
    for seed in seeds:
        seeded = EnsemFDetConfig(
            sampler=config.sampler,
            n_samples=config.n_samples,
            fdet=config.fdet,
            executor=config.executor,
            n_workers=config.n_workers,
            seed=seed,
            track_appearances=config.track_appearances,
        )
        result = EnsemFDet(seeded).fit(graph)
        detections.append(result.detect(threshold).user_set())
        best = best_f1(ensemble_threshold_curve(result, blacklist))
        f1_values.append(best.f1 if best else 0.0)
    return {
        "detection_jaccard": detection_stability(detections),
        "f1_mean": float(np.mean(f1_values)) if f1_values else 0.0,
        "f1_spread": f1_spread(f1_values),
    }
