"""Operating-curve utilities: PR curves, F1-vs-size curves, smoothness.

Two curve sources appear in the paper:

* **threshold sweeps** — EnsemFDet's voting threshold ``T`` or a baseline's
  score threshold traces a (nearly) continuous curve;
* **block unions** — Fraudar's cumulative blocks give few, widely-spaced
  points (the "polyline" / diamond markers of Fig. 3–4).

The *practicability* argument of the paper is quantified here by
:func:`max_detected_gap`: the largest jump in ``#detected`` between adjacent
operating points — tens of thousands for Fraudar, ~continuous for
EnsemFDet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .confusion import Confusion, confusion_from_sets

__all__ = [
    "CurvePoint",
    "pr_curve_from_scores",
    "curve_from_detections",
    "max_detected_gap",
    "auc_pr",
    "best_f1",
    "precision_at_recall",
    "precision_at_k",
]


@dataclass(frozen=True)
class CurvePoint:
    """One operating point of a detector."""

    threshold: float
    n_detected: int
    precision: float
    recall: float
    f1: float

    def as_row(self) -> dict[str, float | int]:
        """Flat dict for report tables."""
        return {
            "threshold": self.threshold,
            "n_detected": self.n_detected,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
        }


def _point(threshold: float, confusion: Confusion) -> CurvePoint:
    return CurvePoint(
        threshold=float(threshold),
        n_detected=confusion.n_detected,
        precision=confusion.precision,
        recall=confusion.recall,
        f1=confusion.f1,
    )


def pr_curve_from_scores(
    scores: np.ndarray,
    truth_mask: np.ndarray,
    max_points: int = 200,
) -> list[CurvePoint]:
    """Sweep a score threshold over continuous suspiciousness scores.

    ``scores[i]`` is node ``i``'s suspiciousness, ``truth_mask[i]`` whether
    it is blacklisted. Thresholds are the unique score values (subsampled to
    ``max_points``); each point flags ``score >= threshold``. Points are
    returned from strictest (fewest detected) to loosest.
    """
    scores = np.asarray(scores, dtype=np.float64)
    truth_mask = np.asarray(truth_mask, dtype=bool)
    if scores.shape != truth_mask.shape:
        raise ValueError("scores and truth_mask must have identical shapes")
    total_truth = int(truth_mask.sum())

    order = np.argsort(-scores, kind="stable")
    sorted_truth = truth_mask[order]
    cumulative_tp = np.cumsum(sorted_truth)

    thresholds = np.unique(scores)[::-1]
    if thresholds.size > max_points:
        idx = np.linspace(0, thresholds.size - 1, max_points).astype(np.int64)
        thresholds = thresholds[idx]

    sorted_scores = scores[order]
    points: list[CurvePoint] = []
    for threshold in thresholds.tolist():
        n_detected = int(np.searchsorted(-sorted_scores, -threshold, side="right"))
        if n_detected == 0:
            continue
        tp = int(cumulative_tp[n_detected - 1])
        confusion = Confusion(tp=tp, fp=n_detected - tp, fn=total_truth - tp)
        points.append(_point(threshold, confusion))
    return points


def curve_from_detections(
    detections: Sequence[tuple[float, Iterable[int]]],
    truth: Iterable[int],
) -> list[CurvePoint]:
    """Build a curve from explicit ``(threshold, detected labels)`` pairs.

    Used both for EnsemFDet threshold sweeps (``threshold = T``) and for
    Fraudar block unions (``threshold = number of blocks``).
    """
    truth_set = set(int(x) for x in truth)
    points = []
    for threshold, labels in detections:
        confusion = confusion_from_sets(labels, truth_set)
        points.append(_point(threshold, confusion))
    return points


def max_detected_gap(points: Sequence[CurvePoint]) -> int:
    """Largest jump in ``n_detected`` between adjacent operating points.

    The paper's smoothness/practicability measure: Fraudar's spans reach
    ~20,000 PINs while EnsemFDet's stay near-continuous. Points are sorted
    by ``n_detected`` first; fewer than two points give 0.
    """
    if len(points) < 2:
        return 0
    sizes = sorted(point.n_detected for point in points)
    return int(max(b - a for a, b in zip(sizes, sizes[1:])))


def auc_pr(points: Sequence[CurvePoint]) -> float:
    """Area under the precision-recall curve (trapezoid over recall).

    Points are sorted by recall; duplicated recalls keep the best
    precision. Returns 0 for fewer than two distinct recall values.
    """
    if not points:
        return 0.0
    by_recall: dict[float, float] = {}
    for point in points:
        by_recall[point.recall] = max(by_recall.get(point.recall, 0.0), point.precision)
    recalls = np.array(sorted(by_recall), dtype=np.float64)
    precisions = np.array([by_recall[r] for r in recalls], dtype=np.float64)
    if recalls.size < 2:
        return 0.0
    return float(np.trapezoid(precisions, recalls))


def best_f1(points: Sequence[CurvePoint]) -> CurvePoint | None:
    """The operating point with maximal F1 (``None`` for an empty curve)."""
    if not points:
        return None
    return max(points, key=lambda point: point.f1)


def precision_at_recall(points: Sequence[CurvePoint], recall: float) -> float:
    """Best precision among points achieving at least ``recall``."""
    eligible = [point.precision for point in points if point.recall >= recall]
    return max(eligible, default=0.0)


def precision_at_k(
    ranked_labels: Sequence[int], truth: Iterable[int], k: int
) -> float:
    """Fraction of the ``k`` most-suspicious labels that are truly fraud.

    ``ranked_labels`` is a detector's ranking, most suspicious first (vote
    counts, block order, scores — any ranking). The denominator is always
    ``k`` (the standard definition): a ranking shorter than ``k`` pays for
    the labels it declined to rank, which keeps the score comparable
    across detectors whose rankings have different lengths.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    truth_set = set(int(label) for label in truth)
    hits = sum(1 for label in list(ranked_labels)[:k] if int(label) in truth_set)
    return hits / k
