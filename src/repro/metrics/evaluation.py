"""Evaluation harness: any :class:`~repro.detectors.Detection` → metrics.

The unified entry points are :func:`detection_curve` (a detection's full
operating curve) and :func:`evaluate_detection` (the flat summary row the
scenario harness and experiments consume: best F1 with its threshold,
AUC-PR, precision@k). They replace the per-method curve glue each consumer
used to hand-wire; the legacy per-family helpers
(:func:`ensemble_threshold_curve`, :func:`fraudar_block_curve`,
:func:`score_curve`) remain for callers that hold the native result types.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..datasets import Blacklist
from ..graph import BipartiteGraph
from .confusion import Confusion, confusion_from_sets
from .curves import (
    CurvePoint,
    auc_pr,
    best_f1,
    curve_from_detections,
    precision_at_k,
    pr_curve_from_scores,
)

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids a package cycle
    from ..baselines import FraudarResult
    from ..detectors import Detection
    from ..ensemble import EnsemFDetResult

__all__ = [
    "detection_confusion",
    "detection_curve",
    "evaluate_detection",
    "ensemble_threshold_curve",
    "fraudar_block_curve",
    "score_curve",
]


def detection_confusion(
    detected_users: np.ndarray,
    blacklist: Blacklist,
    n_population: int | None = None,
) -> Confusion:
    """Confusion of one fixed set of detected labels against the blacklist."""
    return confusion_from_sets(
        detected_users.tolist(), blacklist.labels, n_population=n_population
    )


def _subsample_points(
    points: tuple[tuple[float, np.ndarray], ...], max_points: int
) -> list[tuple[float, np.ndarray]]:
    """Thin discrete operating points to at most ``max_points``.

    Positions are subsampled with the same rounding rule as
    :func:`repro.experiments.common.threshold_grid`, so an ensemble's
    ``1..N`` threshold sweep thins exactly as the figure drivers always
    thinned it.
    """
    step = len(points) / max_points
    keep = sorted({int(round(1 + i * step)) for i in range(max_points)})
    return [points[i - 1] for i in keep if 1 <= i <= len(points)]


def detection_curve(
    detection: "Detection",
    blacklist: Blacklist,
    max_points: int | None = None,
) -> list[CurvePoint]:
    """Operating curve of any :class:`~repro.detectors.Detection`.

    Detectors with discrete ``operating_points`` (threshold sweeps, block
    unions) are evaluated point by point; score-based detections sweep a
    threshold over ``user_scores``. ``max_points`` caps the curve length
    (``None``: discrete points are kept in full, score sweeps default to
    200 thresholds).
    """
    if detection.operating_points is not None:
        points = detection.operating_points
        if max_points is not None and len(points) > max_points:
            points = _subsample_points(points, max_points)
        return curve_from_detections(
            [(threshold, labels.tolist()) for threshold, labels in points],
            blacklist.labels,
        )
    truth_mask = blacklist.mask(detection.user_labels)
    return pr_curve_from_scores(
        detection.user_scores, truth_mask, max_points=max_points or 200
    )


def evaluate_detection(
    detection: "Detection",
    blacklist: Blacklist,
    k: int = 50,
    max_curve_points: int | None = None,
) -> dict:
    """Flat operating-curve summary of one detection — the grid-cell row.

    Returns ``best_threshold`` / ``best_f1`` / ``precision`` / ``recall``
    / ``n_detected`` at the F1-optimal operating point, ``auc_pr`` over
    the whole curve, and ``precision_at_k`` over the detection's
    suspiciousness ranking (:meth:`~repro.detectors.Detection.ranking`).
    Integer-valued best thresholds (vote counts, block counts) are
    reported as ints, score thresholds as floats.
    """
    curve = detection_curve(detection, blacklist, max_points=max_curve_points)
    best = best_f1(curve)
    if best is None:
        threshold = 0
    else:
        threshold = (
            int(best.threshold)
            if float(best.threshold).is_integer()
            else round(float(best.threshold), 6)
        )
    return {
        "best_threshold": threshold,
        "best_f1": round(best.f1, 6) if best else 0.0,
        "precision": round(best.precision, 6) if best else 0.0,
        "recall": round(best.recall, 6) if best else 0.0,
        "n_detected": best.n_detected if best else 0,
        "auc_pr": round(auc_pr(curve), 6),
        "precision_at_k": round(
            precision_at_k(detection.ranking().tolist(), blacklist.labels, k), 6
        ),
    }


def ensemble_threshold_curve(
    result: "EnsemFDetResult",
    blacklist: Blacklist,
    thresholds: list[int] | None = None,
) -> list[CurvePoint]:
    """EnsemFDet's operating curve: sweep the voting threshold ``T``.

    Default thresholds are ``1..N`` descending detection size, the sweep
    behind Figs. 4 and 9.
    """
    pairs = result.sweep_thresholds(thresholds)
    return curve_from_detections(
        [(float(t), detection.user_labels.tolist()) for t, detection in pairs],
        blacklist.labels,
    )


def fraudar_block_curve(
    result: "FraudarResult", blacklist: Blacklist
) -> list[CurvePoint]:
    """Fraudar's operating points: cumulative unions of blocks 1..K."""
    return curve_from_detections(
        [
            (float(n_blocks), labels.tolist())
            for n_blocks, labels in result.cumulative_detections()
        ],
        blacklist.labels,
    )


def score_curve(
    graph: BipartiteGraph,
    user_scores: np.ndarray,
    blacklist: Blacklist,
    max_points: int = 200,
) -> list[CurvePoint]:
    """Curve for raw score arrays (SpokEn, FBox, degree).

    ``user_scores`` are per *local index*; the blacklist speaks in labels,
    so the graph's ``user_labels`` provide the bridge.
    """
    truth_mask = blacklist.mask(graph.user_labels)
    return pr_curve_from_scores(user_scores, truth_mask, max_points=max_points)
