"""Evaluation harness: detectors × datasets → operating curves.

Glue between the detector result types and the curve machinery — one
function per detector family, all returning ``list[CurvePoint]`` so
experiments can compare them uniformly.
"""

from __future__ import annotations

import numpy as np

from ..baselines import FraudarResult
from ..datasets import Blacklist
from ..ensemble import EnsemFDetResult
from ..graph import BipartiteGraph
from .confusion import Confusion, confusion_from_sets
from .curves import CurvePoint, curve_from_detections, pr_curve_from_scores

__all__ = [
    "evaluate_detection",
    "ensemble_threshold_curve",
    "fraudar_block_curve",
    "score_curve",
]


def evaluate_detection(
    detected_users: np.ndarray,
    blacklist: Blacklist,
    n_population: int | None = None,
) -> Confusion:
    """Confusion of one fixed detection against the blacklist."""
    return confusion_from_sets(
        detected_users.tolist(), blacklist.labels, n_population=n_population
    )


def ensemble_threshold_curve(
    result: EnsemFDetResult,
    blacklist: Blacklist,
    thresholds: list[int] | None = None,
) -> list[CurvePoint]:
    """EnsemFDet's operating curve: sweep the voting threshold ``T``.

    Default thresholds are ``1..N`` descending detection size, the sweep
    behind Figs. 4 and 9.
    """
    pairs = result.sweep_thresholds(thresholds)
    return curve_from_detections(
        [(float(t), detection.user_labels.tolist()) for t, detection in pairs],
        blacklist.labels,
    )


def fraudar_block_curve(
    result: FraudarResult, blacklist: Blacklist
) -> list[CurvePoint]:
    """Fraudar's operating points: cumulative unions of blocks 1..K."""
    return curve_from_detections(
        [
            (float(n_blocks), labels.tolist())
            for n_blocks, labels in result.cumulative_detections()
        ],
        blacklist.labels,
    )


def score_curve(
    graph: BipartiteGraph,
    user_scores: np.ndarray,
    blacklist: Blacklist,
    max_points: int = 200,
) -> list[CurvePoint]:
    """Curve for score-based baselines (SpokEn, FBox, degree).

    ``user_scores`` are per *local index*; the blacklist speaks in labels,
    so the graph's ``user_labels`` provide the bridge.
    """
    truth_mask = blacklist.mask(graph.user_labels)
    return pr_curve_from_scores(user_scores, truth_mask, max_points=max_points)
