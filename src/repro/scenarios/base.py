"""Adversarial attack scenarios — the substrate of the robustness harness.

The paper evaluates EnsemFDet only against naively planted dense blocks
(the JD-like benchmark). Real attackers hide: FraudTrap-style campaigns mix
camouflage purchases into honest traffic, hijacked accounts carry honest
history before the fraud tail, and organised campaigns arrive in timed
waves. Each :class:`Scenario` models one such attack shape as a
*parameterised generator* that produces

* a labelled :class:`~repro.datasets.Dataset` (graph + exact ground truth),
  ready for any detector that consumes graphs, and
* an **ordered replay stream** — a tuple of
  :class:`~repro.graph.EdgeBatch` chunks whose accumulation through
  :class:`~repro.graph.GraphAccumulator` reproduces the dataset's graph
  bitwise.  Batch 0 is always the honest background; later batches are the
  attack arriving (for staged campaigns: one batch per wave).  This is what
  lets every scenario exercise the streaming path
  (:meth:`repro.ensemble.IncrementalEnsemFDet.update`) end to end, not just
  the cold :meth:`repro.ensemble.EnsemFDet.fit`.

The replay stream is the *source of truth*: the dataset graph is built by
accumulating the batches, so stream equivalence holds by construction and
the property suite (``tests/scenarios/test_scenario_properties.py``)
verifies it stays that way.

Two knobs are shared by every scenario so harness grids stay uniform:

``scale``
    Multiplies the honest background (users / merchants / edges) and the
    fraud campaign size together — the "how big is the world" axis.
``intensity``
    Multiplies only the fraud campaign size — the "how hard is the attack"
    axis swept by the robustness grids.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..datasets import Blacklist, Dataset, chung_lu_bipartite
from ..errors import ScenarioError
from ..graph import BipartiteGraph, EdgeBatch, GraphAccumulator
from ..sampling import resolve_rng

__all__ = ["BatchKind", "Scenario", "ScenarioResult", "accumulate_batches"]


class BatchKind:
    """Replay-stream batch roles (plain strings, grep-friendly)."""

    BACKGROUND = "background"
    ATTACK = "attack"
    WAVE = "wave"
    #: edges to *retract* (attacker covering their tracks) — only windowed
    #: detectors can honour it; append-only replays skip the batch
    CLEANUP = "cleanup"


def accumulate_batches(
    batches: tuple[EdgeBatch, ...] | list[EdgeBatch],
    kinds: tuple[str, ...] | list[str] | None = None,
) -> BipartiteGraph:
    """Replay a scenario's batches through a fresh accumulator.

    This is exactly what the append-only streaming layer does with the
    stream; the returned graph is bitwise-equal to
    ``ScenarioResult.dataset.graph``. With ``kinds``,
    :data:`BatchKind.CLEANUP` batches are skipped — they list edges to
    *remove*, which an append-only accumulator cannot express.
    """
    if kinds is not None and len(kinds) != len(batches):
        raise ScenarioError(
            f"batch_kinds length {len(kinds)} does not match {len(batches)} batches"
        )
    accumulator = GraphAccumulator()
    for index, batch in enumerate(batches):
        if kinds is not None and kinds[index] == BatchKind.CLEANUP:
            continue
        accumulator.append(batch.users, batch.merchants, batch.weights)
    return accumulator.graph()


@dataclass(frozen=True)
class ScenarioResult:
    """One generated attack instance: labelled dataset + replay stream.

    Attributes
    ----------
    scenario:
        Registry name of the generator that produced this instance.
    intensity:
        The attack-strength multiplier it was generated at.
    dataset:
        Graph, clean blacklist (exactly the planted fraud users) and
        provenance params.
    batches:
        The ordered replay stream. ``batches[0]`` is the honest
        background; accumulating all non-:data:`BatchKind.CLEANUP`
        batches reproduces ``dataset.graph`` bitwise (see
        :func:`accumulate_batches`).
    batch_kinds:
        Parallel to ``batches``: :data:`BatchKind.BACKGROUND` /
        ``ATTACK`` / ``WAVE`` / ``CLEANUP`` role of each chunk.
    """

    scenario: str
    intensity: float
    dataset: Dataset
    batches: tuple[EdgeBatch, ...]
    batch_kinds: tuple[str, ...]

    @property
    def fraud_users(self) -> np.ndarray:
        """Global labels of exactly the planted fraud users."""
        return self.dataset.clean_fraud_labels

    @property
    def background(self) -> EdgeBatch:
        """The honest-traffic prefix of the stream."""
        return self.batches[0]

    @property
    def attack_batches(self) -> tuple[EdgeBatch, ...]:
        """Every non-background batch, in arrival order."""
        return self.batches[1:]

    @property
    def n_waves(self) -> int:
        """Number of :data:`BatchKind.WAVE` batches (0 for one-shot attacks)."""
        return sum(1 for kind in self.batch_kinds if kind == BatchKind.WAVE)

    def replay_graph(self) -> BipartiteGraph:
        """Re-accumulate the stream (bitwise-equal to ``dataset.graph``)."""
        return accumulate_batches(self.batches, self.batch_kinds)


class Scenario(ABC):
    """One parameterised attack generator.

    Subclasses set ``name`` / ``description`` and implement
    :meth:`_attack`, which receives the honest background plus the resolved
    fraud-campaign size and returns the attack's replay batches. The base
    class owns everything shared: argument validation, deterministic
    seeding (per-scenario salted so ``seed=0`` does not correlate
    scenarios), background synthesis, stream assembly and dataset
    packaging.
    """

    #: registry name (``naive_block``, ``camouflage``, ...)
    name: str = ""
    #: one-line human description (shown by ``ensemfdet scenario --list``)
    description: str = ""

    #: honest background size at ``scale = 1.0``
    base_users: int = 1200
    base_merchants: int = 480
    base_edges: int = 3600
    #: fraud campaign size at ``scale = intensity = 1.0``
    base_fraud_users: int = 48

    def generate(
        self, intensity: float = 1.0, scale: float = 1.0, seed: int = 0
    ) -> ScenarioResult:
        """Produce one labelled attack instance.

        The same ``(intensity, scale, seed)`` triple always produces the
        same instance, batch for batch.
        """
        if intensity <= 0:
            raise ScenarioError(f"intensity must be positive, got {intensity}")
        if scale <= 0:
            raise ScenarioError(f"scale must be positive, got {scale}")
        rng = resolve_rng(np.random.SeedSequence([int(seed), self._salt()]))
        background = chung_lu_bipartite(
            n_users=max(24, int(round(self.base_users * scale))),
            n_merchants=max(12, int(round(self.base_merchants * scale))),
            n_edges=max(48, int(round(self.base_edges * scale))),
            rng=rng,
        )
        n_fraud = max(3, int(round(self.base_fraud_users * scale * intensity)))

        attack_batches, kinds, fraud_users, attack_params = self._attack(
            background, n_fraud, rng
        )
        if not attack_batches:
            raise ScenarioError(f"scenario {self.name!r} produced no attack batches")
        batches = (
            EdgeBatch(
                users=background.edge_users,
                merchants=background.edge_merchants,
                weights=None,
            ),
            *attack_batches,
        )
        batch_kinds = (BatchKind.BACKGROUND, *kinds)
        graph = accumulate_batches(batches, batch_kinds)
        fraud_users = np.unique(np.asarray(fraud_users, dtype=np.int64))
        dataset = Dataset(
            name=f"{self.name}@i{intensity:g}",
            graph=graph,
            blacklist=Blacklist(fraud_users.tolist()),
            clean_fraud_labels=fraud_users,
            params={
                "scenario": self.name,
                "intensity": float(intensity),
                "scale": float(scale),
                "seed": int(seed),
                "n_background_users": background.n_users,
                "n_background_merchants": background.n_merchants,
                "n_background_edges": background.n_edges,
                "n_fraud_users": int(fraud_users.size),
                "n_batches": len(batches),
                **attack_params,
            },
        )
        return ScenarioResult(
            scenario=self.name,
            intensity=float(intensity),
            dataset=dataset,
            batches=batches,
            batch_kinds=batch_kinds,
        )

    def _salt(self) -> int:
        """Stable per-scenario seed salt (``hash()`` is randomised; crc32 is not)."""
        return zlib.crc32(self.name.encode("utf-8"))

    @abstractmethod
    def _attack(
        self, background: BipartiteGraph, n_fraud: int, rng: np.random.Generator
    ) -> tuple[tuple[EdgeBatch, ...], tuple[str, ...], np.ndarray, dict]:
        """Build the attack's replay batches against ``background``.

        Returns ``(batches, kinds, fraud_user_labels, extra_params)`` where
        ``kinds`` parallels ``batches`` and ``extra_params`` is merged into
        the dataset's provenance dict.
        """
