"""Name-based construction of attack scenarios.

Mirrors :mod:`repro.sampling.registry`: harness grids and the CLI refer to
attack shapes by short names; this registry maps each name to its generator
class and forwards shape parameters (``density=...``,
``camouflage_ratio=...``) to the constructor.
"""

from __future__ import annotations

from ..errors import ScenarioError
from .base import Scenario
from .generators import (
    CamouflageScenario,
    HijackedAccountsScenario,
    NaiveBlockScenario,
    SkewedTargetsScenario,
    SprayScenario,
    StagedCampaignScenario,
)
from .temporal import BurstDormantScenario, CleanupScenario, SlowRampScenario

__all__ = ["SCENARIO_NAMES", "available_scenarios", "make_scenario", "scenario_descriptions"]

_CLASSES: tuple[type[Scenario], ...] = (
    NaiveBlockScenario,
    CamouflageScenario,
    HijackedAccountsScenario,
    StagedCampaignScenario,
    SprayScenario,
    SkewedTargetsScenario,
    SlowRampScenario,
    BurstDormantScenario,
    CleanupScenario,
)

_FACTORIES: dict[str, type[Scenario]] = {cls.name: cls for cls in _CLASSES}

#: canonical registry order: paper's naive setting first, evasive shapes after
SCENARIO_NAMES: tuple[str, ...] = tuple(cls.name for cls in _CLASSES)


def available_scenarios() -> list[str]:
    """All recognised scenario names, in canonical order."""
    return list(SCENARIO_NAMES)


def scenario_descriptions() -> dict[str, str]:
    """``name -> one-line description`` for every registered scenario."""
    return {cls.name: cls.description for cls in _CLASSES}


def make_scenario(name: str, **params) -> Scenario:
    """Instantiate a scenario by (case-insensitive) name.

    ``params`` are forwarded to the generator's constructor (shape knobs
    like ``density`` or ``n_waves``); unknown names and unknown parameters
    both fail with a :class:`~repro.errors.ScenarioError` naming the
    alternatives.
    """
    cls = _FACTORIES.get(name.lower())
    if cls is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIO_NAMES)}"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise ScenarioError(f"bad parameters for scenario {name!r}: {exc}") from exc
