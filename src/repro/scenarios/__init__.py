"""Adversarial attack scenarios and the robustness-evaluation harness."""

from .base import BatchKind, Scenario, ScenarioResult, accumulate_batches
from .generators import (
    CamouflageScenario,
    HijackedAccountsScenario,
    NaiveBlockScenario,
    SkewedTargetsScenario,
    SprayScenario,
    StagedCampaignScenario,
)
from .drift import DriftGridConfig, run_drift_grid
from .harness import DETECTOR_NAMES, ScenarioGridConfig, evaluate_cell, run_grid
from .registry import (
    SCENARIO_NAMES,
    available_scenarios,
    make_scenario,
    scenario_descriptions,
)
from .temporal import BurstDormantScenario, CleanupScenario, SlowRampScenario

__all__ = [
    "BatchKind",
    "Scenario",
    "ScenarioResult",
    "accumulate_batches",
    "NaiveBlockScenario",
    "CamouflageScenario",
    "HijackedAccountsScenario",
    "StagedCampaignScenario",
    "SprayScenario",
    "SkewedTargetsScenario",
    "SlowRampScenario",
    "BurstDormantScenario",
    "CleanupScenario",
    "DriftGridConfig",
    "run_drift_grid",
    "SCENARIO_NAMES",
    "available_scenarios",
    "make_scenario",
    "scenario_descriptions",
    "DETECTOR_NAMES",
    "ScenarioGridConfig",
    "evaluate_cell",
    "run_grid",
]
