"""Adversarial attack scenarios and the robustness-evaluation harness."""

from .base import BatchKind, Scenario, ScenarioResult, accumulate_batches
from .generators import (
    CamouflageScenario,
    HijackedAccountsScenario,
    NaiveBlockScenario,
    SkewedTargetsScenario,
    SprayScenario,
    StagedCampaignScenario,
)
from .harness import DETECTOR_NAMES, ScenarioGridConfig, evaluate_cell, run_grid
from .registry import (
    SCENARIO_NAMES,
    available_scenarios,
    make_scenario,
    scenario_descriptions,
)

__all__ = [
    "BatchKind",
    "Scenario",
    "ScenarioResult",
    "accumulate_batches",
    "NaiveBlockScenario",
    "CamouflageScenario",
    "HijackedAccountsScenario",
    "StagedCampaignScenario",
    "SprayScenario",
    "SkewedTargetsScenario",
    "SCENARIO_NAMES",
    "available_scenarios",
    "make_scenario",
    "scenario_descriptions",
    "DETECTOR_NAMES",
    "ScenarioGridConfig",
    "evaluate_cell",
    "run_grid",
]
