"""Temporal drift grid: detection *latency* and decay, not just end-state F1.

The robustness grid (:mod:`repro.scenarios.harness`) scores each attack
once, after the whole stream has landed. Temporal attacks are precisely the
ones where that misses the story: a slow-ramp campaign is eventually
obvious but the interesting number is *how many batches* it stayed under
the radar; an attack-then-cleanup campaign looks identical to honest
traffic at the end — unless the detector never forgets.

This grid replays each temporal scenario step by step through the
incremental detector in two modes:

* ``append`` — the classic append-only detector: every edge it ever saw
  keeps voting, cleanup batches are skipped (inexpressible);
* ``window`` — a rolling ``window_batches``-batch window: old edges
  expire, cleanup batches are honoured as retractions.

Per step it sweeps the integer vote table over every threshold and records
the best F1 against the planted fraud users — all integer/exact
arithmetic, so the series is bitwise reproducible and committable as a
golden fixture. Reported per cell:

* ``latency`` — 1-based index of the first step whose best F1 reaches
  ``f1_target`` (``-1`` if never), the batches-until-detected metric;
* ``final_f1`` / ``peak_f1`` — end-state versus best-ever detection;
* ``f1_series`` — the full per-step curve (comma-joined).

In windowed mode every step optionally cross-checks the incremental vote
table against a cold :meth:`~repro.ensemble.EnsemFDet.fit_window` on the
same live window — the bitwise-parity guarantee of the windowed
incremental layer, enforced live here just like the append-only parity is
in the robustness grid.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet
from ..errors import ScenarioError
from ..fdet import FdetConfig, PeelEngine
from ..graph import WindowConfig
from ..parallel import ExecutorMode, Timer
from ..sampling import StableEdgeSampler
from .base import BatchKind, ScenarioResult, accumulate_batches
from .registry import SCENARIO_NAMES, make_scenario

__all__ = ["DriftGridConfig", "run_drift_grid", "TEMPORAL_SCENARIOS"]

#: the shapes whose arrival pattern (not structure) is the evasion
TEMPORAL_SCENARIOS: tuple[str, ...] = ("slow_ramp", "burst_dormant", "attack_cleanup")

_MODES = ("append", "window")


@dataclass(frozen=True)
class DriftGridConfig:
    """One temporal sweep: scenarios × {append, window} replay modes."""

    scenarios: tuple[str, ...] = TEMPORAL_SCENARIOS
    modes: tuple[str, ...] = _MODES
    window_batches: int = 12
    intensity: float = 1.0
    scale: float = 0.25
    seed: int = 0
    n_samples: int = 16
    sample_ratio: float = 0.3
    stripe: int = 64
    max_blocks: int = 10
    engine: str = PeelEngine.DEFAULT
    executor: str = ExecutorMode.SERIAL
    #: best-F1 level that counts as "detected" for the latency metric
    f1_target: float = 0.6
    #: cross-check windowed steps against a cold fit on the live window
    check_parity: bool = True

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ScenarioError("drift grid needs at least one scenario")
        unknown = [name for name in self.scenarios if name not in SCENARIO_NAMES]
        if unknown:
            raise ScenarioError(
                f"unknown scenarios {unknown}; available: {', '.join(SCENARIO_NAMES)}"
            )
        bad_modes = [mode for mode in self.modes if mode not in _MODES]
        if bad_modes:
            raise ScenarioError(f"unknown drift modes {bad_modes}; valid: {_MODES}")
        if self.window_batches < 1:
            raise ScenarioError(
                f"window_batches must be >= 1, got {self.window_batches}"
            )
        if not 0.0 < self.f1_target <= 1.0:
            raise ScenarioError(f"f1_target must be in (0, 1], got {self.f1_target}")

    def ensemble_config(self) -> EnsemFDetConfig:
        """The shared detector configuration of every cell."""
        return EnsemFDetConfig(
            sampler=StableEdgeSampler(self.sample_ratio, stripe=self.stripe),
            n_samples=self.n_samples,
            fdet=FdetConfig(max_blocks=self.max_blocks, engine=self.engine),
            executor=self.executor,
            seed=self.seed,
        )


def _best_f1(table, fraud: set[int], n_samples: int) -> float:
    """Best F1 over the full voting-threshold sweep ``T = 1..N``.

    Integer votes, exact set arithmetic — deterministic to the last bit.
    """
    if not fraud:
        return 0.0
    best = 0.0
    votes = table.user_votes
    for threshold in range(1, n_samples + 1):
        detected = {label for label, count in votes.items() if count >= threshold}
        if not detected:
            continue
        hits = len(detected & fraud)
        if hits == 0:
            continue
        precision = hits / len(detected)
        recall = hits / len(fraud)
        best = max(best, 2.0 * precision * recall / (precision + recall))
    return best


def _assert_window_parity(
    detector: IncrementalEnsemFDet, config: EnsemFDetConfig, cell: str, step: int
) -> None:
    live = detector.window()
    cold = EnsemFDet(config).fit_window(live, track_members=True)
    if (
        detector.vote_table.user_votes != cold.vote_table.user_votes
        or detector.vote_table.merchant_votes != cold.vote_table.merchant_votes
    ):
        raise ScenarioError(
            f"drift cell {cell} step {step}: windowed incremental vote table "
            "diverged from a cold fit on the live window — the windowed "
            "incremental layer no longer reproduces EnsemFDet.fit_window"
        )


def _replay_cell(
    instance: ScenarioResult, mode: str, config: DriftGridConfig
) -> dict:
    """Replay one scenario through one mode; returns the cell row."""
    ensemble = config.ensemble_config()
    fraud = set(instance.fraud_users.tolist())
    cell = f"{instance.scenario}/{mode}"
    window = (
        WindowConfig(max_batches=config.window_batches) if mode == "window" else None
    )
    background = accumulate_batches(instance.batches[:1])

    with Timer() as timer:
        detector = IncrementalEnsemFDet(ensemble, window=window)
        if window is not None:
            detector.fit(background, timestamp=0.0)
        else:
            detector.fit(background)
        series: list[float] = []
        refreshed = 0
        for index, batch in enumerate(instance.attack_batches):
            kind = instance.batch_kinds[index + 1]
            if kind == BatchKind.CLEANUP and window is None:
                # inexpressible for an append-only detector: the step
                # happens (the series stays aligned across modes) but the
                # vote table cannot change
                series.append(_best_f1(detector.vote_table, fraud, ensemble.n_samples))
                continue
            if kind == BatchKind.CLEANUP:
                report = detector.update(
                    remove_users=batch.users,
                    remove_merchants=batch.merchants,
                    timestamp=float(index + 1),
                )
            elif window is not None:
                report = detector.update(
                    batch.users, batch.merchants, batch.weights,
                    timestamp=float(index + 1),
                )
            else:
                report = detector.update(batch.users, batch.merchants, batch.weights)
            refreshed += report.n_refreshed
            if window is not None and config.check_parity:
                _assert_window_parity(detector, ensemble, cell, index + 1)
            series.append(_best_f1(detector.vote_table, fraud, ensemble.n_samples))

    latency = next(
        (step + 1 for step, f1 in enumerate(series) if f1 >= config.f1_target), -1
    )
    return {
        "scenario": instance.scenario,
        "mode": mode,
        "window_batches": config.window_batches if window is not None else 0,
        "n_steps": len(series),
        "n_fraud": len(fraud),
        "latency": latency,
        "final_f1": round(series[-1], 6) if series else 0.0,
        "peak_f1": round(max(series), 6) if series else 0.0,
        "f1_series": ",".join(f"{f1:.6f}" for f1 in series),
        "n_refreshed": refreshed,
        "wall_seconds": round(timer.elapsed, 3),
    }


def run_drift_grid(config: DriftGridConfig, outdir: str | None = None):
    """Sweep scenario × mode, returning the standard ``ExperimentResult``.

    Each scenario instance is generated once and replayed through every
    mode, so ``append`` and ``window`` rows of one scenario describe the
    exact same stream.
    """
    from ..experiments.base import ExperimentResult

    rows = []
    for name in config.scenarios:
        instance = make_scenario(name).generate(
            intensity=config.intensity, scale=config.scale, seed=config.seed
        )
        for mode in config.modes:
            rows.append(_replay_cell(instance, mode, config))
    result = ExperimentResult(
        experiment="drift_grid",
        title="Temporal drift grid: detection latency and decay",
        rows=rows,
        meta={
            "scenarios": list(config.scenarios),
            "modes": list(config.modes),
            "window_batches": config.window_batches,
            "intensity": config.intensity,
            "scale": config.scale,
            "seed": config.seed,
            "n_samples": config.n_samples,
            "sample_ratio": config.sample_ratio,
            "stripe": config.stripe,
            "max_blocks": config.max_blocks,
            "engine": config.engine,
            "executor": config.executor,
            "f1_target": config.f1_target,
        },
    )
    if outdir is not None:
        from pathlib import Path

        directory = Path(outdir)
        directory.mkdir(parents=True, exist_ok=True)
        result.to_json(directory / "drift_grid.json")
        result.to_csv(directory / "drift_grid.csv")
    return result


def _series(row: dict) -> list[float]:
    return [float(x) for x in row["f1_series"].split(",") if x]


def cleanup_decay_summary(result) -> dict:
    """The attack-then-cleanup asymmetry, extracted from a grid result.

    Returns ``{"append_final": ..., "window_final": ..., "append_peak":
    ..., "window_peak": ...}`` for the ``attack_cleanup`` rows. The
    windowed detector's final F1 collapsing below its peak while the
    append-only one stays at peak is the whole point of windowing.
    """
    rows = {
        row["mode"]: row for row in result.rows if row["scenario"] == "attack_cleanup"
    }
    if set(rows) < {"append", "window"}:
        raise ScenarioError(
            "cleanup_decay_summary needs attack_cleanup rows in both modes"
        )
    return {
        "append_final": rows["append"]["final_f1"],
        "append_peak": rows["append"]["peak_f1"],
        "window_final": rows["window"]["final_f1"],
        "window_peak": rows["window"]["peak_f1"],
    }
