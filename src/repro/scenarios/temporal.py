"""Temporal attack shapes: campaigns whose *timing* is the evasion.

The generators in :mod:`repro.scenarios.generators` vary the attack's
structure; these vary its arrival pattern, which is what windowed
(:class:`~repro.graph.WindowConfig`) detection exists to handle:

=================  ========================================================
``slow_ramp``      grooming: the same fraud cohort buys a little at first,
                   then more each wave — the block only densifies late, so
                   detection *latency* (batches until flagged) is the
                   interesting metric
``burst_dormant``  a dense burst, a dormant stretch of honest-only traffic,
                   then a second burst — windowed detectors can forget the
                   first burst before the second lands
``attack_cleanup`` the block lands, time passes, then the attacker retracts
                   their purchase records (:data:`BatchKind.CLEANUP`).
                   Append-only pipelines keep flagging the ghost; a rolling
                   window decays the score once the evidence is gone
=================  ========================================================

Like every scenario, each instance carries an ordered replay stream;
``attack_cleanup`` is the one shape whose stream is *not* append-only —
its final batch lists edges to remove, and only windowed streaming
detectors (``incremental:window=...``) can honour it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScenarioError
from ..graph import BipartiteGraph, EdgeBatch
from .base import BatchKind, Scenario
from .generators import _batch, _check_density, _check_positive_int, _dense_block_edges

__all__ = ["SlowRampScenario", "BurstDormantScenario", "CleanupScenario"]


def _honest_noise(
    rng: np.random.Generator, background: BipartiteGraph, n_edges: int
) -> EdgeBatch:
    """A batch of unremarkable honest traffic (uniform user × merchant)."""
    users = rng.integers(0, background.n_users, size=n_edges).astype(np.int64)
    merchants = rng.integers(0, background.n_merchants, size=n_edges).astype(np.int64)
    return _batch(users, merchants)


class SlowRampScenario(Scenario):
    """Grooming: one fraud cohort whose block densifies wave by wave.

    Every wave re-targets the *same* fresh merchant set with the same
    users, but the per-wave Bernoulli density ramps linearly from
    ``start_density`` to ``density``. Early waves look like sparse noise;
    only the accumulated tail is a dense block — the scenario that
    separates "detected eventually" from "detected early".
    """

    name = "slow_ramp"
    description = "same fraud cohort densifies wave by wave (grooming ramp)"

    def __init__(
        self,
        n_waves: int = 5,
        block_merchants: int = 10,
        start_density: float = 0.05,
        density: float = 0.6,
    ) -> None:
        self.n_waves = _check_positive_int(n_waves, "n_waves")
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(start_density)
        _check_density(density)
        self.start_density = float(start_density)
        self.density = float(density)

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        merchants = np.arange(
            background.n_merchants, background.n_merchants + self.block_merchants, dtype=np.int64
        )
        if self.n_waves == 1:
            densities = [self.density]
        else:
            step = (self.density - self.start_density) / (self.n_waves - 1)
            densities = [self.start_density + step * i for i in range(self.n_waves)]
        batches = []
        for wave_density in densities:
            edge_users, edge_merchants = _dense_block_edges(
                rng, users, merchants, wave_density
            )
            batches.append(_batch(edge_users, edge_merchants))
        params = {
            "block_merchants": self.block_merchants,
            "start_density": self.start_density,
            "end_density": self.density,
            "n_waves": self.n_waves,
            "wave_densities": ",".join(f"{d:g}" for d in densities),
            "n_attack_edges": int(sum(batch.n_edges for batch in batches)),
        }
        return (
            tuple(batches),
            (BatchKind.WAVE,) * self.n_waves,
            users,
            params,
        )


class BurstDormantScenario(Scenario):
    """Burst, go dark, burst again.

    The full dense block fires twice, separated by ``dormant_batches`` of
    pure honest traffic. A rolling window shorter than the dormant gap
    forgets the first burst entirely; an append-only detector carries it
    forever. The second burst re-uses the same users and merchants, so the
    two regimes converge again at the end of the stream.
    """

    name = "burst_dormant"
    description = "dense burst, dormant honest-only gap, second burst"

    def __init__(
        self,
        block_merchants: int = 10,
        density: float = 0.6,
        dormant_batches: int = 3,
        noise_fraction: float = 0.05,
    ) -> None:
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(density)
        self.dormant_batches = _check_positive_int(dormant_batches, "dormant_batches")
        if noise_fraction <= 0:
            raise ScenarioError(f"noise_fraction must be positive, got {noise_fraction}")
        self.density = float(density)
        self.noise_fraction = float(noise_fraction)

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        merchants = np.arange(
            background.n_merchants, background.n_merchants + self.block_merchants, dtype=np.int64
        )
        first_u, first_m = _dense_block_edges(rng, users, merchants, self.density)
        noise_edges = max(8, int(round(background.n_edges * self.noise_fraction)))
        dormant = [
            _honest_noise(rng, background, noise_edges)
            for _ in range(self.dormant_batches)
        ]
        second_u, second_m = _dense_block_edges(rng, users, merchants, self.density)
        batches = (
            _batch(first_u, first_m),
            *dormant,
            _batch(second_u, second_m),
        )
        kinds = (
            BatchKind.ATTACK,
            *(BatchKind.BACKGROUND,) * self.dormant_batches,
            BatchKind.ATTACK,
        )
        params = {
            "block_merchants": self.block_merchants,
            "block_density": self.density,
            "dormant_batches": self.dormant_batches,
            "noise_edges_per_batch": noise_edges,
            "n_attack_edges": int(first_u.size + second_u.size),
        }
        return batches, kinds, users, params


class CleanupScenario(Scenario):
    """Attack, wait, then retract the evidence.

    The dense block lands as one batch; ``post_batches`` of honest noise
    follow; the final :data:`BatchKind.CLEANUP` batch lists *exactly* the
    attack's edges as retractions (the attacker cancelling orders or
    purging records). The dataset graph keeps the attack edges — that is
    the append-only end state — while windowed replays, which honour the
    cleanup, end with no fraud evidence at all. The drift grid asserts the
    asymmetry: append-only keeps flagging the ghost block, windowed scores
    decay after cleanup.
    """

    name = "attack_cleanup"
    description = "dense block, honest gap, then the attack edges retracted"

    def __init__(
        self,
        block_merchants: int = 10,
        density: float = 0.6,
        post_batches: int = 2,
        noise_fraction: float = 0.05,
    ) -> None:
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(density)
        self.post_batches = _check_positive_int(post_batches, "post_batches")
        if noise_fraction <= 0:
            raise ScenarioError(f"noise_fraction must be positive, got {noise_fraction}")
        self.density = float(density)
        self.noise_fraction = float(noise_fraction)

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        merchants = np.arange(
            background.n_merchants, background.n_merchants + self.block_merchants, dtype=np.int64
        )
        attack_u, attack_m = _dense_block_edges(rng, users, merchants, self.density)
        noise_edges = max(8, int(round(background.n_edges * self.noise_fraction)))
        post = [
            _honest_noise(rng, background, noise_edges)
            for _ in range(self.post_batches)
        ]
        batches = (
            _batch(attack_u, attack_m),
            *post,
            # the cleanup batch repeats the attack's exact edge pairs — a
            # windowed replay retracts them, an append-only one skips it
            _batch(attack_u, attack_m),
        )
        kinds = (
            BatchKind.ATTACK,
            *(BatchKind.BACKGROUND,) * self.post_batches,
            BatchKind.CLEANUP,
        )
        params = {
            "block_merchants": self.block_merchants,
            "block_density": self.density,
            "post_batches": self.post_batches,
            "noise_edges_per_batch": noise_edges,
            "n_attack_edges": int(attack_u.size),
            "n_cleanup_edges": int(attack_u.size),
        }
        return batches, kinds, users, params
