"""Scenario evaluation harness: detector × scenario × intensity grids.

One grid cell = run one detector against one generated attack instance and
summarise its whole operating curve: best F1 (with the threshold that
achieves it), area under the PR curve, and precision@k over the detector's
suspiciousness ranking — all through :mod:`repro.metrics`.

Three detector backends are registered:

``ensemfdet``
    Cold :meth:`repro.ensemble.EnsemFDet.fit` on the full attacked graph.
``incremental``
    The streaming path: :meth:`~repro.ensemble.IncrementalEnsemFDet.fit`
    on the honest background batch, then one
    :meth:`~repro.ensemble.IncrementalEnsemFDet.update` per attack batch
    in replay order — staged scenarios drive one update per wave. Both
    ensemble backends share the same :class:`~repro.sampling.StableEdgeSampler`
    and seed, so their final vote tables (and hence every metric) are
    bit-identical; the harness reporting both is a live cross-check of the
    incremental layer.
``fraudar``
    The multi-block Fraudar baseline, ranked by block extraction order.

Results come back as the repo's standard
:class:`~repro.experiments.base.ExperimentResult` (renderable ASCII table,
``to_json`` / ``to_csv`` artifact writers); :func:`run_grid` optionally
writes ``scenario_grid.json`` / ``.csv`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..baselines import FraudarDetector
from ..datasets import Blacklist
from ..ensemble import EnsemFDet, EnsemFDetConfig, IncrementalEnsemFDet, VoteTable, majority_vote
from ..errors import ScenarioError
from ..fdet import FdetConfig, PeelEngine
from ..metrics import auc_pr, best_f1, curve_from_detections, precision_at_k
from ..parallel import ExecutorMode, Timer
from ..sampling import StableEdgeSampler
from .base import Scenario, ScenarioResult, accumulate_batches
from .registry import SCENARIO_NAMES, make_scenario

__all__ = ["DETECTOR_NAMES", "ScenarioGridConfig", "evaluate_cell", "run_grid"]


@dataclass(frozen=True)
class ScenarioGridConfig:
    """One robustness sweep: which cells to run and with what detector knobs.

    Attributes
    ----------
    scenarios:
        Registry names of the attack shapes to include.
    intensities:
        Attack-strength multipliers; the grid is the cross product.
    detectors:
        Detector backends (see module docstring) evaluated per instance.
    scale:
        World-size multiplier passed to every generator.
    seed:
        Seed for generation *and* for the ensemble sampling stage.
    n_samples, sample_ratio, stripe, max_blocks, engine, executor:
        Ensemble knobs, shared by the cold and incremental backends
        (``stripe`` sizes the :class:`~repro.sampling.StableEdgeSampler`
        stripes; small graphs want small stripes so wave deltas do not
        invalidate every member).
    precision_k:
        The ``k`` of precision@k. The denominator is always ``k``
        (standard definition — see :func:`repro.metrics.precision_at_k`),
        so short rankings pay for the labels they declined to rank; on
        tiny grids a large ``k`` yields systematically low scores.
    """

    scenarios: tuple[str, ...] = SCENARIO_NAMES
    intensities: tuple[float, ...] = (0.5, 1.0, 2.0)
    detectors: tuple[str, ...] = ("ensemfdet", "incremental")
    scale: float = 0.5
    seed: int = 0
    n_samples: int = 16
    sample_ratio: float = 0.3
    stripe: int = 64
    max_blocks: int = 10
    engine: str = PeelEngine.DEFAULT
    executor: str = ExecutorMode.SERIAL
    precision_k: int = 50
    #: per-scenario constructor overrides, e.g. ``{"camouflage": {"camouflage_ratio": 2.0}}``
    scenario_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ScenarioError("grid needs at least one scenario")
        # normalise spellings once so the stray-params check and run_grid's
        # scenario_params lookup agree with the case-insensitive registry
        object.__setattr__(
            self, "scenarios", tuple(name.lower() for name in self.scenarios)
        )
        object.__setattr__(
            self,
            "scenario_params",
            {name.lower(): params for name, params in self.scenario_params.items()},
        )
        unknown = [name for name in self.scenarios if name not in SCENARIO_NAMES]
        if unknown:
            raise ScenarioError(
                f"unknown scenarios {unknown}; available: {', '.join(SCENARIO_NAMES)}"
            )
        if not self.intensities or any(i <= 0 for i in self.intensities):
            raise ScenarioError(f"intensities must be positive, got {self.intensities}")
        bad = [name for name in self.detectors if name not in _DETECTORS]
        if bad:
            raise ScenarioError(
                f"unknown detectors {bad}; available: {', '.join(sorted(_DETECTORS))}"
            )
        if not self.detectors:
            raise ScenarioError("grid needs at least one detector")
        if self.precision_k < 1:
            raise ScenarioError(f"precision_k must be >= 1, got {self.precision_k}")
        stray = [name for name in self.scenario_params if name not in self.scenarios]
        if stray:
            raise ScenarioError(
                f"scenario_params for scenarios not in the grid: {stray}"
            )

    def ensemble_config(self) -> EnsemFDetConfig:
        """The shared ensemble configuration for both ensemble backends."""
        return EnsemFDetConfig(
            sampler=StableEdgeSampler(self.sample_ratio, stripe=self.stripe),
            n_samples=self.n_samples,
            fdet=FdetConfig(max_blocks=self.max_blocks, engine=self.engine),
            executor=self.executor,
            seed=self.seed,
        )


def _ranked_by_votes(table: VoteTable) -> list[int]:
    """User labels from most to least voted (ties broken by label)."""
    return [
        label
        for label, _ in sorted(table.user_votes.items(), key=lambda item: (-item[1], item[0]))
    ]


def _table_metrics(
    table: VoteTable, n_samples: int, blacklist: Blacklist, k: int
) -> dict:
    """Operating-curve summary of one fitted vote table."""
    pairs = [(threshold, majority_vote(table, threshold)) for threshold in range(1, n_samples + 1)]
    curve = curve_from_detections(
        [(float(t), detection.user_labels.tolist()) for t, detection in pairs],
        blacklist.labels,
    )
    best = best_f1(curve)
    return {
        "best_threshold": int(best.threshold) if best else 0,
        "best_f1": round(best.f1, 6) if best else 0.0,
        "precision": round(best.precision, 6) if best else 0.0,
        "recall": round(best.recall, 6) if best else 0.0,
        "n_detected": best.n_detected if best else 0,
        "auc_pr": round(auc_pr(curve), 6),
        "precision_at_k": round(precision_at_k(_ranked_by_votes(table), blacklist.labels, k), 6),
    }


def _run_ensemfdet(instance: ScenarioResult, config: ScenarioGridConfig) -> dict:
    """Cold fit on the fully-accumulated attacked graph."""
    result = EnsemFDet(config.ensemble_config()).fit(instance.dataset.graph)
    metrics = _table_metrics(
        result.vote_table, config.n_samples, instance.dataset.blacklist, config.precision_k
    )
    metrics["n_updates"] = 0
    metrics["n_refreshed"] = 0
    return metrics


def _run_incremental(instance: ScenarioResult, config: ScenarioGridConfig) -> dict:
    """Streaming path: fit on the background, one ``update()`` per attack batch."""
    detector = IncrementalEnsemFDet(config.ensemble_config())
    detector.fit(accumulate_batches(instance.batches[:1]))
    refreshed = 0
    for batch in instance.attack_batches:
        report = detector.update(batch.users, batch.merchants, batch.weights)
        refreshed += report.n_refreshed
    metrics = _table_metrics(
        detector.vote_table, config.n_samples, instance.dataset.blacklist, config.precision_k
    )
    metrics["n_updates"] = len(instance.attack_batches)
    metrics["n_refreshed"] = refreshed
    return metrics


def _run_fraudar(instance: ScenarioResult, config: ScenarioGridConfig) -> dict:
    """Multi-block Fraudar baseline, ranked by extraction order."""
    result = FraudarDetector(n_blocks=config.max_blocks, engine=config.engine).detect(
        instance.dataset.graph
    )
    blacklist = instance.dataset.blacklist
    curve = curve_from_detections(
        [
            (float(n_blocks), labels.tolist())
            for n_blocks, labels in result.cumulative_detections()
        ],
        blacklist.labels,
    )
    ranked: list[int] = []
    seen: set[int] = set()
    for block in result.blocks:
        for label in block.user_labels.tolist():
            if label not in seen:
                seen.add(label)
                ranked.append(label)
    best = best_f1(curve)
    return {
        "best_threshold": int(best.threshold) if best else 0,
        "best_f1": round(best.f1, 6) if best else 0.0,
        "precision": round(best.precision, 6) if best else 0.0,
        "recall": round(best.recall, 6) if best else 0.0,
        "n_detected": best.n_detected if best else 0,
        "auc_pr": round(auc_pr(curve), 6),
        "precision_at_k": round(precision_at_k(ranked, blacklist.labels, config.precision_k), 6),
        "n_updates": 0,
        "n_refreshed": 0,
    }


_DETECTORS: dict[str, Callable[[ScenarioResult, ScenarioGridConfig], dict]] = {
    "ensemfdet": _run_ensemfdet,
    "incremental": _run_incremental,
    "fraudar": _run_fraudar,
}

#: registered detector backends, in canonical order
DETECTOR_NAMES: tuple[str, ...] = ("ensemfdet", "incremental", "fraudar")


#: cells of these keys must agree between the cold and incremental backends
_PARITY_KEYS = ("best_threshold", "best_f1", "precision", "recall", "n_detected", "auc_pr", "precision_at_k")


def _check_ensemble_parity(cells: dict[str, dict]) -> None:
    """The streaming path must reproduce the cold fit, cell for cell.

    Both ensemble backends share one :class:`StableEdgeSampler` and seed,
    so their vote tables are bit-identical by construction; a mismatch in
    any metric means the incremental layer broke. Enforced live in every
    grid that runs both backends, not just in the test suite.
    """
    if "ensemfdet" not in cells or "incremental" not in cells:
        return
    cold, warm = cells["ensemfdet"], cells["incremental"]
    drifted = [key for key in _PARITY_KEYS if cold[key] != warm[key]]
    if drifted:
        raise ScenarioError(
            f"incremental backend diverged from the cold fit on "
            f"{cold['scenario']}@i{cold['intensity']:g} (keys: {', '.join(drifted)}) "
            "— the incremental layer no longer reproduces EnsemFDet.fit"
        )


def evaluate_cell(
    instance: ScenarioResult, detector: str, config: ScenarioGridConfig
) -> dict:
    """One grid cell: run ``detector`` on ``instance`` and summarise it."""
    runner = _DETECTORS.get(detector)
    if runner is None:
        raise ScenarioError(
            f"unknown detector {detector!r}; available: {', '.join(sorted(_DETECTORS))}"
        )
    with Timer() as timer:
        metrics = runner(instance, config)
    dataset = instance.dataset
    return {
        "scenario": instance.scenario,
        "intensity": instance.intensity,
        "detector": detector,
        "n_users": dataset.graph.n_users,
        "n_edges": dataset.graph.n_edges,
        "n_fraud": int(instance.fraud_users.size),
        "n_batches": len(instance.batches),
        **metrics,
        "wall_seconds": round(timer.elapsed, 3),
    }


def run_grid(
    config: ScenarioGridConfig, outdir: str | None = None
) -> "ExperimentResult":
    """Sweep the full detector × scenario × intensity grid.

    Every scenario instance is generated once and shared by all detectors
    evaluated on it. With ``outdir``, ``scenario_grid.json`` and
    ``scenario_grid.csv`` artifacts are written there.
    """
    # imported here, not at module level: the scn experiment driver imports
    # this module, so a top-level import of the experiments package would
    # cycle when repro.scenarios is imported first
    from ..experiments.base import ExperimentResult

    rows: list[dict] = []
    for name in config.scenarios:
        scenario: Scenario = make_scenario(name, **config.scenario_params.get(name, {}))
        for intensity in config.intensities:
            instance = scenario.generate(
                intensity=intensity, scale=config.scale, seed=config.seed
            )
            cells = {
                detector: evaluate_cell(instance, detector, config)
                for detector in config.detectors
            }
            _check_ensemble_parity(cells)
            rows.extend(cells.values())
    result = ExperimentResult(
        experiment="scenario_grid",
        title="Adversarial-scenario robustness grid",
        rows=rows,
        meta={
            "scenarios": list(config.scenarios),
            "intensities": list(config.intensities),
            "detectors": list(config.detectors),
            "scale": config.scale,
            "seed": config.seed,
            "n_samples": config.n_samples,
            "sample_ratio": config.sample_ratio,
            "stripe": config.stripe,
            "max_blocks": config.max_blocks,
            "engine": config.engine,
            "executor": config.executor,
            "precision_k": config.precision_k,
        },
    )
    if outdir is not None:
        directory = Path(outdir)
        directory.mkdir(parents=True, exist_ok=True)
        result.to_json(directory / "scenario_grid.json")
        result.to_csv(directory / "scenario_grid.csv")
    return result
