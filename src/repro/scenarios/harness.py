"""Scenario evaluation harness: detector × scenario × intensity grids.

One grid cell = run one detector against one generated attack instance and
summarise its whole operating curve: best F1 (with the threshold that
achieves it), area under the PR curve, and precision@k over the detector's
suspiciousness ranking — all through
:func:`repro.metrics.evaluate_detection`.

Detectors are named by **registry specs** (see :mod:`repro.detectors`):
any registered detector — ``ensemfdet``, ``incremental``, ``fdet``,
``fraudar``, ``spoken``, ``fbox``, ``degree`` — runs in the grid, with
optional per-spec parameters (``"fraudar:n_blocks=8"``). The grid's shared
ensemble knobs (seed, N, ratio, stripe, max blocks, engine, executor)
form the :class:`~repro.detectors.DetectorContext` every spec resolves
against, so unparameterised specs stay mutually consistent.

Two capability flags drive special routing, with no hardcoded names:

* ``streaming`` detectors replay the instance's batch stream (fit on the
  honest background, one update per attack batch — staged scenarios drive
  one update per wave) instead of cold-fitting the accumulated graph;
* detectors sharing a ``parity`` token (the cold and incremental
  ensembles, which share one :class:`~repro.sampling.StableEdgeSampler`
  and seed) must produce bit-identical metrics in every cell — enforced
  live in every grid that runs both, as a cross-check of the incremental
  layer.

Results come back as the repo's standard
:class:`~repro.experiments.base.ExperimentResult` (renderable ASCII table,
``to_json`` / ``to_csv`` artifact writers); :func:`run_grid` optionally
writes ``scenario_grid.json`` / ``.csv`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..detectors import (
    DETECTOR_NAMES,
    DetectorContext,
    available_detectors,
    canonical_detector_spec,
    detector_info,
    make_detector,
)
from ..errors import DetectionError, ScenarioError
from ..fdet import PeelEngine
from ..metrics import evaluate_detection
from ..parallel import ExecutorMode, Timer
from .base import Scenario, ScenarioResult, accumulate_batches
from .registry import SCENARIO_NAMES, make_scenario

__all__ = ["DETECTOR_NAMES", "ScenarioGridConfig", "evaluate_cell", "run_grid"]


def _canonical_specs(specs: tuple[str, ...]) -> tuple[str, ...]:
    """Normalise detector specs, turning registry errors into ScenarioError."""
    canonical = []
    unknown = []
    for spec in specs:
        try:
            canonical.append(canonical_detector_spec(spec))
        except DetectionError as exc:
            if "unknown detector" in str(exc):
                unknown.append(spec)
            else:
                raise ScenarioError(f"bad detector spec {spec!r}: {exc}") from exc
    if unknown:
        raise ScenarioError(
            f"unknown detectors {unknown}; available: {', '.join(available_detectors())}"
        )
    return tuple(canonical)


@dataclass(frozen=True)
class ScenarioGridConfig:
    """One robustness sweep: which cells to run and with what detector knobs.

    Attributes
    ----------
    scenarios:
        Registry names of the attack shapes to include.
    intensities:
        Attack-strength multipliers; the grid is the cross product.
    detectors:
        Detector registry specs evaluated per instance (normalised to
        their canonical form).
    scale:
        World-size multiplier passed to every generator.
    seed:
        Seed for generation *and* for the ensemble sampling stage.
    n_samples, sample_ratio, stripe, max_blocks, engine, executor:
        Shared detector knobs, exposed to every spec through the
        :class:`~repro.detectors.DetectorContext` (``stripe`` sizes the
        :class:`~repro.sampling.StableEdgeSampler` stripes; small graphs
        want small stripes so wave deltas do not invalidate every member).
    precision_k:
        The ``k`` of precision@k. The denominator is always ``k``
        (standard definition — see :func:`repro.metrics.precision_at_k`),
        so short rankings pay for the labels they declined to rank; on
        tiny grids a large ``k`` yields systematically low scores.
    """

    scenarios: tuple[str, ...] = SCENARIO_NAMES
    intensities: tuple[float, ...] = (0.5, 1.0, 2.0)
    detectors: tuple[str, ...] = ("ensemfdet", "incremental")
    scale: float = 0.5
    seed: int = 0
    n_samples: int = 16
    sample_ratio: float = 0.3
    stripe: int = 64
    max_blocks: int = 10
    engine: str = PeelEngine.DEFAULT
    executor: str = ExecutorMode.SERIAL
    precision_k: int = 50
    #: per-scenario constructor overrides, e.g. ``{"camouflage": {"camouflage_ratio": 2.0}}``
    scenario_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ScenarioError("grid needs at least one scenario")
        # normalise spellings once so the stray-params check and run_grid's
        # scenario_params lookup agree with the case-insensitive registry
        object.__setattr__(
            self, "scenarios", tuple(name.lower() for name in self.scenarios)
        )
        object.__setattr__(
            self,
            "scenario_params",
            {name.lower(): params for name, params in self.scenario_params.items()},
        )
        unknown = [name for name in self.scenarios if name not in SCENARIO_NAMES]
        if unknown:
            raise ScenarioError(
                f"unknown scenarios {unknown}; available: {', '.join(SCENARIO_NAMES)}"
            )
        if not self.intensities or any(i <= 0 for i in self.intensities):
            raise ScenarioError(f"intensities must be positive, got {self.intensities}")
        if not self.detectors:
            raise ScenarioError("grid needs at least one detector")
        object.__setattr__(self, "detectors", _canonical_specs(self.detectors))
        if len(set(self.detectors)) != len(self.detectors):
            raise ScenarioError(f"duplicate detector specs in {self.detectors}")
        if self.precision_k < 1:
            raise ScenarioError(f"precision_k must be >= 1, got {self.precision_k}")
        stray = [name for name in self.scenario_params if name not in self.scenarios]
        if stray:
            raise ScenarioError(
                f"scenario_params for scenarios not in the grid: {stray}"
            )

    def detector_context(self) -> DetectorContext:
        """The shared knob set every detector spec resolves against."""
        return DetectorContext(
            seed=self.seed,
            n_samples=self.n_samples,
            sample_ratio=self.sample_ratio,
            stripe=self.stripe,
            max_blocks=self.max_blocks,
            engine=self.engine,
            executor=self.executor,
        )


#: cells of these keys must agree between parity-grouped detectors
_PARITY_KEYS = ("best_threshold", "best_f1", "precision", "recall", "n_detected", "auc_pr", "precision_at_k")


def _check_ensemble_parity(
    cells: dict[str, dict], context: DetectorContext | None = None
) -> None:
    """Parity-grouped detectors must agree, cell for cell.

    Detectors registered with the same ``parity`` capability token (the
    cold and incremental ensembles, which share one
    :class:`StableEdgeSampler` and seed) produce bit-identical vote
    tables by construction; a mismatch in any metric means the
    incremental layer broke. Enforced live in every grid that runs a
    parity group, not just in the test suite.

    Specs that *override* a result-determining knob (sampler, ``n``,
    seed, ...) resolve to a different ``parity_fingerprint()`` and are
    excluded from each other's group — ``ensemfdet:sampler=res`` next to
    ``incremental`` is allowed to diverge, it is configured differently.
    """
    context = context or DetectorContext()
    groups: dict[tuple, list[str]] = {}
    for spec in cells:
        info = detector_info(spec)
        if info.parity is None:
            continue
        fingerprint = getattr(
            make_detector(spec, context), "parity_fingerprint", lambda: None
        )()
        groups.setdefault((info.parity, fingerprint), []).append(spec)
    for specs in groups.values():
        if len(specs) < 2:
            continue
        # the non-streaming member (the cold fit) is the reference
        specs = sorted(specs, key=lambda spec: detector_info(spec).streaming)
        reference = cells[specs[0]]
        for spec in specs[1:]:
            drifted = [key for key in _PARITY_KEYS if reference[key] != cells[spec][key]]
            if drifted:
                raise ScenarioError(
                    f"detector {spec!r} diverged from the cold fit on "
                    f"{reference['scenario']}@i{reference['intensity']:g} "
                    f"(keys: {', '.join(drifted)}) "
                    "— the incremental layer no longer reproduces EnsemFDet.fit"
                )


def evaluate_cell(
    instance: ScenarioResult, detector: str, config: ScenarioGridConfig
) -> dict:
    """One grid cell: run the ``detector`` spec on ``instance``.

    Streaming-capable detectors replay the instance's batch stream; all
    others cold-fit the fully-accumulated attacked graph.
    """
    context = config.detector_context()
    try:
        info = detector_info(detector)
        fitted = make_detector(detector, context)
    except DetectionError as exc:
        # the harness's error contract is ScenarioError, for bad
        # parameters just as for unknown names
        raise ScenarioError(str(exc)) from exc
    with Timer() as timer:
        if info.streaming:
            detection = fitted.fit_stream(
                accumulate_batches(instance.batches[:1]),
                instance.attack_batches,
                kinds=instance.batch_kinds[1:],
            )
        else:
            detection = fitted.fit(instance.dataset.graph)
        metrics = evaluate_detection(
            detection, instance.dataset.blacklist, k=config.precision_k
        )
    dataset = instance.dataset
    return {
        "scenario": instance.scenario,
        "intensity": instance.intensity,
        "detector": detector,
        "n_users": dataset.graph.n_users,
        "n_edges": dataset.graph.n_edges,
        "n_fraud": int(instance.fraud_users.size),
        "n_batches": len(instance.batches),
        **metrics,
        "n_updates": int(detection.meta.get("n_updates", 0)),
        "n_refreshed": int(detection.meta.get("n_refreshed", 0)),
        "wall_seconds": round(timer.elapsed, 3),
    }


def run_grid(
    config: ScenarioGridConfig, outdir: str | None = None
) -> "ExperimentResult":
    """Sweep the full detector × scenario × intensity grid.

    Every scenario instance is generated once and shared by all detectors
    evaluated on it. With ``outdir``, ``scenario_grid.json`` and
    ``scenario_grid.csv`` artifacts are written there.
    """
    # imported here, not at module level: the scn experiment driver imports
    # this module, so a top-level import of the experiments package would
    # cycle when repro.scenarios is imported first
    from ..experiments.base import ExperimentResult

    rows: list[dict] = []
    for name in config.scenarios:
        scenario: Scenario = make_scenario(name, **config.scenario_params.get(name, {}))
        for intensity in config.intensities:
            instance = scenario.generate(
                intensity=intensity, scale=config.scale, seed=config.seed
            )
            cells = {
                detector: evaluate_cell(instance, detector, config)
                for detector in config.detectors
            }
            _check_ensemble_parity(cells, config.detector_context())
            rows.extend(cells.values())
    result = ExperimentResult(
        experiment="scenario_grid",
        title="Adversarial-scenario robustness grid",
        rows=rows,
        meta={
            "scenarios": list(config.scenarios),
            "intensities": list(config.intensities),
            "detectors": list(config.detectors),
            "scale": config.scale,
            "seed": config.seed,
            "n_samples": config.n_samples,
            "sample_ratio": config.sample_ratio,
            "stripe": config.stripe,
            "max_blocks": config.max_blocks,
            "engine": config.engine,
            "executor": config.executor,
            "precision_k": config.precision_k,
        },
    )
    if outdir is not None:
        directory = Path(outdir)
        directory.mkdir(parents=True, exist_ok=True)
        result.to_json(directory / "scenario_grid.json")
        result.to_csv(directory / "scenario_grid.csv")
    return result
