"""The attack-shape library: six parameterised fraud campaign generators.

Shapes, roughly ordered from "what the paper evaluates" to "what real
adversaries do":

=================  ========================================================
``naive_block``    fresh accounts × fresh merchants dense block — the
                   paper's (and the JD-like benchmark's) planted signal
``camouflage``     dense block **plus** camouflage purchases at popular
                   honest merchants (FraudTrap's evasion), diluting each
                   fraud user's block share
``hijacked``       compromised *existing* accounts: honest purchase history
                   already in the background, fraud tail appended
``staged``         the block arrives in timed waves — one replay batch per
                   wave, exercising incremental re-detection per burst
``spray``          low-density fraud: each fraud account spreads few
                   purchases over random honest merchants, no dense core
``skewed_targets`` the block lands on the *most popular* honest merchants,
                   entangling fraud with hub traffic
=================  ========================================================

Every generator guarantees each fraud user makes at least one attack
purchase (so ground truth is structurally visible), emits only non-empty
batches, and stamps exact attack accounting into ``dataset.params`` — the
numbers the property suite asserts as invariants.
"""

from __future__ import annotations

import numpy as np

from ..datasets.injection import (
    MAX_BLOCK_CELLS,
    dense_block_pairs,
    merchant_popularity,
    require_density,
    require_integer,
)
from ..errors import ScenarioError
from ..graph import BipartiteGraph, EdgeBatch
from .base import BatchKind, Scenario

__all__ = [
    "NaiveBlockScenario",
    "CamouflageScenario",
    "HijackedAccountsScenario",
    "StagedCampaignScenario",
    "SprayScenario",
    "SkewedTargetsScenario",
]


def _dense_block_edges(
    rng: np.random.Generator,
    user_labels: np.ndarray,
    merchant_labels: np.ndarray,
    density: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Bernoulli(``density``) bipartite block over global labels.

    Delegates to the injection module's canonical
    :func:`~repro.datasets.injection.dense_block_pairs` idiom (every user
    guaranteed at least one in-block purchase), mapping the local pairs to
    the given labels. Absurdly wide blocks fail fast (same ceiling as
    :data:`~repro.datasets.injection.MAX_BLOCK_CELLS`) instead of dying
    inside the Bernoulli-mask allocation — ``intensity`` is an unbounded
    user-facing axis.
    """
    cells = int(user_labels.size) * int(merchant_labels.size)
    if cells > MAX_BLOCK_CELLS:
        raise ScenarioError(
            f"attack block of {user_labels.size} users x {merchant_labels.size} "
            f"merchants requests {cells} candidate edges (> {MAX_BLOCK_CELLS}); "
            "lower the intensity or scale"
        )
    block_u, block_m = dense_block_pairs(
        rng, int(user_labels.size), int(merchant_labels.size), density
    )
    return user_labels[block_u], merchant_labels[block_m]


def _batch(users: np.ndarray, merchants: np.ndarray) -> EdgeBatch:
    return EdgeBatch(
        users=np.ascontiguousarray(users, dtype=np.int64),
        merchants=np.ascontiguousarray(merchants, dtype=np.int64),
        weights=None,
    )


def _merchant_popularity(background: BipartiteGraph) -> np.ndarray:
    """Degree-proportional choice weights, uniform when there is no signal.

    Unlike injection (which skips camouflage on edgeless backgrounds), a
    camouflage *scenario* always camouflages — hence the uniform fallback.
    """
    popularity = merchant_popularity(background)
    if popularity is None:
        return np.full(background.n_merchants, 1.0 / background.n_merchants)
    return popularity


def _check_positive_int(value, name: str) -> int:
    """Shared integer validation, raised as a ScenarioError (no silent
    ``int()`` truncation — ``n_waves=2.9`` must not quietly run 2 waves)."""
    checked = require_integer(value, name, error=ScenarioError)
    if checked < 1:
        raise ScenarioError(f"{name} must be positive, got {checked}")
    return checked


def _check_density(density: float) -> None:
    require_density(density, error=ScenarioError)


class NaiveBlockScenario(Scenario):
    """The paper's attack: fresh accounts densely buying at fresh merchants."""

    name = "naive_block"
    description = "dense block of new users x new merchants (the paper's setting)"

    def __init__(self, block_merchants: int = 10, density: float = 0.6) -> None:
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(density)
        self.density = float(density)

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        merchants = np.arange(
            background.n_merchants, background.n_merchants + self.block_merchants, dtype=np.int64
        )
        edge_users, edge_merchants = _dense_block_edges(rng, users, merchants, self.density)
        params = {
            "block_merchants": self.block_merchants,
            "block_density": self.density,
            "n_attack_edges": int(edge_users.size),
        }
        return (
            (_batch(edge_users, edge_merchants),),
            (BatchKind.ATTACK,),
            users,
            params,
        )


class CamouflageScenario(Scenario):
    """Dense block + camouflage purchases at popular honest merchants.

    FraudTrap's observation: plain dense-subgraph peeling degrades once
    fraud accounts *also* buy honest items, because camouflage edges dilute
    the block's share of each account's activity.  ``camouflage_ratio`` is
    the number of camouflage edges per in-block edge; the realised count is
    ``round(ratio × n_block_edges)``, dealt round-robin over the fraud
    users and aimed at popularity-weighted background merchants.
    """

    name = "camouflage"
    description = "dense block + popularity-weighted camouflage edges (FraudTrap-style)"

    def __init__(
        self,
        block_merchants: int = 10,
        density: float = 0.6,
        camouflage_ratio: float = 1.0,
    ) -> None:
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(density)
        if camouflage_ratio < 0:
            raise ScenarioError(f"camouflage_ratio must be >= 0, got {camouflage_ratio}")
        self.density = float(density)
        self.camouflage_ratio = float(camouflage_ratio)

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        merchants = np.arange(
            background.n_merchants, background.n_merchants + self.block_merchants, dtype=np.int64
        )
        block_users, block_merchants = _dense_block_edges(rng, users, merchants, self.density)
        n_camouflage = int(round(self.camouflage_ratio * block_users.size))
        if n_camouflage:
            camo_users = users[np.arange(n_camouflage) % users.size]
            camo_merchants = rng.choice(
                background.n_merchants, size=n_camouflage, p=_merchant_popularity(background)
            ).astype(np.int64)
            edge_users = np.concatenate([block_users, camo_users])
            edge_merchants = np.concatenate([block_merchants, camo_merchants])
        else:
            edge_users, edge_merchants = block_users, block_merchants
        params = {
            "block_merchants": self.block_merchants,
            "block_density": self.density,
            "camouflage_ratio": self.camouflage_ratio,
            "n_block_edges": int(block_users.size),
            "n_camouflage_edges": n_camouflage,
            "n_attack_edges": int(edge_users.size),
        }
        return (
            (_batch(edge_users, edge_merchants),),
            (BatchKind.ATTACK,),
            users,
            params,
        )


class HijackedAccountsScenario(Scenario):
    """Compromised existing accounts: honest history, then a fraud tail.

    Instead of fresh registrations, the campaign takes over established
    users (sampled from accounts with at least one honest purchase) and
    points them at a fresh merchant set.  Detectors keyed on "new node
    with only-block activity" lose that crutch here.
    """

    name = "hijacked"
    description = "existing accounts (honest history kept) append a fraud tail"

    def __init__(self, block_merchants: int = 8, density: float = 0.7) -> None:
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(density)
        self.density = float(density)

    def _attack(self, background, n_fraud, rng):
        candidates = np.unique(background.edge_users)
        n_fraud = min(n_fraud, int(candidates.size))
        users = np.sort(rng.choice(candidates, size=n_fraud, replace=False)).astype(np.int64)
        merchants = np.arange(
            background.n_merchants, background.n_merchants + self.block_merchants, dtype=np.int64
        )
        edge_users, edge_merchants = _dense_block_edges(rng, users, merchants, self.density)
        params = {
            "block_merchants": self.block_merchants,
            "block_density": self.density,
            "n_attack_edges": int(edge_users.size),
        }
        return (
            (_batch(edge_users, edge_merchants),),
            (BatchKind.ATTACK,),
            users,
            params,
        )


class StagedCampaignScenario(Scenario):
    """A bursty campaign: the fraud block arrives in ordered waves.

    The fraud users are split into ``n_waves`` contiguous cohorts, each
    emitted as its own replay batch against the *same* merchant set —
    loosely-synchronised fraud that only becomes a dense block once all
    waves have landed.  This is the scenario that drives
    :meth:`repro.ensemble.IncrementalEnsemFDet.update` once per wave.
    """

    name = "staged"
    description = "fraud block arriving in timed waves (one replay batch per wave)"

    def __init__(
        self, n_waves: int = 4, block_merchants: int = 10, density: float = 0.6
    ) -> None:
        self.n_waves = _check_positive_int(n_waves, "n_waves")
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(density)
        self.density = float(density)

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        merchants = np.arange(
            background.n_merchants, background.n_merchants + self.block_merchants, dtype=np.int64
        )
        n_waves = min(self.n_waves, n_fraud)
        batches = []
        wave_sizes = []
        for cohort in np.array_split(users, n_waves):
            edge_users, edge_merchants = _dense_block_edges(
                rng, cohort, merchants, self.density
            )
            batches.append(_batch(edge_users, edge_merchants))
            wave_sizes.append(int(cohort.size))
        params = {
            "block_merchants": self.block_merchants,
            "block_density": self.density,
            "n_waves": n_waves,
            "wave_users": ",".join(str(size) for size in wave_sizes),
            "n_attack_edges": int(sum(batch.n_edges for batch in batches)),
        }
        return (
            tuple(batches),
            (BatchKind.WAVE,) * n_waves,
            users,
            params,
        )


class SprayScenario(Scenario):
    """Low-density "spray" fraud: no dense core at all.

    Each fraud account makes ``purchases_per_user`` purchases at uniformly
    random honest merchants.  There is no dense block to peel — the hard
    floor for density-based detectors, included so grids show where the
    method's assumptions stop holding rather than pretending they don't.
    """

    name = "spray"
    description = "fraud users spread few purchases over random honest merchants"

    def __init__(self, purchases_per_user: int = 3) -> None:
        self.purchases_per_user = _check_positive_int(purchases_per_user, "purchases_per_user")

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        edge_users = np.repeat(users, self.purchases_per_user)
        edge_merchants = rng.integers(
            0, background.n_merchants, size=edge_users.size
        ).astype(np.int64)
        params = {
            "purchases_per_user": self.purchases_per_user,
            "n_attack_edges": int(edge_users.size),
        }
        return (
            (_batch(edge_users, edge_merchants),),
            (BatchKind.ATTACK,),
            users,
            params,
        )


class SkewedTargetsScenario(Scenario):
    """The block lands on the most popular honest merchants.

    Fresh fraud accounts densely buy at the background's top-degree hubs —
    no new merchants appear, and the attacked merchants keep their large
    honest customer base.  Detectors that flag whole blocks risk sweeping
    honest hub traffic in with the fraud.
    """

    name = "skewed_targets"
    description = "dense block aimed at the top-popularity honest merchants"

    def __init__(self, block_merchants: int = 8, density: float = 0.7) -> None:
        self.block_merchants = _check_positive_int(block_merchants, "block_merchants")
        _check_density(density)
        self.density = float(density)

    def _attack(self, background, n_fraud, rng):
        users = np.arange(background.n_users, background.n_users + n_fraud, dtype=np.int64)
        degrees = background.merchant_degrees()
        n_targets = min(self.block_merchants, background.n_merchants)
        # stable ordering so equal-degree hubs resolve deterministically
        order = np.argsort(-degrees, kind="stable")
        merchants = np.sort(order[:n_targets]).astype(np.int64)
        edge_users, edge_merchants = _dense_block_edges(rng, users, merchants, self.density)
        params = {
            "block_merchants": n_targets,
            "block_density": self.density,
            "target_merchants": ",".join(str(m) for m in merchants.tolist()),
            "n_attack_edges": int(edge_users.size),
        }
        return (
            (_batch(edge_users, edge_merchants),),
            (BatchKind.ATTACK,),
            users,
            params,
        )
