"""Two-side Node Sampling (TNS), §IV-A4 of the paper.

Samples **both** rows and columns of the adjacency matrix and keeps the
cross-section: an edge survives only when both its endpoints were picked, so
at ratio ``S`` the expected surviving edge fraction is ≈ ``S²`` — the paper's
warning that TNS needs a larger ``S`` or more samples ``N`` to see the same
amount of structure.
"""

from __future__ import annotations

import numpy as np

from ..graph import BipartiteGraph
from .base import SamplePlan, Sampler, check_ratio, compact_indices, resolve_rng

__all__ = ["TwoSideNodeSampler"]


class TwoSideNodeSampler(Sampler):
    """Sample fractions of both partitions and keep the induced edges.

    Parameters
    ----------
    ratio:
        Sample ratio applied to the user side (and to the merchant side
        unless ``merchant_ratio`` is given).
    merchant_ratio:
        Optional distinct ratio for the merchant side.
    keep_isolated:
        Retain sampled nodes that end up without edges (strict cross-section
        semantics); default drops them.
    """

    name = "tns"

    def __init__(
        self,
        ratio: float,
        merchant_ratio: float | None = None,
        keep_isolated: bool = False,
    ) -> None:
        super().__init__(ratio)
        self.merchant_ratio = check_ratio(merchant_ratio) if merchant_ratio is not None else self.ratio
        self.keep_isolated = bool(keep_isolated)

    def expected_edge_fraction(self) -> float:
        """Expected fraction of original edges surviving: ``S_u · S_v``."""
        return self.ratio * self.merchant_ratio

    def plan(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> SamplePlan:
        generator = resolve_rng(rng)
        n_users = min(int(np.ceil(self.ratio * graph.n_users)), graph.n_users)
        n_merchants = min(
            int(np.ceil(self.merchant_ratio * graph.n_merchants)), graph.n_merchants
        )
        if n_users == 0 or n_merchants == 0:
            return SamplePlan(kind="edges", edge_indices=np.empty(0, dtype=np.int64))
        users = generator.choice(graph.n_users, size=n_users, replace=False)
        merchants = generator.choice(graph.n_merchants, size=n_merchants, replace=False)
        return SamplePlan(
            kind="nodes",
            users=compact_indices(users, graph.n_users),
            merchants=compact_indices(merchants, graph.n_merchants),
            keep_isolated=self.keep_isolated,
        )
