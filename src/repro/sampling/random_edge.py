"""Random Edge Sampling (RES), §IV-A2 of the paper.

Selects a uniform random subset of edges at ratio ``S = |E_s| / |E|`` and
keeps exactly the touched nodes — "the subgraph is created just out of the
sampled edges". By Lemma 1 this favours high-degree nodes, i.e. exactly the
dense components where fraud hides.
"""

from __future__ import annotations

import numpy as np

from ..graph import BipartiteGraph
from .base import SamplePlan, Sampler, compact_indices, resolve_rng

__all__ = ["RandomEdgeSampler"]


class RandomEdgeSampler(Sampler):
    """Uniformly sample ``ceil(S·|E|)`` edges without replacement.

    Parameters
    ----------
    ratio:
        Sample ratio ``S``.
    reweight:
        When ``True``, each surviving edge's weight is multiplied by ``1/S``
        — the Horvitz–Thompson style correction of Theorem 1 that makes the
        sampled density an ε-approximation of the original in expectation.
    """

    name = "res"

    def __init__(self, ratio: float, reweight: bool = False) -> None:
        super().__init__(ratio)
        self.reweight = bool(reweight)

    def plan(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> SamplePlan:
        generator = resolve_rng(rng)
        n_pick = int(np.ceil(self.ratio * graph.n_edges))
        n_pick = min(n_pick, graph.n_edges)
        scale = 1.0 / self.ratio if self.reweight else None
        if n_pick == 0:
            return SamplePlan(kind="edges", edge_indices=np.empty(0, dtype=np.int64))
        chosen = generator.choice(graph.n_edges, size=n_pick, replace=False)
        return SamplePlan(
            kind="edges",
            edge_indices=compact_indices(chosen, graph.n_edges),
            weight_scale=scale,
        )
