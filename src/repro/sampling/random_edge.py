"""Random Edge Sampling (RES), §IV-A2 of the paper.

Selects a uniform random subset of edges at ratio ``S = |E_s| / |E|`` and
keeps exactly the touched nodes — "the subgraph is created just out of the
sampled edges". By Lemma 1 this favours high-degree nodes, i.e. exactly the
dense components where fraud hides.
"""

from __future__ import annotations

import numpy as np

from ..graph import BipartiteGraph
from .base import Sampler, resolve_rng

__all__ = ["RandomEdgeSampler"]


class RandomEdgeSampler(Sampler):
    """Uniformly sample ``ceil(S·|E|)`` edges without replacement.

    Parameters
    ----------
    ratio:
        Sample ratio ``S``.
    reweight:
        When ``True``, each surviving edge's weight is multiplied by ``1/S``
        — the Horvitz–Thompson style correction of Theorem 1 that makes the
        sampled density an ε-approximation of the original in expectation.
    """

    name = "res"

    def __init__(self, ratio: float, reweight: bool = False) -> None:
        super().__init__(ratio)
        self.reweight = bool(reweight)

    def sample(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> BipartiteGraph:
        generator = resolve_rng(rng)
        n_pick = int(np.ceil(self.ratio * graph.n_edges))
        n_pick = min(n_pick, graph.n_edges)
        if n_pick == 0:
            return graph.edge_subgraph(np.empty(0, dtype=np.int64))
        chosen = generator.choice(graph.n_edges, size=n_pick, replace=False)
        subgraph = graph.edge_subgraph(chosen)
        if self.reweight:
            scale = 1.0 / self.ratio
            subgraph = subgraph.with_weights(subgraph.weights_or_ones() * scale)
        return subgraph
