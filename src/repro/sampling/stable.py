"""Stable (hash-based) edge sampling for incremental re-detection.

:class:`RandomEdgeSampler` draws from a sequential RNG stream, so adding a
single edge to the graph reshuffles *every* sample — fine for one-shot
fits, useless for a streaming service that wants to refresh verdicts after
a small delta. :class:`StableEdgeSampler` instead decides membership with a
counter-based hash:

* edges are grouped into contiguous **stripes** of ``stripe`` edge indices;
* stripe ``s`` belongs to ensemble member ``i`` iff
  ``hash(key, i, s) < ratio · 2^64``, where ``key`` is derived once from
  the seed.

Two properties fall out:

**Prefix stability** — membership depends only on ``(key, i, stripe)``,
never on ``|E|``, so appending edges leaves every existing edge's sample
assignment untouched. A sample changes iff a delta edge's stripe hashes
into it; with repetition rate ``R = S·N``, a delta confined to one stripe
invalidates only ``≈ S·N`` of the ``N`` samples — that is the whole basis
of :class:`repro.ensemble.IncrementalEnsemFDet`'s speedup.

**Cold-fit equivalence** — a fresh :meth:`sample_many` on the grown graph
reproduces exactly the union of the old samples and the delta's stripe
assignments, which is what makes incremental updates bit-identical to a
cold re-fit with the same seed.

Striping trades sample independence for delta locality: edges in the same
stripe are co-sampled (cluster sampling over the append order). Because
transaction logs are appended in time order and fraud campaigns are bursty
in time (the FraudTrap observation), keeping a burst's edges together in
the same ensemble members is usually *helpful*; set ``stripe=1`` to
recover fully independent per-edge Bernoulli sampling (at the cost of any
delta touching almost every sample).

Each edge is included in each sample independently with probability ``S``
(Bernoulli), so ``E[|E_s|] = S·|E|`` rather than exactly ``⌈S·|E|⌉``.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from ..graph import BipartiteGraph
from .base import SamplePlan, Sampler, resolve_rng

__all__ = ["StableEdgeSampler"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SAMPLE_SALT = np.uint64(0xD6E8FEB86659FD93)
_STRIPE_SALT = np.uint64(0xA24BAED4963EE407)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorised over uint64 arrays."""
    x = (x + _GOLDEN).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _MIX1
    x ^= x >> np.uint64(27)
    x *= _MIX2
    x ^= x >> np.uint64(31)
    return x


class StableEdgeSampler(Sampler):
    """Prefix-stable Bernoulli edge sampling over hash-assigned stripes.

    Parameters
    ----------
    ratio:
        Per-edge inclusion probability ``S``.
    stripe:
        Edges per stripe. Larger stripes localise deltas into fewer samples
        (faster incremental refresh); ``1`` gives independent per-edge
        sampling. Appends shorter than one stripe invalidate at most two
        stripes' worth of samples.
    """

    name = "ses"

    def __init__(self, ratio: float, stripe: int = 1024) -> None:
        super().__init__(ratio)
        stripe = int(stripe)
        if stripe < 1:
            raise SamplingError(f"stripe must be >= 1, got {stripe}")
        self.stripe = stripe

    # ------------------------------------------------------------------
    # deterministic machinery (shared with IncrementalEnsemFDet)
    # ------------------------------------------------------------------

    def derive_key(self, rng: np.random.Generator | int | None) -> int:
        """One hash key per fit, drawn deterministically from the seed/rng.

        ``EnsemFDet.fit`` resolves its configured seed into a fresh
        generator and hands it straight to :meth:`sample_many`; drawing the
        key as the generator's *first* value lets an incremental detector
        re-derive the identical key from the same seed later.
        """
        return int(resolve_rng(rng).integers(0, np.iinfo(np.int64).max, dtype=np.int64))

    def n_stripes(self, n_edges: int) -> int:
        """Stripes covering ``n_edges`` edges (at least 1)."""
        return max(1, -(-int(n_edges) // self.stripe))

    def stripe_inclusion(self, n_stripes: int, n_samples: int, key: int) -> np.ndarray:
        """Boolean matrix ``(n_samples, n_stripes)``: stripe ∈ sample?"""
        if self.ratio >= 1.0:
            return np.ones((n_samples, n_stripes), dtype=bool)
        samples = _splitmix64(
            np.arange(n_samples, dtype=np.uint64)[:, None] * _SAMPLE_SALT
            + np.uint64(key)
        )
        stripes = np.arange(n_stripes, dtype=np.uint64)[None, :] * _STRIPE_SALT
        hashes = _splitmix64(samples + stripes)
        threshold = np.uint64(int(self.ratio * float(2**64)))
        return hashes < threshold

    def stripe_row(self, n_stripes: int, sample_index: int, key: int) -> np.ndarray:
        """One member's row of :meth:`stripe_inclusion`, hashed standalone."""
        if self.ratio >= 1.0:
            return np.ones(n_stripes, dtype=bool)
        sample = _splitmix64(
            np.array([sample_index], dtype=np.uint64) * _SAMPLE_SALT + np.uint64(key)
        )
        stripes = np.arange(n_stripes, dtype=np.uint64) * _STRIPE_SALT
        hashes = _splitmix64(sample + stripes)
        return hashes < np.uint64(int(self.ratio * float(2**64)))

    def edge_mask(self, n_edges: int, key: int, sample_index: int) -> np.ndarray:
        """Per-edge inclusion mask of one ensemble member."""
        row = self.stripe_row(self.n_stripes(n_edges), sample_index, key)
        return self.expand_stripes(row, n_edges)

    def expand_stripes(self, stripe_row: np.ndarray, n_edges: int) -> np.ndarray:
        """Broadcast a per-stripe inclusion row out to a per-edge mask."""
        if self.stripe == 1:
            return stripe_row[:n_edges]
        return np.repeat(stripe_row, self.stripe)[:n_edges]

    def _subgraph(self, graph: BipartiteGraph, mask: np.ndarray) -> BipartiteGraph:
        return graph.edge_subgraph(np.nonzero(mask)[0])

    def stripe_plan(self, stripe_row: np.ndarray) -> SamplePlan:
        """Wrap one member's stripe-inclusion row as a :class:`SamplePlan`.

        The row is the natural *native* plan of this sampler: |E|/stripe
        booleans that identify the member's edge set on any prefix-extended
        graph, which is what lets the incremental layer ship plans for a
        grown graph without recomputing them from scratch.
        """
        return SamplePlan(kind="stripes", stripe_row=stripe_row, stripe=self.stripe)

    # ------------------------------------------------------------------
    # Sampler interface
    # ------------------------------------------------------------------

    def plan(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> SamplePlan:
        """Plan one sampled subgraph (ensemble member 0 of the derived key)."""
        key = self.derive_key(rng)
        return self.stripe_plan(self.stripe_row(self.n_stripes(graph.n_edges), 0, key))

    def plan_many(
        self,
        graph: BipartiteGraph,
        n_samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[SamplePlan]:
        """Plan all ``N`` members from one key (overrides the base loop).

        The stripe-inclusion matrix is hashed once for all members; each
        member's materialized subgraph keeps the parent's edge order, which
        is what the incremental layer relies on when it rebuilds a single
        member.
        """
        if n_samples < 1:
            raise SamplingError(f"n_samples must be >= 1, got {n_samples}")
        key = self.derive_key(rng)
        inclusion = self.stripe_inclusion(self.n_stripes(graph.n_edges), n_samples, key)
        return [self.stripe_plan(inclusion[index]) for index in range(n_samples)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StableEdgeSampler(ratio={self.ratio}, stripe={self.stripe})"
