"""Sampler interface shared by all bipartite-graph sampling methods.

The paper (§IV-A) decomposes the large detection problem into ``N`` sampled
subgraphs drawn at ratio ``S``. Since the zero-copy fan-out refactor every
sampler is split into two halves:

* :meth:`Sampler.plan` — the cheap, RNG-consuming parent-side step. It
  looks only at the graph's *sizes* and returns a compact
  :class:`SamplePlan` (an edge-index array, a node pick, or a stripe row —
  typically ~1% the bytes of the subgraph it describes).
* :func:`materialize_plan` — the deterministic worker-side step that turns
  ``(parent graph, plan)`` into the sampled :class:`BipartiteGraph`,
  normally against a zero-copy :class:`~repro.graph.GraphStore` view of a
  shared-memory segment.

``sampler.sample(graph, rng)`` is literally
``materialize_plan(graph, sampler.plan(graph, rng))``, and ``plan_many``
consumes the RNG in the same sequential order the historical eager
``sample_many`` did, so plan-based pipelines are bitwise identical to the
eager ones (enforced by ``tests/ensemble/test_plan_parity.py``).

Materialized subgraphs keep ``user_labels`` / ``merchant_labels`` that
reference the parent graph, so ensemble votes can be tallied per original
node.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import SamplingError
from ..graph import BipartiteGraph
from ..graph.window import EdgeWindow

__all__ = [
    "SamplePlan",
    "Sampler",
    "check_ratio",
    "compact_indices",
    "materialize_plan",
    "resolve_rng",
]


def check_ratio(ratio: float) -> float:
    """Validate a sample ratio ``S ∈ (0, 1]``."""
    ratio = float(ratio)
    if not 0.0 < ratio <= 1.0:
        raise SamplingError(f"sample ratio must be in (0, 1], got {ratio}")
    return ratio


def compact_indices(indices: np.ndarray, bound: int) -> np.ndarray:
    """Narrow an index array to int32 when every value fits.

    Plans ship across process boundaries; halving the index width halves
    the dominant payload of edge-index plans. Materialization converts
    back to int64, so the resulting subgraphs are bitwise unchanged.
    """
    if bound <= np.iinfo(np.int32).max:
        return indices.astype(np.int32)
    return indices


def resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Accept a Generator, an integer seed, or ``None`` (fresh entropy).

    ``bool`` is rejected explicitly: it *is* an ``int`` subclass, so
    ``resolve_rng(True)`` would silently mean seed 1 — almost certainly a
    misplaced flag argument rather than an intentional seed.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (bool, np.bool_)):
        raise SamplingError(
            f"seed must be an int, Generator or None, got bool {rng!r} "
            "(a misplaced flag argument?)"
        )
    return np.random.default_rng(rng)


@dataclass(frozen=True)
class SamplePlan:
    """Compact, picklable description of one sampled subgraph.

    A plan records *what the RNG chose*, not the subgraph itself, so the
    parent can fan ``N`` of them out to workers without shipping any graph
    bytes. Exactly one of three kinds:

    * ``"edges"`` — keep ``edge_indices`` of the parent (RES, and the
      empty-sample degenerate case of the node samplers),
    * ``"nodes"`` — keep the edges induced by ``users`` and/or
      ``merchants`` (ONS samples one side, TNS both),
    * ``"stripes"`` — keep the edges of the stripes flagged in
      ``stripe_row`` (:class:`~repro.sampling.StableEdgeSampler`; the row
      is |E|/stripe bits, independent of the delta history).

    ``weight_scale`` optionally rescales the surviving edges' weights
    (Theorem 1's ``1/S`` Horvitz–Thompson correction).
    """

    kind: str
    edge_indices: np.ndarray | None = None
    users: np.ndarray | None = None
    merchants: np.ndarray | None = None
    keep_isolated: bool = False
    weight_scale: float | None = None
    stripe_row: np.ndarray | None = None
    stripe: int = 1

    KINDS = ("edges", "nodes", "stripes")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise SamplingError(f"plan kind must be one of {self.KINDS}, got {self.kind!r}")

    @property
    def nbytes(self) -> int:
        """Payload bytes this plan ships to a worker (diagnostics)."""
        total = 0
        for array in (self.edge_indices, self.users, self.merchants, self.stripe_row):
            if array is not None:
                total += array.nbytes
        return total


def materialize_plan(
    graph: BipartiteGraph, plan: SamplePlan, window: EdgeWindow | None = None
) -> BipartiteGraph:
    """Deterministically expand ``plan`` against its parent ``graph``.

    This is the worker-side half of sampling: no RNG, pure array work, and
    byte-for-byte the subgraph the eager ``sampler.sample`` call would have
    produced. ``graph`` may be a read-only shared-memory view.

    With a ``window``, ``graph`` is the full *stored* graph of a rolling
    window (tombstoned rows included): stripe membership is looked up by
    each row's original append id — so expiring or compacting *other*
    edges never moves a surviving edge between samples — and dead rows are
    masked out. Only stripe plans support windows; the positional kinds
    ("edges", "nodes") have no id-stable meaning over a mutating log.
    """
    if window is not None:
        if plan.kind != "stripes":
            raise SamplingError(
                f"windowed materialization requires stripe plans, got {plan.kind!r}"
            )
        ids = window.edge_ids if plan.stripe == 1 else window.edge_ids // plan.stripe
        mask = plan.stripe_row[ids] & window.alive
        subgraph = graph.edge_subgraph(np.nonzero(mask)[0])
    elif plan.kind == "edges":
        subgraph = graph.edge_subgraph(plan.edge_indices)
    elif plan.kind == "stripes":
        row = plan.stripe_row
        if plan.stripe == 1:
            mask = row[: graph.n_edges]
        else:
            mask = np.repeat(row, plan.stripe)[: graph.n_edges]
        subgraph = graph.edge_subgraph(np.nonzero(mask)[0])
    else:
        subgraph = graph.induced_subgraph(
            users=plan.users,
            merchants=plan.merchants,
            keep_isolated=plan.keep_isolated,
        )
    if plan.weight_scale is not None:
        subgraph = subgraph.with_weights(
            subgraph.weights_or_ones() * plan.weight_scale, trusted=True
        )
    return subgraph


class Sampler(ABC):
    """A structural sampling method for bipartite graphs."""

    #: short identifier used in experiment tables ("res", "ons_user", ...)
    name: str = "sampler"

    def __init__(self, ratio: float) -> None:
        self.ratio = check_ratio(ratio)

    @abstractmethod
    def plan(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> SamplePlan:
        """Draw the compact plan of one sampled subgraph (parent-side)."""

    def sample(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> BipartiteGraph:
        """Draw one sampled subgraph of ``graph`` (plan + materialize)."""
        return materialize_plan(graph, self.plan(graph, rng))

    def plan_many(
        self,
        graph: BipartiteGraph,
        n_samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[SamplePlan]:
        """Plans for ``n_samples`` independent subgraphs (the paper's ``N``).

        Draws from one resolved generator sequentially — the same RNG
        consumption order as materializing each sample eagerly in turn.
        """
        if n_samples < 1:
            raise SamplingError(f"n_samples must be >= 1, got {n_samples}")
        generator = resolve_rng(rng)
        return [self.plan(graph, generator) for _ in range(n_samples)]

    def sample_many(
        self,
        graph: BipartiteGraph,
        n_samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[BipartiteGraph]:
        """Draw ``n_samples`` independent subgraphs, materialized eagerly."""
        return [
            materialize_plan(graph, plan)
            for plan in self.plan_many(graph, n_samples, rng)
        ]

    def repetition_rate(self, n_samples: int) -> float:
        """``R = S × N`` — expected number of times an element is resampled."""
        return self.ratio * n_samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(ratio={self.ratio})"
