"""Sampler interface shared by all bipartite-graph sampling methods.

The paper (§IV-A) decomposes the large detection problem into ``N`` sampled
subgraphs drawn at ratio ``S``. Each sampler here is a small immutable
strategy object: ``sampler.sample(graph, rng)`` returns a subgraph whose
``user_labels`` / ``merchant_labels`` still reference the parent graph, so
ensemble votes can be tallied per original node.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import SamplingError
from ..graph import BipartiteGraph

__all__ = ["Sampler", "check_ratio", "resolve_rng"]


def check_ratio(ratio: float) -> float:
    """Validate a sample ratio ``S ∈ (0, 1]``."""
    ratio = float(ratio)
    if not 0.0 < ratio <= 1.0:
        raise SamplingError(f"sample ratio must be in (0, 1], got {ratio}")
    return ratio


def resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Accept a Generator, a seed, or ``None`` (fresh entropy)."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class Sampler(ABC):
    """A structural sampling method for bipartite graphs."""

    #: short identifier used in experiment tables ("res", "ons_user", ...)
    name: str = "sampler"

    def __init__(self, ratio: float) -> None:
        self.ratio = check_ratio(ratio)

    @abstractmethod
    def sample(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> BipartiteGraph:
        """Draw one sampled subgraph of ``graph``."""

    def sample_many(
        self,
        graph: BipartiteGraph,
        n_samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[BipartiteGraph]:
        """Draw ``n_samples`` independent subgraphs (the paper's ``N``)."""
        if n_samples < 1:
            raise SamplingError(f"n_samples must be >= 1, got {n_samples}")
        generator = resolve_rng(rng)
        return [self.sample(graph, generator) for _ in range(n_samples)]

    def repetition_rate(self, n_samples: int) -> float:
        """``R = S × N`` — expected number of times an element is resampled."""
        return self.ratio * n_samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(ratio={self.ratio})"
