"""Structural sampling methods for bipartite graphs (paper §IV-A)."""

from .base import SamplePlan, Sampler, check_ratio, compact_indices, materialize_plan, resolve_rng
from .one_side import OneSideNodeSampler, Side, recommend_side
from .random_edge import RandomEdgeSampler
from .registry import PAPER_FIG5_NAMES, available_samplers, make_sampler
from .stable import StableEdgeSampler
from .theory import (
    epsilon_approximation_holds,
    expected_sampled_degree_counts_es,
    expected_sampled_degree_counts_ns,
    lemma1_crossover_degree,
    theorem1_edge_probability,
)
from .two_side import TwoSideNodeSampler

__all__ = [
    "Sampler",
    "SamplePlan",
    "check_ratio",
    "compact_indices",
    "materialize_plan",
    "resolve_rng",
    "RandomEdgeSampler",
    "StableEdgeSampler",
    "OneSideNodeSampler",
    "TwoSideNodeSampler",
    "Side",
    "recommend_side",
    "make_sampler",
    "available_samplers",
    "PAPER_FIG5_NAMES",
    "expected_sampled_degree_counts_ns",
    "expected_sampled_degree_counts_es",
    "lemma1_crossover_degree",
    "theorem1_edge_probability",
    "epsilon_approximation_holds",
]
