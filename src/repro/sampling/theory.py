"""Theoretical results from §IV-A1: Lemma 1 and Theorem 1 made executable.

The paper justifies edge sampling with two results:

* **Lemma 1** — with node sampling (NS) the expected number of sampled nodes
  of original degree ``q`` is ``E_NS[d_q] = f_D(q)·p_v``; with edge sampling
  (ES) it is ``E_ES[d_q] = f_D(q)·(1 − (1 − p_e)^q)``. For
  ``q > log(1−p_v)/log(1−p_e)`` edge sampling selects degree-``q`` nodes at a
  higher rate — ES is biased toward exactly the dense structures we hunt.
* **Theorem 1** — sampling edges independently with probability
  ``p = 3(d+2)·ln n / (c·ε²)`` (and re-weighting by ``1/p``) yields a
  subgraph whose density is an ``ε``-approximation of the original.

These functions compute both sides of those statements so tests (and the
benchmark suite) can check them empirically against the samplers.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SamplingError
from ..graph import BipartiteGraph, degree_histogram

__all__ = [
    "expected_sampled_degree_counts_ns",
    "expected_sampled_degree_counts_es",
    "lemma1_crossover_degree",
    "theorem1_edge_probability",
    "epsilon_approximation_holds",
]


def expected_sampled_degree_counts_ns(
    degrees: np.ndarray, p_v: float
) -> dict[int, float]:
    """``E_NS[d_q] = f_D(q) · p_v`` for every degree ``q`` present."""
    if not 0.0 <= p_v <= 1.0:
        raise SamplingError(f"p_v must be in [0, 1], got {p_v}")
    return {q: count * p_v for q, count in degree_histogram(degrees).items()}


def expected_sampled_degree_counts_es(
    degrees: np.ndarray, p_e: float
) -> dict[int, float]:
    """``E_ES[d_q] = f_D(q) · (1 − (1 − p_e)^q)`` for every degree ``q``."""
    if not 0.0 <= p_e <= 1.0:
        raise SamplingError(f"p_e must be in [0, 1], got {p_e}")
    return {
        q: count * (1.0 - (1.0 - p_e) ** q)
        for q, count in degree_histogram(degrees).items()
    }


def lemma1_crossover_degree(p_v: float, p_e: float) -> float:
    """Degree above which ES out-samples NS: ``log(1−p_v) / log(1−p_e)``.

    For ``q`` strictly greater than this value, ``E_ES[d_q] > E_NS[d_q]``.
    """
    if not 0.0 < p_v < 1.0 or not 0.0 < p_e < 1.0:
        raise SamplingError("crossover degree needs p_v, p_e strictly inside (0, 1)")
    return math.log(1.0 - p_v) / math.log(1.0 - p_e)


def theorem1_edge_probability(
    graph: BipartiteGraph, epsilon: float, d: float = 1.0
) -> float:
    """Theorem 1's sampling probability ``p = 3(d+2)·ln n / (c·ε²)``.

    ``n`` is the node count and ``c`` the minimum node degree (the theorem
    assumes ``c = Ω(ln n)``; we clamp ``c ≥ 1`` so the formula stays defined
    on arbitrary inputs). The result is clipped to ``(0, 1]``.
    """
    if epsilon <= 0:
        raise SamplingError(f"epsilon must be positive, got {epsilon}")
    n = max(graph.n_nodes, 2)
    degrees = np.concatenate([graph.user_degrees(), graph.merchant_degrees()])
    positive = degrees[degrees > 0]
    c = float(positive.min()) if positive.size else 1.0
    c = max(c, 1.0)
    p = 3.0 * (d + 2.0) * math.log(n) / (c * epsilon * epsilon)
    return float(min(1.0, p))


def epsilon_approximation_holds(
    original_density: float, sampled_density: float, epsilon: float
) -> bool:
    """Check Theorem 1's sandwich: ``(1−ε)·φ̂ < φ < (1+ε)·φ̂``.

    ``φ`` is the original density and ``φ̂`` the (re-weighted) sampled
    density. Degenerate zero densities count as approximated only when both
    sides are zero.
    """
    if epsilon <= 0:
        raise SamplingError(f"epsilon must be positive, got {epsilon}")
    if sampled_density == 0.0:
        return original_density == 0.0
    return (
        (1.0 - epsilon) * sampled_density
        < original_density
        < (1.0 + epsilon) * sampled_density
    )
