"""Name-based construction of samplers.

Experiments refer to sampling methods by the names the paper's Fig. 5 uses
("Random_Edge_Bagging", "Node_Merchant_Bagging", ...); this registry maps
those names — and terser aliases — to configured sampler instances.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SamplingError
from .base import Sampler
from .one_side import OneSideNodeSampler, Side
from .random_edge import RandomEdgeSampler
from .stable import StableEdgeSampler
from .two_side import TwoSideNodeSampler

__all__ = ["make_sampler", "available_samplers", "PAPER_FIG5_NAMES"]

_FACTORIES: dict[str, Callable[[float], Sampler]] = {
    "res": lambda ratio: RandomEdgeSampler(ratio),
    "random_edge": lambda ratio: RandomEdgeSampler(ratio),
    "random_edge_bagging": lambda ratio: RandomEdgeSampler(ratio),
    "ons_user": lambda ratio: OneSideNodeSampler(ratio, Side.USER),
    "node_pin_bagging": lambda ratio: OneSideNodeSampler(ratio, Side.USER),
    "ons_merchant": lambda ratio: OneSideNodeSampler(ratio, Side.MERCHANT),
    "node_merchant_bagging": lambda ratio: OneSideNodeSampler(ratio, Side.MERCHANT),
    "tns": lambda ratio: TwoSideNodeSampler(ratio),
    "two_sides_bagging": lambda ratio: TwoSideNodeSampler(ratio),
    "ses": lambda ratio: StableEdgeSampler(ratio),
    "stable_edge": lambda ratio: StableEdgeSampler(ratio),
}

#: the four sampling variants of the paper's Fig. 5, by canonical name
PAPER_FIG5_NAMES = (
    "random_edge_bagging",
    "node_merchant_bagging",
    "node_pin_bagging",
    "two_sides_bagging",
)


def available_samplers() -> list[str]:
    """All recognised sampler names (sorted)."""
    return sorted(_FACTORIES)


def make_sampler(name: str, ratio: float) -> Sampler:
    """Instantiate a sampler by (case-insensitive) name."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise SamplingError(
            f"unknown sampler {name!r}; available: {', '.join(available_samplers())}"
        )
    return factory(ratio)
