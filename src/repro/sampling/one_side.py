"""One-side Node Sampling (ONS), §IV-A3 of the paper.

Samples rows (or columns) of the adjacency matrix ``W``: pick a fraction
``S`` of one side's nodes, keep every edge incident to a picked node, keep
all touched nodes of the other side.

Which side to sample matters (the paper's "task-oriented" and "retain
topology" principles): when ``Davg(V) ≫ Davg(U)``, sampling the merchant
side ``V`` retains dense components (picking one busy merchant pulls in its
whole user crowd), whereas sampling the sparse user side shatters them. The
Fig.-5 experiment reproduces exactly this contrast.
"""

from __future__ import annotations

import numpy as np

from ..errors import SamplingError
from ..graph import BipartiteGraph
from .base import SamplePlan, Sampler, compact_indices, resolve_rng

__all__ = ["OneSideNodeSampler", "Side", "recommend_side"]


class Side:
    """String constants naming the two partitions."""

    USER = "user"
    MERCHANT = "merchant"
    ALL = (USER, MERCHANT)


def recommend_side(graph: BipartiteGraph) -> str:
    """The paper's *retain topology* rule: sample the denser side.

    Returns the side whose average degree is higher — picking those nodes
    preserves dense components after sampling (§IV-A3, second bullet).
    """
    avg_user = graph.n_edges / graph.n_users if graph.n_users else 0.0
    avg_merchant = graph.n_edges / graph.n_merchants if graph.n_merchants else 0.0
    return Side.MERCHANT if avg_merchant >= avg_user else Side.USER


class OneSideNodeSampler(Sampler):
    """Sample a fraction ``S`` of one side's nodes plus their edges.

    Parameters
    ----------
    ratio:
        Sample ratio ``S = |U_s| / |U|`` (or over ``V``).
    side:
        ``"user"`` or ``"merchant"`` — which partition to sample.
    keep_isolated:
        Retain sampled nodes that end up with no edges (the strict
        matrix-row-slice semantics). Defaults to ``False``: isolated nodes
        can never join a dense block, so detectors ignore them anyway.
    """

    name = "ons"

    def __init__(self, ratio: float, side: str, keep_isolated: bool = False) -> None:
        super().__init__(ratio)
        if side not in Side.ALL:
            raise SamplingError(f"side must be one of {Side.ALL}, got {side!r}")
        self.side = side
        self.keep_isolated = bool(keep_isolated)
        self.name = f"ons_{side}"

    def plan(
        self, graph: BipartiteGraph, rng: np.random.Generator | int | None = None
    ) -> SamplePlan:
        generator = resolve_rng(rng)
        if self.side == Side.USER:
            population = graph.n_users
        else:
            population = graph.n_merchants
        n_pick = min(int(np.ceil(self.ratio * population)), population)
        if n_pick == 0:
            return SamplePlan(kind="edges", edge_indices=np.empty(0, dtype=np.int64))
        chosen = compact_indices(
            generator.choice(population, size=n_pick, replace=False), population
        )
        if self.side == Side.USER:
            return SamplePlan(kind="nodes", users=chosen, keep_isolated=self.keep_isolated)
        return SamplePlan(kind="nodes", merchants=chosen, keep_isolated=self.keep_isolated)
