"""Unified detector layer: one protocol, one result type, one registry."""

from .base import Detection, Detector, StreamingDetector
from .blocks import FdetBlockDetector, FraudarBlockDetector, detection_from_blocks
from .ensemble import EnsembleDetector, IncrementalDetector, detection_from_votes
from .registry import (
    DETECTOR_NAMES,
    DetectorInfo,
    available_detectors,
    canonical_detector_spec,
    detector_descriptions,
    detector_info,
    make_detector,
    parse_detector_spec,
    register_detector,
    split_detector_specs,
)
from .scores import DegreeScoreDetector, FBoxScoreDetector, SpokenScoreDetector
from .specs import (
    DegreeSpec,
    DetectorContext,
    DetectorSpec,
    EnsembleSpec,
    FBoxSpec,
    FdetSpec,
    FraudarSpec,
    IncrementalSpec,
    SpokenSpec,
)

__all__ = [
    # protocol + result
    "Detection",
    "Detector",
    "StreamingDetector",
    # registry
    "DETECTOR_NAMES",
    "DetectorInfo",
    "available_detectors",
    "canonical_detector_spec",
    "detector_descriptions",
    "detector_info",
    "make_detector",
    "parse_detector_spec",
    "register_detector",
    "split_detector_specs",
    # specs
    "DetectorContext",
    "DetectorSpec",
    "EnsembleSpec",
    "IncrementalSpec",
    "FdetSpec",
    "FraudarSpec",
    "SpokenSpec",
    "FBoxSpec",
    "DegreeSpec",
    # adapters
    "EnsembleDetector",
    "IncrementalDetector",
    "FdetBlockDetector",
    "FraudarBlockDetector",
    "SpokenScoreDetector",
    "FBoxScoreDetector",
    "DegreeScoreDetector",
    "detection_from_votes",
    "detection_from_blocks",
]
