"""Detector-protocol adapters for block-extraction detectors.

FDET and Fraudar both emit an ordered sequence of dense blocks. Their
uniform :class:`~repro.detectors.base.Detection` view is built the same
way for both:

* ``operating_points`` are the cumulative block unions ``k = 1..K`` (the
  paper's "polyline" operating points),
* ``ranked_users`` is extraction order — the first time a user appears in
  a block decides its rank (exactly the ranking the scenario harness used
  for Fraudar's precision@k), and
* ``user_scores`` encode that rank positionally (``n_ranked - position``,
  0 for never-extracted users), so score-derived consumers agree with the
  explicit ranking.
"""

from __future__ import annotations

import numpy as np

from ..baselines import FraudarDetector
from ..fdet import Block, Fdet, FdetConfig
from ..graph import BipartiteGraph
from ..parallel import Timer
from .base import Detection
from .specs import DetectorContext, FdetSpec, FraudarSpec

__all__ = ["FdetBlockDetector", "FraudarBlockDetector", "detection_from_blocks"]


def _extraction_ranking(blocks: tuple[Block, ...], attribute: str) -> list[int]:
    """Labels in first-extraction order, deduplicated."""
    ranked: list[int] = []
    seen: set[int] = set()
    for block in blocks:
        for label in getattr(block, attribute).tolist():
            if label not in seen:
                seen.add(label)
                ranked.append(label)
    return ranked


def _rank_scores(labels: np.ndarray, ranked: list[int]) -> np.ndarray:
    """Positional scores: first-ranked label scores highest, unranked 0."""
    score_of = {label: len(ranked) - position for position, label in enumerate(ranked)}
    return np.array(
        [score_of.get(int(label), 0) for label in labels.tolist()], dtype=np.float64
    )


def detection_from_blocks(
    spec: str,
    graph: BipartiteGraph,
    blocks: tuple[Block, ...],
    seconds: float,
    meta: dict,
) -> Detection:
    """Uniform :class:`Detection` view of an ordered block sequence."""
    points: list[tuple[float, np.ndarray]] = []
    for n_blocks in range(1, len(blocks) + 1):
        union = np.unique(
            np.concatenate([block.user_labels for block in blocks[:n_blocks]])
        )
        points.append((float(n_blocks), union))
    ranked_users = _extraction_ranking(blocks, "user_labels")
    ranked_merchants = _extraction_ranking(blocks, "merchant_labels")
    return Detection(
        spec=spec,
        user_labels=graph.user_labels,
        user_scores=_rank_scores(graph.user_labels, ranked_users),
        merchant_labels=graph.merchant_labels,
        merchant_scores=_rank_scores(graph.merchant_labels, ranked_merchants),
        operating_points=tuple(points),
        ranked_users=np.array(ranked_users, dtype=np.int64),
        blocks=blocks,
        seconds=seconds,
        meta={"n_blocks": len(blocks), **meta},
    )


class FdetBlockDetector:
    """``fdet`` — one FDET run on the full graph, truncated at ``k̂``."""

    def __init__(self, spec: str, config: FdetSpec, context: DetectorContext) -> None:
        self.spec = spec
        # min_block_edges only when set: FdetConfig keeps its own default
        kwargs = (
            {"min_block_edges": config.min_block_edges}
            if config.min_block_edges is not None
            else {}
        )
        self.config = FdetConfig(
            max_blocks=config.max_blocks if config.max_blocks is not None else context.max_blocks,
            engine=config.engine if config.engine is not None else context.engine,
            **kwargs,
        )

    def fit(self, graph: BipartiteGraph) -> Detection:
        with Timer() as timer:
            result = Fdet(self.config).detect(graph)
        return detection_from_blocks(
            self.spec,
            graph,
            result.blocks,
            seconds=timer.elapsed,
            meta={"k_hat": result.k_hat, "n_blocks_extracted": len(result.all_blocks)},
        )


class FraudarBlockDetector:
    """``fraudar`` — the multi-block Fraudar baseline."""

    def __init__(self, spec: str, config: FraudarSpec, context: DetectorContext) -> None:
        self.spec = spec
        kwargs = (
            {"min_block_edges": config.min_block_edges}
            if config.min_block_edges is not None
            else {}
        )
        self.detector = FraudarDetector(
            n_blocks=config.n_blocks if config.n_blocks is not None else context.max_blocks,
            engine=config.engine if config.engine is not None else context.engine,
            **kwargs,
        )

    def fit(self, graph: BipartiteGraph) -> Detection:
        with Timer() as timer:
            result = self.detector.detect(graph)
        return detection_from_blocks(
            self.spec, graph, result.blocks, seconds=timer.elapsed, meta={}
        )
