"""Detector-protocol adapters for score-based baselines.

SpokEn, FBox and the degree control already produce continuous per-user
suspiciousness scores; their :class:`~repro.detectors.base.Detection` view
carries the scores directly and leaves ``operating_points`` unset — the
evaluation layer sweeps a score threshold instead
(:func:`repro.metrics.pr_curve_from_scores`), exactly as the Fig.-3 glue
always did for these methods.
"""

from __future__ import annotations

from ..baselines import DegreeDetector, FBoxDetector, SpokenDetector
from ..graph import BipartiteGraph
from ..parallel import Timer
from .base import Detection
from .specs import DegreeSpec, DetectorContext, FBoxSpec, SpokenSpec

__all__ = ["SpokenScoreDetector", "FBoxScoreDetector", "DegreeScoreDetector"]


class SpokenScoreDetector:
    """``spoken`` — max normalised mass in the top-k singular components."""

    def __init__(self, spec: str, config: SpokenSpec, context: DetectorContext) -> None:
        self.spec = spec
        self.detector = SpokenDetector(
            config.components if config.components is not None else context.n_components
        )

    def fit(self, graph: BipartiteGraph) -> Detection:
        with Timer() as timer:
            scores = self.detector.score(graph)
        return Detection(
            spec=self.spec,
            user_labels=graph.user_labels,
            user_scores=scores.user_scores,
            merchant_labels=graph.merchant_labels,
            merchant_scores=scores.merchant_scores,
            seconds=timer.elapsed,
            meta={"n_components": scores.n_components},
        )


class FBoxScoreDetector:
    """``fbox`` — within-degree-bucket SVD reconstruction deficiency."""

    def __init__(self, spec: str, config: FBoxSpec, context: DetectorContext) -> None:
        self.spec = spec
        # unset spec fields defer to the baseline's own defaults, so the
        # registry path can never silently diverge from direct construction
        kwargs = {}
        if config.min_degree is not None:
            kwargs["min_degree"] = config.min_degree
        if config.buckets is not None:
            kwargs["n_degree_buckets"] = config.buckets
        self.detector = FBoxDetector(
            n_components=(
                config.components if config.components is not None else context.n_components
            ),
            **kwargs,
        )

    def fit(self, graph: BipartiteGraph) -> Detection:
        with Timer() as timer:
            scores = self.detector.score(graph)
        return Detection(
            spec=self.spec,
            user_labels=graph.user_labels,
            user_scores=scores.user_scores,
            seconds=timer.elapsed,
            # the rank actually used (post-clamp), not the configured one
            meta={"n_components": scores.n_components},
        )


class DegreeScoreDetector:
    """``degree`` — rank users by (optionally weighted) purchase count."""

    def __init__(self, spec: str, config: DegreeSpec, context: DetectorContext) -> None:
        self.spec = spec
        self.detector = (
            DegreeDetector(weighted=config.weighted)
            if config.weighted is not None
            else DegreeDetector()
        )

    def fit(self, graph: BipartiteGraph) -> Detection:
        with Timer() as timer:
            scores = self.detector.score_users(graph)
        return Detection(
            spec=self.spec,
            user_labels=graph.user_labels,
            user_scores=scores,
            seconds=timer.elapsed,
            meta={"weighted": self.detector.weighted},
        )
