"""Detector spec dataclasses and the shared spec-string grammar.

A detector spec is ``name`` or ``name:key=value,key=value,...`` — the same
terse grammar the sampler registry uses for names, extended with typed
parameters. Each registered detector owns a frozen config dataclass here;
parameters left unset (``None``) inherit from the caller's
:class:`DetectorContext`, so one grid/experiment/CLI invocation can share
its knobs (seed, ensemble size, engine, ...) across every detector it runs
while any individual spec can still override them.

Parsing is type-directed: a field annotated ``int | None`` coerces its raw
string with ``int``, booleans accept ``1/0/true/false/yes/no``, and
serialisation (:meth:`DetectorSpec.params` + :func:`format_param`) emits a
canonical form that round-trips — ``parse(serialise(parse(s)))`` is always
``parse(s)``, and a canonically-written spec string re-serialises to
itself.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import DetectionError
from ..fdet import PeelEngine
from ..parallel import ExecutorMode

__all__ = [
    "DetectorContext",
    "DetectorSpec",
    "EnsembleSpec",
    "IncrementalSpec",
    "FdetSpec",
    "FraudarSpec",
    "SpokenSpec",
    "FBoxSpec",
    "DegreeSpec",
    "split_spec",
    "format_param",
]


@dataclass(frozen=True)
class DetectorContext:
    """Shared knobs a caller provides once for every detector it builds.

    The scenario harness derives one from its grid config, the figure
    experiments from their scale preset, the CLI from its flags. A spec
    field that is left unset falls back to the matching context value, so
    ``"ensemfdet"`` and ``"incremental"`` built from the same context are
    guaranteed to share sampler, seed and FDET knobs (which is what makes
    their bit-parity check meaningful).
    """

    seed: int | None = 0
    n_samples: int = 16
    sample_ratio: float = 0.3
    stripe: int = 64
    max_blocks: int = 10
    n_components: int = 25
    engine: str = PeelEngine.DEFAULT
    executor: str = ExecutorMode.SERIAL
    shared_memory: bool = True


_SCALAR_TYPES = {"int": int, "float": float, "bool": bool, "str": str}

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def _coerce(name: str, key: str, raw: object, target: type) -> object:
    """Coerce one raw parameter (string from a spec, or dict value)."""
    if raw is None:
        return None
    if target is bool:
        if isinstance(raw, bool):
            return raw
        word = str(raw).strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise DetectionError(
            f"detector {name!r}: parameter {key}={raw!r} is not a boolean "
            "(use 1/0, true/false, yes/no)"
        )
    if isinstance(raw, bool):
        # bool is an int subclass; reject it for non-bool fields explicitly
        raise DetectionError(
            f"detector {name!r}: parameter {key!r} expects {target.__name__}, got a bool"
        )
    if target is str:
        # string parameters are enum-like (sampler/engine/executor names);
        # normalising case here keeps every comparison downstream — stable-
        # sampler aliases, duplicate-spec detection, canonical forms —
        # consistent with the case-insensitive spec grammar
        return str(raw).strip().lower()
    try:
        return target(raw)
    except (TypeError, ValueError) as exc:
        raise DetectionError(
            f"detector {name!r}: parameter {key}={raw!r} is not a valid {target.__name__}"
        ) from exc


def format_param(value: object) -> str:
    """Canonical textual form of one parameter value (round-trips).

    Floats use ``repr`` — the shortest string that parses back to the
    exact same value — so canonicalising a spec never drifts the
    configuration (``format(v, "g")`` would truncate to 6 significant
    digits and silently change what runs).
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def split_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split ``"name:key=val,key=val"`` into ``(name, raw params)``.

    Names and keys are case-insensitive; a bare ``"name"`` (or a trailing
    colon with nothing after it) yields empty params.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise DetectionError(f"empty detector spec {spec!r}")
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    if not name:
        raise DetectionError(f"detector spec {spec!r} has no name")
    params: dict[str, str] = {}
    for item in rest.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        key, value = key.strip().lower(), value.strip()
        if not eq or not key or not value:
            raise DetectionError(
                f"malformed parameter {item!r} in detector spec {spec!r} "
                "(expected key=value)"
            )
        if key in params:
            raise DetectionError(f"duplicate parameter {key!r} in detector spec {spec!r}")
        params[key] = value
    return name, params


@dataclass(frozen=True)
class DetectorSpec:
    """Base class for per-detector configs parsed from specs and dicts."""

    @classmethod
    def field_types(cls) -> dict[str, type]:
        """Field name -> scalar python type, derived from the annotations.

        Spec fields must be annotated ``int | None``, ``float | None``,
        ``bool | None`` or ``str | None`` (or the bare scalar) — the
        grammar the spec-string parser can coerce.
        """
        types: dict[str, type] = {}
        for spec_field in dataclasses.fields(cls):
            base = str(spec_field.type).split("|")[0].strip()
            scalar = _SCALAR_TYPES.get(base)
            if scalar is None:
                raise DetectionError(
                    f"{cls.__name__}.{spec_field.name} is annotated "
                    f"{spec_field.type!r}; spec fields must be one of "
                    f"{sorted(_SCALAR_TYPES)} (optionally '| None') so spec "
                    "strings can be parsed"
                )
            types[spec_field.name] = scalar
        return types

    @classmethod
    def from_params(cls, name: str, params: dict) -> "DetectorSpec":
        """Build a spec from raw parameters (strings or typed values)."""
        types = cls.field_types()
        kwargs = {}
        for key, raw in params.items():
            key = str(key).strip().lower()
            if key not in types:
                raise DetectionError(
                    f"unknown parameter {key!r} for detector {name!r}; "
                    f"valid parameters: {', '.join(types) or '(none)'}"
                )
            kwargs[key] = _coerce(name, key, raw, types[key])
        return cls(**kwargs)

    def params(self) -> dict[str, object]:
        """Non-default parameters in field order (the canonical subset)."""
        out: dict[str, object] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if value != spec_field.default:
                out[spec_field.name] = value
        return out


@dataclass(frozen=True)
class EnsembleSpec(DetectorSpec):
    """``ensemfdet`` — the paper's ensemble (cold fit).

    ``sampler`` takes any :func:`repro.sampling.make_sampler` name;
    the default is the stable edge sampler so that ``ensemfdet`` and
    ``incremental`` built from one context are bit-comparable.
    """

    n: int | None = None  # ensemble size N
    ratio: float | None = None  # sample ratio S
    sampler: str | None = None  # sampling registry name (default: ses)
    stripe: int | None = None  # stable-sampler stripe size
    max_blocks: int | None = None  # FDET extraction cap per sample
    engine: str | None = None  # peeling backend
    executor: str | None = None  # serial / thread / process
    seed: int | None = None


@dataclass(frozen=True)
class IncrementalSpec(DetectorSpec):
    """``incremental`` — streaming EnsemFDet (always stable-sampled).

    ``window`` (a batch count) turns the detector into a rolling-window
    one: edges older than the last ``window`` update batches expire, and
    :data:`~repro.scenarios.BatchKind.CLEANUP` batches in a replayed
    stream are honoured as retractions instead of skipped.
    """

    n: int | None = None
    ratio: float | None = None
    stripe: int | None = None
    max_blocks: int | None = None
    engine: str | None = None
    executor: str | None = None
    seed: int | None = None
    window: int | None = None


@dataclass(frozen=True)
class FdetSpec(DetectorSpec):
    """``fdet`` — one bare FDET run on the full graph (no sampling)."""

    max_blocks: int | None = None
    min_block_edges: int | None = None
    engine: str | None = None


@dataclass(frozen=True)
class FraudarSpec(DetectorSpec):
    """``fraudar`` — multi-block Fraudar baseline."""

    n_blocks: int | None = None
    min_block_edges: int | None = None
    engine: str | None = None


@dataclass(frozen=True)
class SpokenSpec(DetectorSpec):
    """``spoken`` — SpokEn spectral baseline."""

    components: int | None = None


@dataclass(frozen=True)
class FBoxSpec(DetectorSpec):
    """``fbox`` — FBox reconstruction-error baseline."""

    components: int | None = None
    min_degree: int | None = None
    buckets: int | None = None


@dataclass(frozen=True)
class DegreeSpec(DetectorSpec):
    """``degree`` — the naive degree-ranking control."""

    weighted: bool | None = None
