"""String-spec construction of detectors, in the sampler-registry style.

Every detector the repo knows is registered here with a name, a config
dataclass, a factory, and capability flags::

    make_detector("fraudar:n_blocks=8")
    make_detector("ensemfdet:n=40,sampler=ses", context)
    make_detector(("degree", {"weighted": True}))

Capabilities drive the consumers generically — the scenario harness
routes ``streaming`` detectors through batch replay, and detectors that
share a ``parity`` token (the cold and incremental ensembles) are
cross-checked cell-for-cell in every robustness grid, with no
special-cased names anywhere.

Adding a detector is one registration: define a spec dataclass (see
:mod:`repro.detectors.specs`), an adapter with ``fit(graph) ->
Detection``, and an entry in ``_REGISTRY`` — the harness, the experiment
drivers and the CLI pick it up unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DetectionError
from .base import Detector
from .blocks import FdetBlockDetector, FraudarBlockDetector
from .ensemble import EnsembleDetector, IncrementalDetector
from .scores import DegreeScoreDetector, FBoxScoreDetector, SpokenScoreDetector
from .specs import (
    DegreeSpec,
    DetectorContext,
    DetectorSpec,
    EnsembleSpec,
    FBoxSpec,
    FdetSpec,
    FraudarSpec,
    IncrementalSpec,
    SpokenSpec,
    format_param,
    split_spec,
)

__all__ = [
    "DETECTOR_NAMES",
    "DetectorInfo",
    "available_detectors",
    "canonical_detector_spec",
    "detector_descriptions",
    "detector_info",
    "make_detector",
    "parse_detector_spec",
    "register_detector",
    "split_detector_specs",
]

#: a spec as accepted everywhere: ``"name:k=v,..."``, ``(name, params)``
#: or ``{"name": ..., <params>}``
SpecLike = "str | tuple[str, dict] | dict"


@dataclass(frozen=True)
class DetectorInfo:
    """One registry entry: construction recipe plus capability flags.

    Attributes
    ----------
    name:
        Canonical registry name (the spec prefix).
    spec_cls:
        Config dataclass parsed from the spec's parameters.
    factory:
        ``(canonical_spec, config, context) -> Detector``.
    description:
        One line for ``ensemfdet detectors --list``.
    streaming:
        The detector implements ``fit_stream`` — the scenario harness
        replays the attack batches through it instead of cold-fitting.
    parity:
        Detectors sharing a non-``None`` token must produce identical
        metrics when built from one context on one graph; robustness
        grids enforce this live (the cold-vs-incremental bit-parity
        cross-check, expressed as a capability instead of names).
    """

    name: str
    spec_cls: type[DetectorSpec]
    factory: Callable[[str, DetectorSpec, DetectorContext], Detector]
    description: str
    streaming: bool = False
    parity: str | None = None


_REGISTRY: dict[str, DetectorInfo] = {
    info.name: info
    for info in (
        DetectorInfo(
            name="ensemfdet",
            spec_cls=EnsembleSpec,
            factory=EnsembleDetector,
            description="EnsemFDet ensemble: sample N subgraphs, FDET each, majority-vote",
            parity="ensemble-vote",
        ),
        DetectorInfo(
            name="incremental",
            spec_cls=IncrementalSpec,
            factory=IncrementalDetector,
            description="streaming EnsemFDet: warm vote state, delta-scoped refresh",
            streaming=True,
            parity="ensemble-vote",
        ),
        DetectorInfo(
            name="fdet",
            spec_cls=FdetSpec,
            factory=FdetBlockDetector,
            description="one FDET run on the full graph (no sampling), truncated at k-hat",
        ),
        DetectorInfo(
            name="fraudar",
            spec_cls=FraudarSpec,
            factory=FraudarBlockDetector,
            description="multi-block Fraudar: greedy densest blocks on the full graph",
        ),
        DetectorInfo(
            name="spoken",
            spec_cls=SpokenSpec,
            factory=SpokenScoreDetector,
            description="SpokEn: mass in the top-k singular components (eigenspokes)",
        ),
        DetectorInfo(
            name="fbox",
            spec_cls=FBoxSpec,
            factory=FBoxScoreDetector,
            description="FBox: SVD reconstruction deficiency within degree buckets",
        ),
        DetectorInfo(
            name="degree",
            spec_cls=DegreeSpec,
            factory=DegreeScoreDetector,
            description="degree control: rank users by (optionally weighted) purchases",
        ),
    )
}

#: registered detector names, in canonical order
DETECTOR_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def register_detector(info: DetectorInfo, replace: bool = False) -> None:
    """Register an additional detector (e.g. from downstream code).

    The harness, the experiment drivers, ``evaluate_detection`` and the
    CLI all resolve specs through this registry, so a registered detector
    immediately works everywhere. Built-in names are listed in
    :data:`DETECTOR_NAMES`; extensions appear in
    :func:`available_detectors` but not in that frozen tuple.
    """
    name = info.name.strip().lower()
    if not name:
        raise DetectionError("detector name must be non-empty")
    if name in _REGISTRY and not replace:
        raise DetectionError(
            f"detector {name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = info


def available_detectors() -> list[str]:
    """All registered detector names, including downstream registrations."""
    return list(_REGISTRY)


def detector_descriptions() -> dict[str, str]:
    """``name -> one-line description`` for every registered detector."""
    return {name: info.description for name, info in _REGISTRY.items()}


def detector_info(name_or_spec: str) -> DetectorInfo:
    """Registry entry for a detector name (a full spec is accepted too)."""
    name = str(name_or_spec).partition(":")[0].strip().lower()
    info = _REGISTRY.get(name)
    if info is None:
        raise DetectionError(
            f"unknown detector {name_or_spec!r}; available: {', '.join(_REGISTRY)}"
        )
    return info


def parse_detector_spec(spec) -> tuple[DetectorInfo, DetectorSpec]:
    """Parse a spec string / ``(name, params)`` tuple / dict into its config.

    Dict form: ``{"name": "fraudar", "n_blocks": 8}`` — every non-``name``
    key is a parameter (values may be typed or strings).
    """
    if isinstance(spec, str):
        name, params = split_spec(spec)
    elif isinstance(spec, tuple) and len(spec) == 2:
        name, params = str(spec[0]).strip().lower(), dict(spec[1])
    elif isinstance(spec, dict):
        params = dict(spec)
        name = str(params.pop("name", "")).strip().lower()
    else:
        raise DetectionError(
            f"detector spec must be a string, (name, params) tuple or dict, got {spec!r}"
        )
    info = detector_info(name)
    return info, info.spec_cls.from_params(name, params)


def _serialise(info: DetectorInfo, config: DetectorSpec) -> str:
    """Canonical string for an already-parsed ``(info, config)`` pair."""
    params = config.params()
    if not params:
        return info.name
    body = ",".join(f"{key}={format_param(value)}" for key, value in params.items())
    return f"{info.name}:{body}"


def canonical_detector_spec(spec) -> str:
    """The canonical string form of a spec (parse → serialise).

    Canonical specs round-trip: parsing one and re-serialising it yields
    the same string (non-default parameters only, in field order).
    """
    return _serialise(*parse_detector_spec(spec))


def make_detector(spec, context: DetectorContext | None = None) -> Detector:
    """Instantiate a detector from a spec, resolved against ``context``.

    Unset spec parameters inherit from ``context`` (defaults when
    ``None``), so one context shared across several specs yields
    consistently-configured detectors.
    """
    info, config = parse_detector_spec(spec)
    return info.factory(_serialise(info, config), config, context or DetectorContext())


def split_detector_specs(raw: str) -> list[str]:
    """Split a comma-joined CLI list of specs, keeping params attached.

    ``"ensemfdet:n=8,sampler=ses,degree"`` is ambiguous to a plain comma
    split; a segment containing ``=`` belongs to the preceding spec
    (detector names never contain ``=``), so this yields
    ``["ensemfdet:n=8,sampler=ses", "degree"]``.
    """
    specs: list[str] = []
    for segment in raw.split(","):
        segment = segment.strip()
        if not segment:
            continue
        if "=" in segment and specs and ":" not in segment:
            # first parameter after a bare name means the user wrote a
            # comma where the grammar wants a colon ("degree,weighted=1");
            # joining with "," would build an unparseable name, so start
            # the parameter list instead
            joiner = "," if ":" in specs[-1] else ":"
            specs[-1] = f"{specs[-1]}{joiner}{segment}"
        else:
            specs.append(segment)
    return specs
