"""The unified detector layer: one result type, one protocol.

Every fraud detector in this repo — the EnsemFDet ensemble, its streaming
variant, bare FDET, and the paper's comparison baselines (Fraudar, SpokEn,
FBox, degree) — historically exposed a different interface
(``detect``, ``score``, ``score_users``, ``top_users``, ``fit``), so every
consumer (scenario harness, figure experiments, CLI) re-implemented the
comparison glue by hand. This module defines the one shape they all share:

:class:`Detection`
    What a fitted detector knows about a graph, normalised to *global node
    labels*: uniform per-user suspiciousness scores, optional per-merchant
    scores, an optional explicit suspiciousness ranking, optional discrete
    operating points (threshold sweeps / cumulative block unions), the raw
    dense blocks where applicable, and timing/metadata.

:class:`Detector` / :class:`StreamingDetector`
    The protocol consumers program against: ``fit(graph) -> Detection``,
    plus ``fit_stream(background, batches)`` for detectors that can replay
    an edge stream incrementally.

Detectors are instantiated through :mod:`repro.detectors.registry` from
spec strings (``"fraudar:n_blocks=8"``) or dicts; the metrics layer
evaluates any :class:`Detection` uniformly through
:func:`repro.metrics.evaluate_detection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..fdet import Block
    from ..graph import BipartiteGraph, EdgeBatch

__all__ = ["Detection", "Detector", "StreamingDetector"]


@dataclass(frozen=True, eq=False)
class Detection:
    """Everything a fitted detector reports about one graph.

    Attributes
    ----------
    spec:
        Canonical registry spec of the detector that produced this result
        (e.g. ``"fraudar:n_blocks=8"``) — provenance for rows/artifacts.
    user_labels:
        Global labels of *every* user in the fitted graph, in local-index
        order; ``user_scores`` is parallel to it.
    user_scores:
        Uniform per-user suspiciousness (higher = more suspicious). Vote
        counts for the ensembles, block-rank scores for block detectors,
        the native score for score-based baselines.
    merchant_labels, merchant_scores:
        Same for merchants, where the detector scores them (``None``
        otherwise).
    operating_points:
        Optional discrete operating points ``(threshold, detected user
        labels)`` — the voting-threshold sweep for ensembles, cumulative
        block unions for block detectors. ``None`` for purely score-based
        detectors, whose curve comes from sweeping ``user_scores``.
    ranked_users:
        Optional explicit suspiciousness ranking (global labels, most
        suspicious first). When ``None``, :meth:`ranking` derives one from
        ``user_scores``. Block detectors rank by extraction order, which a
        per-user score cannot express exactly.
    blocks:
        The raw dense blocks, for detectors that produce them.
    seconds:
        Wall-clock spent fitting.
    meta:
        Free-form provenance (ensemble size, refresh counts, clamped
        ranks, ...). The scenario harness lifts ``n_updates`` /
        ``n_refreshed`` from here into its rows.
    """

    spec: str
    user_labels: np.ndarray
    user_scores: np.ndarray
    merchant_labels: np.ndarray | None = None
    merchant_scores: np.ndarray | None = None
    operating_points: tuple[tuple[float, np.ndarray], ...] | None = None
    ranked_users: np.ndarray | None = None
    blocks: "tuple[Block, ...] | None" = None
    seconds: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def n_users(self) -> int:
        """Number of users in the fitted graph."""
        return int(self.user_labels.size)

    def ranking(self) -> np.ndarray:
        """User labels from most to least suspicious.

        The explicit ``ranked_users`` when the detector provided one;
        otherwise all users ordered by ``(-score, node index)`` — the
        :class:`~repro.baselines.DegreeDetector` convention. Breaking ties
        by local node index (not label value) keeps equal-score rankings
        deterministic *and* stable under label renumbering, and matches
        the serving layer's precomputed ranking bit for bit.
        """
        if self.ranked_users is not None:
            return self.ranked_users
        order = np.lexsort((np.arange(self.user_labels.size), -self.user_scores))
        return self.user_labels[order]

    def top_users(self, n: int) -> np.ndarray:
        """The ``n`` most suspicious user labels (``n`` clamped to ``[0, n_users]``)."""
        ranking = self.ranking()
        return ranking[: max(0, min(int(n), ranking.size))]

    def score_of(self, label: int) -> float:
        """Suspiciousness score of one user label (0.0 if unknown)."""
        matches = np.nonzero(self.user_labels == int(label))[0]
        if matches.size == 0:
            return 0.0
        return float(self.user_scores[matches[0]])


@runtime_checkable
class Detector(Protocol):
    """What every registered detector implements."""

    #: canonical registry spec this instance was built from
    spec: str

    def fit(self, graph: "BipartiteGraph") -> Detection:
        """Run detection on the full graph."""
        ...


@runtime_checkable
class StreamingDetector(Detector, Protocol):
    """A detector that can replay an edge stream incrementally.

    Registered with the ``streaming`` capability flag; the scenario
    harness routes such detectors through the batch-replay path instead of
    a cold fit on the accumulated graph.
    """

    def fit_stream(
        self, background: "BipartiteGraph", batches: "Sequence[EdgeBatch]"
    ) -> Detection:
        """Fit on the honest background, then apply one update per batch."""
        ...
