"""Detector-protocol adapters for the ensemble family.

Both adapters reduce a fitted :class:`~repro.ensemble.VoteTable` to the
uniform :class:`~repro.detectors.base.Detection` shape:

* ``user_scores`` / ``merchant_scores`` are the vote counts,
* ``operating_points`` is the full voting-threshold sweep ``T = 1..N``
  (exactly the curve the paper's figures are drawn from), and
* ``ranked_users`` orders voted users by ``(-votes, label)`` — the same
  ranking the scenario harness always used for precision@k, preserved
  verbatim so the golden grid stays bit-exact.
"""

from __future__ import annotations

import numpy as np

from ..ensemble import (
    EnsemFDet,
    EnsemFDetConfig,
    IncrementalEnsemFDet,
    VoteTable,
)
from ..errors import DetectionError
from ..fdet import FdetConfig
from ..graph import BipartiteGraph, WindowConfig
from ..parallel import Timer
from ..sampling import StableEdgeSampler, make_sampler
from .base import Detection
from .specs import DetectorContext, EnsembleSpec, IncrementalSpec

__all__ = ["EnsembleDetector", "IncrementalDetector", "detection_from_votes"]

#: stable-edge sampler aliases that honour the spec's ``stripe`` parameter
_STABLE_SAMPLERS = ("ses", "stable_edge")

#: mirrors :data:`repro.scenarios.BatchKind.CLEANUP` — spelled out here so
#: the detector layer never imports the scenario package (which imports us)
_CLEANUP = "cleanup"


def _ranked_by_votes(table: VoteTable) -> np.ndarray:
    """Voted user labels from most to least voted (ties broken by label)."""
    ordered = sorted(table.user_votes.items(), key=lambda item: (-item[1], item[0]))
    return np.array([label for label, _ in ordered], dtype=np.int64)


def _vote_scores(labels: np.ndarray, votes) -> np.ndarray:
    """Per-local-index vote counts (0 for never-voted nodes).

    Vectorised via a sorted-key lookup — the voted set is usually much
    smaller than the node set, and a Python loop over every label would
    dominate small fits.
    """
    scores = np.zeros(labels.size, dtype=np.float64)
    if not votes:
        return scores
    keys = np.fromiter(votes.keys(), dtype=np.int64, count=len(votes))
    values = np.fromiter(votes.values(), dtype=np.float64, count=len(votes))
    order = np.argsort(keys)
    keys, values = keys[order], values[order]
    positions = np.searchsorted(keys, labels)
    positions = np.clip(positions, 0, keys.size - 1)
    hits = keys[positions] == labels
    scores[hits] = values[positions[hits]]
    return scores


def _threshold_sweep(
    table: VoteTable, n_samples: int
) -> tuple[tuple[float, np.ndarray], ...]:
    """Detected user labels at every voting threshold ``T = 1..N``.

    One numpy pass over the vote table instead of ``N``
    :func:`majority_vote` calls (which would also tally merchants just to
    discard them); each array is bit-identical to
    ``majority_vote(table, t).user_labels`` — sorted labels whose vote
    count reaches ``t``.
    """
    labels = np.array(sorted(table.user_votes), dtype=np.int64)
    counts = np.array(
        [table.user_votes[int(label)] for label in labels.tolist()], dtype=np.int64
    )
    return tuple(
        (float(threshold), labels[counts >= threshold])
        for threshold in range(1, n_samples + 1)
    )


def degraded_meta(result) -> dict:
    """Degraded-mode annotations for ``Detection.meta`` (empty when clean).

    Populated from an :class:`~repro.ensemble.EnsemFDetResult` whose fit
    lost members: who failed (kind, error, attempts), the surviving
    quorum, how a caller-facing threshold is rescaled, and the retry
    history. Absent keys mean the fit was fault-free.
    """
    meta: dict = {}
    if getattr(result, "failed_members", ()):
        meta["failed_members"] = [f.as_dict() for f in result.failed_members]
        meta["effective_quorum"] = result.effective_quorum
        meta["threshold_scale"] = result.vote_table.n_samples / result.config.n_samples
    retry_log = getattr(result, "retry_log", ())
    if len(retry_log) > 1:
        meta["n_retries"] = len(retry_log) - 1
        meta["retry_log"] = [dict(entry) for entry in retry_log]
    return meta


def detection_from_votes(
    spec: str,
    graph: BipartiteGraph,
    table: VoteTable,
    n_samples: int,
    seconds: float,
    meta: dict,
) -> Detection:
    """Uniform :class:`Detection` view of a fitted vote table."""
    points = _threshold_sweep(table, n_samples)
    return Detection(
        spec=spec,
        user_labels=graph.user_labels,
        user_scores=_vote_scores(graph.user_labels, table.user_votes),
        merchant_labels=graph.merchant_labels,
        merchant_scores=_vote_scores(graph.merchant_labels, table.merchant_votes),
        operating_points=points,
        ranked_users=_ranked_by_votes(table),
        seconds=seconds,
        meta={"n_samples": n_samples, **meta},
    )


def _ensemble_config(
    spec: EnsembleSpec | IncrementalSpec, context: DetectorContext, sampler_name: str
) -> EnsemFDetConfig:
    """Resolve a spec against the context into a full ensemble config."""
    ratio = spec.ratio if spec.ratio is not None else context.sample_ratio
    spec_stripe = getattr(spec, "stripe", None)
    if sampler_name in _STABLE_SAMPLERS:
        sampler = StableEdgeSampler(
            ratio, stripe=spec_stripe if spec_stripe is not None else context.stripe
        )
    else:
        if spec_stripe is not None:
            # never silently drop an explicit parameter: the canonical
            # spec would advertise a knob that had no effect
            raise DetectionError(
                f"'stripe' only applies to the stable edge sampler, "
                f"not sampler={sampler_name!r}"
            )
        sampler = make_sampler(sampler_name, ratio)
    return EnsemFDetConfig(
        sampler=sampler,
        n_samples=spec.n if spec.n is not None else context.n_samples,
        fdet=FdetConfig(
            max_blocks=spec.max_blocks if spec.max_blocks is not None else context.max_blocks,
            engine=spec.engine if spec.engine is not None else context.engine,
        ),
        executor=spec.executor if spec.executor is not None else context.executor,
        seed=spec.seed if spec.seed is not None else context.seed,
        shared_memory=context.shared_memory,
    )


def _describe_sampler(config: EnsemFDetConfig) -> str:
    """Human-readable resolved sampler, e.g. ``StableEdgeSampler(ratio=0.3, stripe=64)``."""
    sampler = config.sampler
    stripe = getattr(sampler, "stripe", None)
    extra = f", stripe={stripe}" if stripe is not None else ""
    return f"{type(sampler).__name__}(ratio={sampler.ratio:g}{extra})"


def _parity_fingerprint(config: EnsemFDetConfig) -> tuple:
    """The resolved knobs that determine the vote table bit-for-bit.

    Two ensemble detectors are bit-comparable iff these agree (the
    executor deliberately excluded: serial/thread/process produce
    identical tables by design). The harness's parity cross-check only
    groups detectors whose fingerprints match, so a spec that overrides
    e.g. the sampler or ``n`` is legitimately allowed to diverge.
    """
    sampler = config.sampler
    return (
        type(sampler).__name__,
        sampler.ratio,
        getattr(sampler, "stripe", None),
        config.n_samples,
        config.fdet.max_blocks,
        config.fdet.engine,
        config.seed,
    )


class EnsembleDetector:
    """``ensemfdet`` — cold :meth:`EnsemFDet.fit` on the full graph."""

    def __init__(self, spec: str, config: EnsembleSpec, context: DetectorContext) -> None:
        self.spec = spec
        self.config = _ensemble_config(config, context, config.sampler or "ses")

    def parity_fingerprint(self) -> tuple:
        """See :func:`_parity_fingerprint`."""
        return _parity_fingerprint(self.config)

    def fit(self, graph: BipartiteGraph) -> Detection:
        # the Timer wraps only the core fit — building the uniform
        # Detection view (threshold sweep, score arrays) happens outside,
        # so ``Detection.seconds`` stays comparable to the raw algorithm
        with Timer() as timer:
            result = EnsemFDet(self.config).fit(graph)
        return detection_from_votes(
            self.spec,
            graph,
            result.vote_table,
            self.config.n_samples,
            seconds=timer.elapsed,
            meta={
                "sampler": _describe_sampler(self.config),
                "sampling_seconds": result.sampling_seconds,
                "detection_seconds": result.detection_seconds,
                **degraded_meta(result),
            },
        )


class IncrementalDetector:
    """``incremental`` — streaming EnsemFDet with warm vote state.

    :meth:`fit` is a cold fit (bit-identical to ``ensemfdet`` under the
    same stable sampler and seed); :meth:`fit_stream` replays an edge
    stream — fit on the background batch, one ``update()`` per attack
    batch — exercising the incremental layer end to end.

    With ``window=W`` the detector rolls a ``W``-batch window: streamed
    batches get ordinal timestamps, old edges expire, and
    :data:`~repro.scenarios.BatchKind.CLEANUP` batches are applied as
    retractions. Windowed specs extend their parity fingerprint, so the
    harness never bit-compares them against append-only detectors —
    forgetting edges is *supposed* to change the verdict.
    """

    def __init__(self, spec: str, config: IncrementalSpec, context: DetectorContext) -> None:
        self.spec = spec
        self.config = _ensemble_config(config, context, "ses")
        self.window = None
        if config.window is not None:
            if config.window < 1:
                raise DetectionError(
                    f"detector {spec!r}: window must be >= 1, got {config.window}"
                )
            self.window = WindowConfig(max_batches=config.window)

    def parity_fingerprint(self) -> tuple:
        """See :func:`_parity_fingerprint`; windowed specs are their own group."""
        fingerprint = _parity_fingerprint(self.config)
        if self.window is not None:
            fingerprint += ("window", self.window.max_batches)
        return fingerprint

    def _detection(
        self, detector: IncrementalEnsemFDet, seconds: float, meta: dict
    ) -> Detection:
        return detection_from_votes(
            self.spec,
            detector.graph,
            detector.vote_table,
            self.config.n_samples,
            seconds=seconds,
            meta={"sampler": _describe_sampler(self.config), **meta},
        )

    def fit(self, graph: BipartiteGraph) -> Detection:
        with Timer() as timer:
            detector = IncrementalEnsemFDet(self.config, window=self.window)
            detector.fit(graph)
        return self._detection(
            detector, timer.elapsed, {"n_updates": 0, "n_refreshed": 0}
        )

    def fit_stream(self, background: BipartiteGraph, batches, kinds=None) -> Detection:
        """Replay a batch stream: fit on the background, update per batch.

        ``kinds`` (parallel to ``batches``, :class:`BatchKind` strings)
        routes :data:`BatchKind.CLEANUP` batches: a windowed detector
        applies them as retractions; an append-only one skips them — it
        has no way to un-ingest an edge, which is exactly the asymmetry
        the temporal scenarios measure.
        """
        batches = list(batches)
        if kinds is not None and len(kinds) != len(batches):
            raise DetectionError(
                f"kinds length {len(kinds)} does not match {len(batches)} batches"
            )
        with Timer() as timer:
            detector = IncrementalEnsemFDet(self.config, window=self.window)
            if self.window is not None:
                detector.fit(background, timestamp=0.0)
            else:
                detector.fit(background)
            refreshed = 0
            skipped = 0
            failed: list[dict] = []
            stale: tuple[int, ...] = ()
            for index, batch in enumerate(batches):
                cleanup = kinds is not None and kinds[index] == _CLEANUP
                if self.window is None:
                    if cleanup:
                        skipped += 1
                        continue
                    report = detector.update(batch.users, batch.merchants, batch.weights)
                elif cleanup:
                    report = detector.update(
                        remove_users=batch.users,
                        remove_merchants=batch.merchants,
                        timestamp=float(index + 1),
                    )
                else:
                    report = detector.update(
                        batch.users,
                        batch.merchants,
                        batch.weights,
                        timestamp=float(index + 1),
                    )
                refreshed += report.n_refreshed
                failed.extend(f.as_dict() for f in report.failed_members)
                stale = report.stale_members
        meta: dict = {"n_updates": len(batches) - skipped, "n_refreshed": refreshed}
        if skipped:
            meta["skipped_cleanup_batches"] = skipped
        if failed:
            meta["failed_members"] = failed
            meta["stale_members"] = list(stale)
        return self._detection(detector, timer.elapsed, meta)
