"""Deterministic fault injection for chaos-testing the detection pipeline.

See :mod:`repro.faults.plan` for the spec grammar and
:mod:`repro.faults.injection` for the registered injection points. The
layer is inert unless a plan is armed (``REPRO_FAULTS`` environment
variable or :func:`arm`), so production code paths run unmodified — and
essentially unslowed — when chaos is off.
"""

from .injection import (
    ENV_VAR,
    arm,
    arm_from_env,
    armed_plan,
    disarm,
    fault_point,
    fired_log,
)
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "ENV_VAR",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "arm",
    "arm_from_env",
    "armed_plan",
    "disarm",
    "fault_point",
    "fired_log",
]
