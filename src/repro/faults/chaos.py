"""Chaos harness: drive the watch/update loop under injected faults.

The harness runs the real ``ensemfdet watch`` CLI in subprocesses — the
only honest way to exercise ``crash`` faults, which SIGKILL the process
mid-operation — appending edge batches to a stream file between rounds,
with a :class:`~repro.faults.FaultPlan` armed through the ``REPRO_FAULTS``
environment variable. A round whose process dies (or exits nonzero) is
re-run **without** faults, emulating an operator restart after a crash;
state recovery then has to come entirely from the crash-safe snapshot
layer (atomic commit, rolling ``.bak``, consumed-row offsets).

The invariant the chaos suite pins down with this harness: for any plan of
worker kills, shared-memory attach failures, mid-write crashes and
snapshot byte corruption, the final vote table is **bitwise identical** to
the fault-free run's, and ``/dev/shm`` holds zero leaked ``repro_gs_*``
segments afterwards.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..ensemble import IncrementalEnsemFDet, load_detection_state_with_recovery
from ..graph import BipartiteGraph, save_edge_list
from .injection import ENV_VAR

__all__ = [
    "ChaosRound",
    "ChaosReport",
    "leaked_segments",
    "run_chaos_cycle",
    "vote_fingerprint",
]

#: prefix of the shared-memory segments the graph store creates
_SEGMENT_PREFIX = "repro_gs_"


def leaked_segments() -> list[str]:
    """Names of graph-store shared-memory segments currently in ``/dev/shm``."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - platform without POSIX shm
        return []
    return sorted(p.name for p in root.glob(f"{_SEGMENT_PREFIX}*"))


def vote_fingerprint(state_path: str | os.PathLike[str]) -> str:
    """Deterministic digest of a saved state's vote table.

    Rebuilds the live detector (recovering from ``.bak`` if needed) and
    hashes the exact ``label → votes`` multisets plus the graph size, so
    two states agree on the fingerprint iff their vote tables are
    bitwise identical.
    """
    state, _ = load_detection_state_with_recovery(state_path)
    detector = IncrementalEnsemFDet.from_state(state)
    table = detector.vote_table
    digest = hashlib.sha256()
    digest.update(f"n={table.n_samples};e={detector.graph.n_edges}".encode())
    for name, votes in (("u", table.user_votes), ("m", table.merchant_votes)):
        for label, count in sorted(votes.items()):
            digest.update(f";{name}{label}={count}".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class ChaosRound:
    """One watch round: edges appended to the stream, faults armed.

    ``faults`` is a ``REPRO_FAULTS`` plan string (empty = fault-free).
    ``edges`` is a sequence of ``(user, merchant)`` label pairs appended
    to the stream file before the round runs (empty for the cold fit).
    """

    edges: tuple[tuple[int, int], ...] = ()
    faults: str = ""


@dataclass
class ChaosReport:
    """What one chaos cycle did and where it converged."""

    fingerprint: str
    rounds: int
    restarts: int
    crashes: int
    leaked: list[str] = field(default_factory=list)
    logs: list[str] = field(default_factory=list)


def _cli_env(faults: str) -> dict[str, str]:
    env = dict(os.environ)
    src_root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(src_root), env.get("PYTHONPATH")) if part
    )
    if faults:
        env[ENV_VAR] = faults
    else:
        env.pop(ENV_VAR, None)
    return env


def _run_watch(
    stream: Path,
    state: Path,
    faults: str,
    watch_flags: tuple[str, ...],
    iterations: int,
    timeout: float,
) -> subprocess.CompletedProcess:
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "watch",
        str(stream),
        "--state",
        str(state),
        "--interval",
        "0",
        "--iterations",
        str(iterations),
        *watch_flags,
    ]
    return subprocess.run(
        argv,
        env=_cli_env(faults),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def run_chaos_cycle(
    workdir: str | os.PathLike[str],
    graph: BipartiteGraph,
    rounds: list[ChaosRound],
    watch_flags: tuple[str, ...] = (),
    max_restarts: int = 3,
    timeout: float = 120.0,
) -> ChaosReport:
    """Run a full watch lifecycle under the given per-round fault plans.

    Writes ``graph`` as the initial stream file, cold-fits, then replays
    every :class:`ChaosRound`: append its edges, run one watch iteration
    with its fault plan armed. A round that dies (SIGKILL from a ``crash``
    fault, or any nonzero exit) is re-run fault-free — the operator
    restart — up to ``max_restarts`` times; recovery must come from the
    snapshot layer alone. Returns the final vote-table fingerprint plus
    crash/restart counts and the post-run ``/dev/shm`` leak scan.

    Run the same cycle with all-empty fault plans to obtain the reference
    fingerprint the chaos run must match bitwise.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    stream = workdir / "stream.tsv"
    state = workdir / "state.npz"
    save_edge_list(graph, stream)

    report = ChaosReport(fingerprint="", rounds=0, restarts=0, crashes=0)

    def _step(faults: str, iterations: int) -> None:
        result = _run_watch(stream, state, faults, watch_flags, iterations, timeout)
        report.logs.append(
            f"rc={result.returncode} faults={faults!r}\n{result.stdout}{result.stderr}"
        )
        if result.returncode == 0:
            return
        if result.returncode < 0:
            report.crashes += 1
        for _ in range(max_restarts):
            report.restarts += 1
            retry = _run_watch(stream, state, "", watch_flags, iterations, timeout)
            report.logs.append(
                f"restart rc={retry.returncode}\n{retry.stdout}{retry.stderr}"
            )
            if retry.returncode == 0:
                return
            if retry.returncode < 0:  # pragma: no cover - fault-free run died
                report.crashes += 1
        raise AssertionError(
            f"chaos round did not recover after {max_restarts} fault-free "
            f"restarts; last output:\n{report.logs[-1]}"
        )

    for index, chaos_round in enumerate(rounds):
        if chaos_round.edges:
            with stream.open("a", encoding="utf-8") as fh:
                for user, merchant in chaos_round.edges:
                    fh.write(f"{int(user)}\t{int(merchant)}\n")
        # round 0 is the cold fit (no update iteration needed)
        _step(chaos_round.faults, iterations=0 if index == 0 else 1)
        report.rounds += 1

    report.fingerprint = vote_fingerprint(state)
    report.leaked = leaked_segments()
    return report


def delta_batches(
    n_users: int, n_merchants: int, sizes: list[int], seed: int
) -> list[tuple[tuple[int, int], ...]]:
    """Deterministic edge batches for chaos rounds (labels stay in range)."""
    rng = np.random.default_rng(seed)
    batches = []
    for size in sizes:
        users = rng.integers(0, n_users, size)
        merchants = rng.integers(0, n_merchants, size)
        batches.append(tuple(zip(users.tolist(), merchants.tolist())))
    return batches
