"""Deterministic fault plans: what to break, where, and when.

A fault spec uses the same terse ``name:key=value,key=value`` grammar as
the detector registry (:mod:`repro.detectors.specs`) with the *kind* of
fault as the name::

    raise:point=member.detect,index=3        # member 3 raises once
    crash:point=member.detect,index=1        # SIGKILL the worker running it
    hang:point=member.detect,index=0,seconds=2.5
    raise:point=shm.attach,at=1              # first segment attach fails
    crash:point=state.write,stage=tmp_written   # die mid-snapshot-write
    corrupt:point=state.write,stage=committed,offset=17  # flip a byte

A :class:`FaultPlan` is a ``;``-separated list of such specs, parsed from
the ``REPRO_FAULTS`` environment variable (or built programmatically) and
armed process-wide by :mod:`repro.faults.injection`. Every decision is
deterministic: specs match on the *identity* of the hit (injection-point
name, member index, retry attempt, write stage, per-process hit ordinal),
never on wall-clock or shared mutable state, so the same plan against the
same seed produces the same failures — and the same retry log — run after
run.

Matching rules
--------------
``point``
    Required; the injection-point name, matched exactly.
``index``
    When set, the context's ``index`` (global ensemble-member index) must
    equal it.
``stage``
    When set, the context's ``stage`` (snapshot-write phase) must equal it.
``attempt``
    The retry attempt the fault fires on. Defaults to ``0`` — faults hit
    the first try and *recover on retry*, which is what keeps crash loops
    impossible by default. Set ``attempt=-1`` to fire on every attempt
    (permanent failures, for quorum tests).
``at``
    1-based ordinal among this spec's *matching* hits in this process
    (e.g. ``at=2``: the second time the point is reached). ``0`` (default)
    means any ordinal.
``times``
    Maximum number of firings per process (default ``1``); ``-1`` removes
    the cap.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["FaultSpec", "FaultPlan", "FaultKind"]


class FaultKind:
    """Names of the injectable failure modes."""

    RAISE = "raise"  # raise InjectedFault (transient exception)
    CRASH = "crash"  # SIGKILL the current process (worker death)
    HANG = "hang"  # sleep for `seconds` (stuck worker)
    CORRUPT = "corrupt"  # flip one byte of the context's file path
    ALL = (RAISE, CRASH, HANG, CORRUPT)


_TYPES: dict[str, type] = {
    "point": str,
    "index": int,
    "stage": str,
    "attempt": int,
    "at": int,
    "times": int,
    "seconds": float,
    "offset": int,
}


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: kind + injection-point matchers."""

    kind: str
    point: str
    index: int | None = None
    stage: str | None = None
    attempt: int = 0
    at: int = 0
    times: int = 1
    seconds: float = 5.0
    offset: int = -1

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {FaultKind.ALL}"
            )
        if not self.point:
            raise ReproError(f"fault spec {self.kind!r} needs a point=... parameter")
        if self.at < 0:
            raise ReproError(f"fault 'at' must be >= 0, got {self.at}")
        if self.seconds < 0:
            raise ReproError(f"fault 'seconds' must be >= 0, got {self.seconds}")

    def matches(self, point: str, context: dict) -> bool:
        """Would this spec fire at ``point`` with ``context`` (ignoring counters)?"""
        if point != self.point:
            return False
        if self.index is not None and context.get("index") != self.index:
            return False
        if self.stage is not None and context.get("stage") != self.stage:
            return False
        if self.attempt >= 0 and int(context.get("attempt", 0)) != self.attempt:
            return False
        return True

    def serialise(self) -> str:
        """Canonical spec string (non-default parameters only)."""
        parts = [f"point={self.point}"]
        for spec_field in dataclasses.fields(self):
            if spec_field.name in ("kind", "point"):
                continue
            value = getattr(self, spec_field.name)
            if value != spec_field.default:
                parts.append(f"{spec_field.name}={value}")
        return f"{self.kind}:{','.join(parts)}"

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        """Parse one ``kind:key=value,...`` fault spec."""
        if not isinstance(spec, str) or not spec.strip():
            raise ReproError(f"empty fault spec {spec!r}")
        kind, _, rest = spec.partition(":")
        kind = kind.strip().lower()
        kwargs: dict[str, object] = {}
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            key, value = key.strip().lower(), value.strip()
            if not eq or not key or not value:
                raise ReproError(
                    f"malformed parameter {item!r} in fault spec {spec!r} "
                    "(expected key=value)"
                )
            target = _TYPES.get(key)
            if target is None:
                raise ReproError(
                    f"unknown parameter {key!r} in fault spec {spec!r}; "
                    f"valid parameters: {', '.join(_TYPES)}"
                )
            if key in kwargs:
                raise ReproError(f"duplicate parameter {key!r} in fault spec {spec!r}")
            try:
                kwargs[key] = target(value)
            except ValueError as exc:
                raise ReproError(
                    f"fault spec {spec!r}: {key}={value!r} is not a valid "
                    f"{target.__name__}"
                ) from exc
        if "point" not in kwargs:
            raise ReproError(f"fault spec {spec!r} is missing the required 'point='")
        return cls(kind=kind, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` (``;``-separated)."""

    specs: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def serialise(self) -> str:
        """Canonical plan string (round-trips through :meth:`parse`)."""
        return ";".join(spec.serialise() for spec in self.specs)

    @classmethod
    def parse(cls, plan: str) -> "FaultPlan":
        """Parse a ``spec;spec;...`` plan string (blank parts skipped)."""
        specs = tuple(
            FaultSpec.parse(part) for part in plan.split(";") if part.strip()
        )
        return cls(specs=specs)
