"""Process-wide fault-injection runtime.

Production code declares *injection points* by calling :func:`fault_point`
at interesting places (per-member detection, shared-memory attach,
snapshot-write stages). With no plan armed the call is a single module
global ``None`` check — cheap enough to leave in every hot path, which is
the whole point: chaos runs exercise the **unmodified** production code.

A plan is armed either explicitly (:func:`arm`, tests) or from the
``REPRO_FAULTS`` environment variable at import time (CLI/chaos runs; a
forked pool worker inherits the parent's armed state, a spawned one
re-reads the environment on import). Firing decisions are fully
deterministic — see :mod:`repro.faults.plan` for the matching rules.

Registered injection points
---------------------------
``member.detect``
    One ensemble member's FDET run, in whatever process executes it.
    Context: ``index`` (global member index), ``attempt`` (retry round).
``native.peel``
    One member's enrolment into the batched native peel kernel (fires in
    the worker, before the batch runs). Context: ``index`` (global member
    index), ``attempt`` (retry round).
``shm.attach``
    Worker-side attach to the shared graph segment. Context: ``attempt``
    when reached through the fan-out, plus ``segment``.
``mmap.open``
    Worker-side open of an mmap-backed graph store file (the out-of-core
    sibling of ``shm.attach``; a fired fault degrades that retry round to
    the pickled transport). Context: ``path``.
``shard.merge``
    One shard's vote-tally accumulation during a sharded fit's merge. A
    fired fault abandons the native shard-wise merge and falls back to the
    label-based Python merge, which produces the same table. Context:
    ``shard`` (shard index).
``state.write``
    Snapshot persistence, at stages ``tmp_written`` (payload durable in
    the temp file), ``backup_done`` (previous snapshot rotated to
    ``.bak``) and ``committed`` (rename done). Context: ``stage``,
    ``path``.
``pool.map``
    Entry of a :class:`repro.parallel.ReusablePool` chunk submission.
"""

from __future__ import annotations

import os
import signal
import time
from collections import Counter

from ..errors import InjectedFault, ReproError
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "ENV_VAR",
    "arm",
    "arm_from_env",
    "disarm",
    "armed_plan",
    "fault_point",
    "fired_log",
]

ENV_VAR = "REPRO_FAULTS"

_PLAN: FaultPlan | None = None
#: per-spec counters of matching hits / actual firings (per process)
_HITS: Counter[int] = Counter()
_FIRED: Counter[int] = Counter()
#: ordered record of every firing in this process (for assertions/logs)
_LOG: list[tuple[str, str, dict]] = []


def arm(plan: FaultPlan | str | None) -> None:
    """Arm a fault plan process-wide (``None`` or an empty plan disarms).

    Resets the deterministic hit/fire counters, so arming the same plan
    twice reproduces the same failures.
    """
    global _PLAN
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _HITS.clear()
    _FIRED.clear()
    _LOG.clear()
    _PLAN = plan if plan else None


def disarm() -> None:
    """Remove any armed plan and clear counters."""
    arm(None)


def armed_plan() -> FaultPlan | None:
    """The currently armed plan, if any."""
    return _PLAN


def arm_from_env() -> None:
    """Arm from ``REPRO_FAULTS`` if set (no-op otherwise)."""
    raw = os.environ.get(ENV_VAR)
    if raw and raw.strip():
        arm(FaultPlan.parse(raw))


def fired_log() -> list[tuple[str, str, dict]]:
    """Every ``(kind, point, context)`` fired in this process, in order."""
    return list(_LOG)


def _fire(spec: FaultSpec, point: str, context: dict) -> None:
    _LOG.append((spec.kind, point, dict(context)))
    if spec.kind == FaultKind.RAISE:
        raise InjectedFault(
            f"injected fault at {point} (context {sorted(context.items())})"
        )
    if spec.kind == FaultKind.CRASH:
        # emulate the real failure mode: the kernel OOM-killer / a segfault
        # gives no chance to clean up, flush, or raise
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover
    if spec.kind == FaultKind.HANG:
        time.sleep(spec.seconds)
        return
    if spec.kind == FaultKind.CORRUPT:
        path = context.get("path")
        if path is None:
            raise ReproError(
                f"corrupt fault at {point} needs a 'path' in the injection context"
            )
        _flip_byte(str(path), spec.offset)
        return
    raise AssertionError(f"unhandled fault kind {spec.kind}")  # pragma: no cover


def _flip_byte(path: str, offset: int) -> None:
    """Flip one byte of ``path`` in place (negative offsets from the end)."""
    size = os.path.getsize(path)
    if size == 0:  # pragma: no cover - nothing to corrupt
        return
    position = offset % size
    with open(path, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))


def fault_point(point: str, **context: object) -> None:
    """Declare an injection point; fires any armed, matching fault spec.

    Near-zero cost when nothing is armed. Multiple matching specs fire in
    plan order (a ``raise`` naturally stops evaluation by raising).
    """
    if _PLAN is None:
        return
    for spec_id, spec in enumerate(_PLAN.specs):
        if not spec.matches(point, context):
            continue
        _HITS[spec_id] += 1
        if spec.at and _HITS[spec_id] != spec.at:
            continue
        if spec.times >= 0 and _FIRED[spec_id] >= spec.times:
            continue
        _FIRED[spec_id] += 1
        _fire(spec, point, context)


arm_from_env()
