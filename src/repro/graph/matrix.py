"""Conversions between :class:`BipartiteGraph` and scipy sparse matrices.

The adjacency-matrix view ``W ∈ R^{|U|×|V|}`` is the representation the paper
uses to describe one-side / two-side node sampling, and it is what the
SVD-based baselines (SpokEn, FBox) consume.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import GraphValidationError
from .bipartite import BipartiteGraph

__all__ = ["to_scipy", "from_scipy", "to_dense"]


def to_scipy(graph: BipartiteGraph, binary: bool = False) -> sp.csr_matrix:
    """Users×merchants CSR matrix; parallel edges sum their weights.

    ``binary=True`` clips all entries to ``1`` (purchase happened at least
    once), which is what the SVD baselines want.
    """
    data = graph.weights_or_ones()
    matrix = sp.coo_matrix(
        (data, (graph.edge_users, graph.edge_merchants)),
        shape=(graph.n_users, graph.n_merchants),
    ).tocsr()
    if binary:
        matrix.data = np.ones_like(matrix.data)
    matrix.sum_duplicates()
    return matrix


def from_scipy(matrix: sp.spmatrix) -> BipartiteGraph:
    """Build a graph from any scipy sparse matrix (rows=users, cols=merchants).

    Entry values become edge weights; explicit zeros are dropped.
    """
    coo = sp.coo_matrix(matrix)
    coo.eliminate_zeros()
    n_users, n_merchants = coo.shape
    weights: np.ndarray | None = np.asarray(coo.data, dtype=np.float64)
    if weights is not None and np.all(weights == 1.0):
        weights = None
    return BipartiteGraph(
        n_users=n_users,
        n_merchants=n_merchants,
        edge_users=np.asarray(coo.row, dtype=np.int64),
        edge_merchants=np.asarray(coo.col, dtype=np.int64),
        edge_weights=weights,
    )


def to_dense(graph: BipartiteGraph, max_cells: int = 10_000_000) -> np.ndarray:
    """Dense users×merchants array — guarded against accidental blow-ups."""
    cells = graph.n_users * graph.n_merchants
    if cells > max_cells:
        raise GraphValidationError(
            f"dense matrix would have {cells} cells, above the max_cells={max_cells} guard"
        )
    return to_scipy(graph).toarray()
