"""One-mode projections of bipartite graphs.

The user-user co-purchase projection connects two PINs when they bought at
a common merchant — the classic auxiliary view for fraud analytics
(fraud rings become near-cliques). Provided as substrate: weighted by
shared-merchant count, with an optional cap on merchant degree so that
hyper-popular merchants (everyone shares them) don't densify the
projection into uselessness.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import scipy.sparse as sp

from .bipartite import BipartiteGraph
from .matrix import to_scipy

__all__ = ["project_users", "project_merchants", "co_purchase_counts"]


def _project(matrix: sp.csr_matrix) -> sp.csr_matrix:
    projection = (matrix @ matrix.T).tocsr()
    projection.setdiag(0)
    projection.eliminate_zeros()
    return projection


def project_users(
    graph: BipartiteGraph, max_merchant_degree: int | None = None
) -> sp.csr_matrix:
    """User×user matrix; entry = number of shared merchants.

    ``max_merchant_degree`` drops merchants busier than the cap before
    projecting (a degree-1000 merchant connects half a million user pairs
    while carrying no ring signal).
    """
    matrix = to_scipy(graph, binary=True)
    if max_merchant_degree is not None:
        degrees = np.asarray(matrix.sum(axis=0)).ravel()
        keep = degrees <= max_merchant_degree
        matrix = matrix[:, np.nonzero(keep)[0]]
    return _project(matrix.tocsr())


def project_merchants(
    graph: BipartiteGraph, max_user_degree: int | None = None
) -> sp.csr_matrix:
    """Merchant×merchant matrix; entry = number of shared buyers."""
    matrix = to_scipy(graph, binary=True).T.tocsr()
    if max_user_degree is not None:
        degrees = np.asarray(matrix.sum(axis=0)).ravel()
        keep = degrees <= max_user_degree
        matrix = matrix[:, np.nonzero(keep)[0]]
    return _project(matrix)


def co_purchase_counts(graph: BipartiteGraph, user: int) -> Counter[int]:
    """``other user -> number of merchants shared with`` ``user``."""
    counts: Counter[int] = Counter()
    for merchant in set(graph.user_neighbors(user).tolist()):
        for other in graph.merchant_neighbors(int(merchant)).tolist():
            if other != user:
                counts[int(other)] += 1
    return counts
