"""Classic graph algorithms over bipartite graphs.

Connected components (union–find over edges) and k-core decomposition — both
used as analysis substrates: components bound how many disjoint dense blocks
can exist, and cores give a fast pre-filter comparison point for the peeling
detectors.
"""

from __future__ import annotations

import numpy as np

from .bipartite import BipartiteGraph

__all__ = [
    "connected_components",
    "largest_component",
    "core_numbers",
    "k_core",
]


class _UnionFind:
    """Array-based union–find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def connected_components(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray, int]:
    """Label nodes by connected component.

    Returns ``(user_component, merchant_component, n_components)`` where
    isolated nodes each form their own component. Component ids are dense
    ``0..n_components-1``.
    """
    n = graph.n_users + graph.n_merchants
    uf = _UnionFind(n)
    offset = graph.n_users
    for u, v in zip(graph.edge_users.tolist(), graph.edge_merchants.tolist()):
        uf.union(u, offset + v)
    roots = np.array([uf.find(i) for i in range(n)], dtype=np.int64)
    _, labels = np.unique(roots, return_inverse=True)
    n_components = int(labels.max()) + 1 if n else 0
    return labels[: graph.n_users], labels[graph.n_users :], n_components


def largest_component(graph: BipartiteGraph) -> BipartiteGraph:
    """Induced subgraph on the component with the most edges."""
    if graph.is_empty:
        return graph
    user_comp, _, _ = connected_components(graph)
    edge_comp = user_comp[graph.edge_users]
    values, counts = np.unique(edge_comp, return_counts=True)
    best = values[int(np.argmax(counts))]
    return graph.edge_subgraph(np.nonzero(edge_comp == best)[0])


def core_numbers(graph: BipartiteGraph) -> tuple[np.ndarray, np.ndarray]:
    """K-core numbers via the standard peeling order (unweighted degrees).

    Returns per-user and per-merchant core numbers. Implemented over the
    unified node space with bucket peeling — O(E + V).
    """
    n = graph.n_users + graph.n_merchants
    offset = graph.n_users
    degrees = np.concatenate([graph.user_degrees(), graph.merchant_degrees()]).astype(np.int64)
    # adjacency over unified node ids
    neighbors: list[list[int]] = [[] for _ in range(n)]
    for u, v in zip(graph.edge_users.tolist(), graph.edge_merchants.tolist()):
        neighbors[u].append(offset + v)
        neighbors[offset + v].append(u)

    core = degrees.copy()
    max_deg = int(degrees.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for node in range(n):
        buckets[int(degrees[node])].append(node)
    current = degrees.copy()
    removed = np.zeros(n, dtype=bool)
    level = 0
    processed = 0
    while processed < n:
        while level <= max_deg and not buckets[level]:
            level += 1
        if level > max_deg:
            break
        node = buckets[level].pop()
        if removed[node] or current[node] > level:
            # stale bucket entry
            continue
        removed[node] = True
        processed += 1
        core[node] = level
        for nb in neighbors[node]:
            if not removed[nb] and current[nb] > level:
                current[nb] -= 1
                buckets[int(current[nb])].append(nb)
                if int(current[nb]) < level:
                    level = int(current[nb])
    return core[:offset], core[offset:]


def k_core(graph: BipartiteGraph, k: int) -> BipartiteGraph:
    """Maximal subgraph where every node has degree ≥ k (compacted)."""
    user_core, merchant_core = core_numbers(graph)
    users = np.nonzero(user_core >= k)[0]
    merchants = np.nonzero(merchant_core >= k)[0]
    return graph.induced_subgraph(users=users, merchants=merchants)
