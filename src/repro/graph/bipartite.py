"""Immutable bipartite graph backed by numpy edge arrays.

This is the core substrate of the reproduction: the *"who buy-from where"*
graph of Definition 1 in the paper, ``G = (U ∪ V, E)`` with user (PIN) nodes
``U`` and merchant nodes ``V``.

Design notes
------------
* Users and merchants live in **separate index spaces**: users are
  ``0..n_users-1`` and merchants ``0..n_merchants-1``.
* The edge set is stored as two parallel ``int64`` arrays plus an optional
  ``float64`` weight array; adjacency (CSR over edge indices) is built lazily
  and cached, so cheap graphs stay cheap.
* Every graph carries ``user_labels`` / ``merchant_labels`` — global node
  identifiers that survive subgraph extraction. Samplers produce subgraphs
  whose *local* indices are compacted but whose labels still refer to the
  original graph, which is what lets the ensemble vote per original node.
* Instances are immutable; all "mutating" operations return new graphs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import GraphValidationError

__all__ = ["BipartiteGraph"]


def _as_int_array(values: Sequence[int] | np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    if array.ndim != 1:
        raise GraphValidationError(f"{name} must be one-dimensional, got shape {array.shape}")
    return array


class BipartiteGraph:
    """An immutable bipartite multigraph ``G = (U ∪ V, E)``.

    Parameters
    ----------
    n_users, n_merchants:
        Sizes of the two node partitions.
    edge_users, edge_merchants:
        Parallel arrays of endpoint indices, one entry per edge.
    edge_weights:
        Optional per-edge weights; ``None`` means every edge weighs ``1.0``.
        Weights exist to support Theorem 1's ``1/p`` re-weighting of sampled
        edges and weighted density scores.
    user_labels, merchant_labels:
        Global identifiers of the nodes; default to ``arange``. Subgraphs
        inherit the parent's labels so detections can always be expressed in
        terms of the original graph's nodes.
    """

    __slots__ = (
        "n_users",
        "n_merchants",
        "edge_users",
        "edge_merchants",
        "edge_weights",
        "user_labels",
        "merchant_labels",
        "_user_adj",
        "_merchant_adj",
        "_user_degrees",
        "_merchant_degrees",
        "_ones",
    )

    def __init__(
        self,
        n_users: int,
        n_merchants: int,
        edge_users: Sequence[int] | np.ndarray,
        edge_merchants: Sequence[int] | np.ndarray,
        edge_weights: Sequence[float] | np.ndarray | None = None,
        user_labels: Sequence[int] | np.ndarray | None = None,
        merchant_labels: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        self.n_users = int(n_users)
        self.n_merchants = int(n_merchants)
        self.edge_users = _as_int_array(edge_users, "edge_users")
        self.edge_merchants = _as_int_array(edge_merchants, "edge_merchants")
        if edge_weights is None:
            self.edge_weights = None
        else:
            self.edge_weights = np.asarray(edge_weights, dtype=np.float64)
        if user_labels is None:
            self.user_labels = np.arange(self.n_users, dtype=np.int64)
        else:
            self.user_labels = _as_int_array(user_labels, "user_labels")
        if merchant_labels is None:
            self.merchant_labels = np.arange(self.n_merchants, dtype=np.int64)
        else:
            self.merchant_labels = _as_int_array(merchant_labels, "merchant_labels")
        self._user_adj: tuple[np.ndarray, np.ndarray] | None = None
        self._merchant_adj: tuple[np.ndarray, np.ndarray] | None = None
        self._user_degrees: np.ndarray | None = None
        self._merchant_degrees: np.ndarray | None = None
        self._ones: np.ndarray | None = None
        self._validate()

    @classmethod
    def _from_trusted(
        cls,
        n_users: int,
        n_merchants: int,
        edge_users: np.ndarray,
        edge_merchants: np.ndarray,
        edge_weights: np.ndarray | None,
        user_labels: np.ndarray,
        merchant_labels: np.ndarray,
    ) -> "BipartiteGraph":
        """Construct from arrays produced by our own subgraph/remove ops.

        Skips ``_validate`` (the O(|E|) bounds scan) and the label re-checks:
        the caller guarantees the arrays are already consistent — correct
        dtypes, matching lengths, in-range endpoints. This is the hot
        constructor behind :meth:`edge_subgraph`, :meth:`induced_subgraph`
        and :meth:`remove_edges`, which FDET's outer loop and the samplers
        call once per block/sample.
        """
        graph = cls.__new__(cls)
        graph.n_users = n_users
        graph.n_merchants = n_merchants
        graph.edge_users = edge_users
        graph.edge_merchants = edge_merchants
        graph.edge_weights = edge_weights
        graph.user_labels = user_labels
        graph.merchant_labels = merchant_labels
        graph._user_adj = None
        graph._merchant_adj = None
        graph._user_degrees = None
        graph._merchant_degrees = None
        graph._ones = None
        return graph

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return int(self.edge_users.shape[0])

    @property
    def n_nodes(self) -> int:
        """Total number of nodes ``|U| + |V|``."""
        return self.n_users + self.n_merchants

    @property
    def is_empty(self) -> bool:
        """``True`` when the graph has no edges."""
        return self.n_edges == 0

    @property
    def is_weighted(self) -> bool:
        """``True`` when an explicit edge-weight array is attached."""
        return self.edge_weights is not None

    def weights_or_ones(self) -> np.ndarray:
        """float64 edge weights, or a cached all-ones array when unweighted.

        The unweighted fallback is materialised once per instance (FDET hits
        this once per block per sample), and so is the float64 upcast of
        compact float32 storage weights — all weight *arithmetic* happens in
        float64 regardless of the storage dtype, which is what keeps compact
        and wide stores bitwise-identical (float32 storage is only ever used
        when the float64 round-trip is exact). Callers must treat the
        returned array as read-only.
        """
        if self.edge_weights is not None:
            if self.edge_weights.dtype == np.float64:
                return self.edge_weights
            if self._ones is None:  # unused for weighted graphs: cache the upcast
                self._ones = self.edge_weights.astype(np.float64)
            return self._ones
        if self._ones is None:
            self._ones = np.ones(self.n_edges, dtype=np.float64)
        return self._ones

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(users={self.n_users}, merchants={self.n_merchants}, "
            f"edges={self.n_edges}, weighted={self.is_weighted})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same sizes, edges, weights and labels."""
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        if (self.n_users, self.n_merchants, self.n_edges) != (
            other.n_users,
            other.n_merchants,
            other.n_edges,
        ):
            return False
        same_edges = bool(
            np.array_equal(self.edge_users, other.edge_users)
            and np.array_equal(self.edge_merchants, other.edge_merchants)
        )
        if not same_edges:
            return False
        if (self.edge_weights is None) != (other.edge_weights is None):
            return False
        if self.edge_weights is not None and not np.allclose(
            self.edge_weights, other.edge_weights
        ):
            return False
        return bool(
            np.array_equal(self.user_labels, other.user_labels)
            and np.array_equal(self.merchant_labels, other.merchant_labels)
        )

    __hash__ = None  # type: ignore[assignment] - mutable ndarray members

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if self.n_users < 0 or self.n_merchants < 0:
            raise GraphValidationError("partition sizes must be non-negative")
        if self.edge_users.shape != self.edge_merchants.shape:
            raise GraphValidationError(
                "edge endpoint arrays differ in length: "
                f"{self.edge_users.shape[0]} vs {self.edge_merchants.shape[0]}"
            )
        if self.edge_weights is not None and self.edge_weights.shape != self.edge_users.shape:
            raise GraphValidationError("edge_weights length does not match edge count")
        if self.user_labels.shape[0] != self.n_users:
            raise GraphValidationError("user_labels length does not match n_users")
        if self.merchant_labels.shape[0] != self.n_merchants:
            raise GraphValidationError("merchant_labels length does not match n_merchants")
        if self.n_edges:
            if int(self.edge_users.min()) < 0 or int(self.edge_users.max()) >= self.n_users:
                raise GraphValidationError("edge_users contains out-of-range user index")
            if (
                int(self.edge_merchants.min()) < 0
                or int(self.edge_merchants.max()) >= self.n_merchants
            ):
                raise GraphValidationError("edge_merchants contains out-of-range merchant index")

    # ------------------------------------------------------------------
    # degrees & adjacency
    # ------------------------------------------------------------------

    def user_degrees(self) -> np.ndarray:
        """Unweighted degree of every user node (cached)."""
        if self._user_degrees is None:
            self._user_degrees = np.bincount(
                self.edge_users, minlength=self.n_users
            ).astype(np.int64)
        return self._user_degrees

    def merchant_degrees(self) -> np.ndarray:
        """Unweighted degree of every merchant node (cached)."""
        if self._merchant_degrees is None:
            self._merchant_degrees = np.bincount(
                self.edge_merchants, minlength=self.n_merchants
            ).astype(np.int64)
        return self._merchant_degrees

    def weighted_user_degrees(self) -> np.ndarray:
        """Sum of incident edge weights per user node.

        Unweighted graphs take the integer ``bincount`` path (no ones-array
        multiply) and only convert the counts to ``float64`` at the end.
        """
        counts = np.bincount(
            self.edge_users, weights=self.edge_weights, minlength=self.n_users
        )
        return counts if self.is_weighted else counts.astype(np.float64)

    def weighted_merchant_degrees(self) -> np.ndarray:
        """Sum of incident edge weights per merchant node."""
        counts = np.bincount(
            self.edge_merchants, weights=self.edge_weights, minlength=self.n_merchants
        )
        return counts if self.is_weighted else counts.astype(np.float64)

    def _build_adjacency(self, endpoints: np.ndarray, n_nodes: int) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(endpoints, kind="stable")
        counts = np.bincount(endpoints, minlength=n_nodes)
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, order

    def user_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency over **edge indices** keyed by user.

        Returns ``(indptr, edge_index)`` such that the edges incident to user
        ``u`` are ``edge_index[indptr[u]:indptr[u+1]]``.
        """
        if self._user_adj is None:
            self._user_adj = self._build_adjacency(self.edge_users, self.n_users)
        return self._user_adj

    def merchant_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency over **edge indices** keyed by merchant."""
        if self._merchant_adj is None:
            self._merchant_adj = self._build_adjacency(self.edge_merchants, self.n_merchants)
        return self._merchant_adj

    def user_neighbors(self, user: int) -> np.ndarray:
        """Merchant indices adjacent to ``user`` (with multiplicity)."""
        indptr, edge_index = self.user_adjacency()
        return self.edge_merchants[edge_index[indptr[user] : indptr[user + 1]]]

    def merchant_neighbors(self, merchant: int) -> np.ndarray:
        """User indices adjacent to ``merchant`` (with multiplicity)."""
        indptr, edge_index = self.merchant_adjacency()
        return self.edge_users[edge_index[indptr[merchant] : indptr[merchant + 1]]]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(user, merchant)`` endpoint pairs."""
        for u, v in zip(self.edge_users.tolist(), self.edge_merchants.tolist()):
            yield u, v

    # ------------------------------------------------------------------
    # subgraph extraction
    # ------------------------------------------------------------------

    def edge_subgraph(self, edge_indices: Sequence[int] | np.ndarray) -> "BipartiteGraph":
        """Subgraph made of exactly the given edges, with compacted nodes.

        Only the nodes touched by the selected edges are kept (this is the
        "no extra edges are added" semantics of edge sampling in the paper).
        Labels map back to this graph's labels.
        """
        edge_indices = _as_int_array(edge_indices, "edge_indices")
        if edge_indices.size and (
            int(edge_indices.min()) < 0 or int(edge_indices.max()) >= self.n_edges
        ):
            raise GraphValidationError("edge index out of range in edge_subgraph")
        sub_users = self.edge_users[edge_indices]
        sub_merchants = self.edge_merchants[edge_indices]
        kept_users, new_users = np.unique(sub_users, return_inverse=True)
        kept_merchants, new_merchants = np.unique(sub_merchants, return_inverse=True)
        weights = None
        if self.edge_weights is not None:
            # gathers upcast compact float32 storage: all arithmetic is float64
            weights = self.edge_weights[edge_indices].astype(np.float64, copy=False)
        return BipartiteGraph._from_trusted(
            n_users=int(kept_users.size),
            n_merchants=int(kept_merchants.size),
            edge_users=new_users.astype(np.int64, copy=False),
            edge_merchants=new_merchants.astype(np.int64, copy=False),
            edge_weights=weights,
            user_labels=self.user_labels[kept_users],
            merchant_labels=self.merchant_labels[kept_merchants],
        )

    def induced_subgraph(
        self,
        users: Sequence[int] | np.ndarray | None = None,
        merchants: Sequence[int] | np.ndarray | None = None,
        keep_isolated: bool = False,
    ) -> "BipartiteGraph":
        """Subgraph induced by node subsets (``None`` keeps the whole side).

        Keeps every edge whose two endpoints are selected. By default nodes
        that end up isolated are dropped (compacted); ``keep_isolated=True``
        retains all selected nodes, matching the adjacency-matrix
        cross-section view used by one/two-side node sampling.
        """
        user_mask = np.zeros(self.n_users, dtype=bool)
        merchant_mask = np.zeros(self.n_merchants, dtype=bool)
        if users is None:
            user_mask[:] = True
        else:
            user_mask[_as_int_array(users, "users")] = True
        if merchants is None:
            merchant_mask[:] = True
        else:
            merchant_mask[_as_int_array(merchants, "merchants")] = True

        edge_mask = user_mask[self.edge_users] & merchant_mask[self.edge_merchants]
        edge_indices = np.nonzero(edge_mask)[0]
        if not keep_isolated:
            return self.edge_subgraph(edge_indices)

        kept_users = np.nonzero(user_mask)[0]
        kept_merchants = np.nonzero(merchant_mask)[0]
        user_remap = np.full(self.n_users, -1, dtype=np.int64)
        merchant_remap = np.full(self.n_merchants, -1, dtype=np.int64)
        user_remap[kept_users] = np.arange(kept_users.size)
        merchant_remap[kept_merchants] = np.arange(kept_merchants.size)
        weights = None
        if self.edge_weights is not None:
            weights = self.edge_weights[edge_indices].astype(np.float64, copy=False)
        return BipartiteGraph._from_trusted(
            n_users=int(kept_users.size),
            n_merchants=int(kept_merchants.size),
            edge_users=user_remap[self.edge_users[edge_indices]],
            edge_merchants=merchant_remap[self.edge_merchants[edge_indices]],
            edge_weights=weights,
            user_labels=self.user_labels[kept_users],
            merchant_labels=self.merchant_labels[kept_merchants],
        )

    def remove_edges(self, edge_indices: Sequence[int] | np.ndarray) -> "BipartiteGraph":
        """Graph with the given edges removed; node set (and labels) kept.

        Used by FDET's outer loop, which removes the edges of each detected
        block but must keep node indexing stable across iterations.
        """
        edge_indices = _as_int_array(edge_indices, "edge_indices")
        mask = np.ones(self.n_edges, dtype=bool)
        mask[edge_indices] = False
        weights = None
        if self.edge_weights is not None:
            weights = self.edge_weights[mask].astype(np.float64, copy=False)
        return BipartiteGraph._from_trusted(
            n_users=self.n_users,
            n_merchants=self.n_merchants,
            edge_users=self.edge_users[mask],
            edge_merchants=self.edge_merchants[mask],
            edge_weights=weights,
            user_labels=self.user_labels,
            merchant_labels=self.merchant_labels,
        )

    def with_weights(
        self,
        weights: Sequence[float] | np.ndarray | None,
        trusted: bool = False,
    ) -> "BipartiteGraph":
        """Copy of this graph with a different edge-weight array.

        ``trusted=True`` skips re-validation when the caller guarantees
        ``weights`` is already a float64 array of length ``n_edges`` (the
        sample-plan materializer derives it from this graph's own weights,
        so re-scanning every edge would be pure overhead).
        """
        if trusted:
            return BipartiteGraph._from_trusted(
                n_users=self.n_users,
                n_merchants=self.n_merchants,
                edge_users=self.edge_users,
                edge_merchants=self.edge_merchants,
                edge_weights=weights,
                user_labels=self.user_labels,
                merchant_labels=self.merchant_labels,
            )
        return BipartiteGraph(
            n_users=self.n_users,
            n_merchants=self.n_merchants,
            edge_users=self.edge_users,
            edge_merchants=self.edge_merchants,
            edge_weights=weights,
            user_labels=self.user_labels,
            merchant_labels=self.merchant_labels,
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        n_users: int | None = None,
        n_merchants: int | None = None,
        deduplicate: bool = False,
    ) -> "BipartiteGraph":
        """Build a graph from ``(user, merchant)`` pairs.

        Partition sizes default to ``max index + 1``. ``deduplicate=True``
        collapses parallel edges (keeping one copy each).
        """
        pairs = list(edges)
        if pairs:
            edge_users = np.array([u for u, _ in pairs], dtype=np.int64)
            edge_merchants = np.array([v for _, v in pairs], dtype=np.int64)
        else:
            edge_users = np.empty(0, dtype=np.int64)
            edge_merchants = np.empty(0, dtype=np.int64)
        if deduplicate and edge_users.size:
            stacked = np.stack([edge_users, edge_merchants], axis=1)
            stacked = np.unique(stacked, axis=0)
            edge_users, edge_merchants = stacked[:, 0], stacked[:, 1]
        if n_users is None:
            n_users = int(edge_users.max()) + 1 if edge_users.size else 0
        if n_merchants is None:
            n_merchants = int(edge_merchants.max()) + 1 if edge_merchants.size else 0
        return cls(n_users, n_merchants, edge_users, edge_merchants)

    @classmethod
    def empty(cls, n_users: int = 0, n_merchants: int = 0) -> "BipartiteGraph":
        """An edgeless graph with the given partition sizes."""
        return cls(n_users, n_merchants, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
