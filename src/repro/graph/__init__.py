"""Bipartite-graph substrate: the *"who buy-from where"* graph and friends."""

from .bipartite import BipartiteGraph
from .builder import BuiltGraph, GraphAccumulator, GraphBuilder
from .algorithms import connected_components, core_numbers, k_core, largest_component
from .matrix import from_scipy, to_dense, to_scipy
from .io import (
    EdgeBatch,
    iter_edge_batches,
    iter_npz_batches,
    load_edge_list,
    load_edge_list_chunked,
    load_npz,
    save_edge_list,
    save_npz,
)
from .projections import co_purchase_counts, project_merchants, project_users
from .store import (
    GraphStore,
    SharedGraphStore,
    StoreFileWriter,
    StoreLayout,
    attached_store,
    detach_all,
    read_file_layout,
)
from .stats import GraphStats, degree_gini, degree_histogram, describe, edge_density
from .validation import assert_subgraph_of, has_duplicate_edges, validate_graph
from .window import EdgeWindow, LiveWindow, WindowConfig

__all__ = [
    "BipartiteGraph",
    "GraphStore",
    "SharedGraphStore",
    "StoreFileWriter",
    "StoreLayout",
    "attached_store",
    "detach_all",
    "read_file_layout",
    "GraphBuilder",
    "BuiltGraph",
    "GraphAccumulator",
    "WindowConfig",
    "LiveWindow",
    "EdgeWindow",
    "EdgeBatch",
    "iter_edge_batches",
    "iter_npz_batches",
    "load_edge_list_chunked",
    "connected_components",
    "largest_component",
    "core_numbers",
    "k_core",
    "to_scipy",
    "from_scipy",
    "to_dense",
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
    "GraphStats",
    "describe",
    "edge_density",
    "degree_histogram",
    "degree_gini",
    "validate_graph",
    "assert_subgraph_of",
    "has_duplicate_edges",
    "project_users",
    "project_merchants",
    "co_purchase_counts",
]
