"""Incremental construction of :class:`~repro.graph.bipartite.BipartiteGraph`.

Real transaction logs arrive as ``(PIN, merchant)`` records with arbitrary
keys (strings, database ids). :class:`GraphBuilder` interns those keys into
dense indices in insertion order, optionally collapses duplicate purchases,
and produces an immutable graph plus the key↔index mappings needed to report
detections back in terms of the original identifiers.

:class:`GraphAccumulator` is the streaming sibling: it grows a graph by
appending whole edge *batches* (numpy arrays of integer labels, e.g. the
chunks yielded by :func:`repro.graph.io.iter_edge_batches`), interning
labels across batches, and snapshots the current graph through the trusted
constructor — the already-validated prefix is never re-scanned.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from ..errors import GraphError, InjectedFault
from ..faults import fault_point
from .bipartite import BipartiteGraph
from .window import LiveWindow, WindowConfig

__all__ = ["GraphBuilder", "BuiltGraph", "GraphAccumulator"]


class BuiltGraph:
    """Result of :meth:`GraphBuilder.build`.

    Attributes
    ----------
    graph:
        The immutable bipartite graph.
    user_keys, merchant_keys:
        ``index -> original key`` lists.
    user_index, merchant_index:
        ``original key -> index`` mappings.
    """

    __slots__ = ("graph", "user_keys", "merchant_keys", "user_index", "merchant_index")

    def __init__(
        self,
        graph: BipartiteGraph,
        user_keys: list[Hashable],
        merchant_keys: list[Hashable],
        user_index: Mapping[Hashable, int],
        merchant_index: Mapping[Hashable, int],
    ) -> None:
        self.graph = graph
        self.user_keys = user_keys
        self.merchant_keys = merchant_keys
        self.user_index = user_index
        self.merchant_index = merchant_index

    def users_from_indices(self, indices: Iterable[int]) -> list[Hashable]:
        """Translate user indices back to the original keys."""
        return [self.user_keys[i] for i in indices]

    def merchants_from_indices(self, indices: Iterable[int]) -> list[Hashable]:
        """Translate merchant indices back to the original keys."""
        return [self.merchant_keys[i] for i in indices]


class GraphBuilder:
    """Accumulate ``(user_key, merchant_key[, weight])`` purchase records.

    >>> builder = GraphBuilder()
    >>> builder.add_edge("pin-7", "shop-a")
    >>> builder.add_edge("pin-7", "shop-b", weight=2.0)
    >>> built = builder.build()
    >>> built.graph.n_edges
    2
    """

    def __init__(self, deduplicate: bool = False) -> None:
        self._deduplicate = deduplicate
        self._user_index: dict[Hashable, int] = {}
        self._merchant_index: dict[Hashable, int] = {}
        self._user_keys: list[Hashable] = []
        self._merchant_keys: list[Hashable] = []
        self._edge_users: list[int] = []
        self._edge_merchants: list[int] = []
        self._weights: list[float] = []
        self._any_weight = False
        self._seen: set[tuple[int, int]] | None = set() if deduplicate else None
        self._built = False

    def _intern(
        self, key: Hashable, index: dict[Hashable, int], keys: list[Hashable]
    ) -> int:
        node = index.get(key)
        if node is None:
            node = len(keys)
            index[key] = node
            keys.append(key)
        return node

    def add_user(self, key: Hashable) -> int:
        """Register a user key (possibly isolated); return its index."""
        self._check_not_built()
        return self._intern(key, self._user_index, self._user_keys)

    def add_merchant(self, key: Hashable) -> int:
        """Register a merchant key (possibly isolated); return its index."""
        self._check_not_built()
        return self._intern(key, self._merchant_index, self._merchant_keys)

    def add_edge(self, user_key: Hashable, merchant_key: Hashable, weight: float = 1.0) -> None:
        """Record one purchase of ``user_key`` at ``merchant_key``."""
        self._check_not_built()
        u = self.add_user(user_key)
        v = self.add_merchant(merchant_key)
        if self._seen is not None:
            if (u, v) in self._seen:
                return
            self._seen.add((u, v))
        self._edge_users.append(u)
        self._edge_merchants.append(v)
        self._weights.append(float(weight))
        if weight != 1.0:
            self._any_weight = True

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Record many unweighted purchases."""
        for user_key, merchant_key in edges:
            self.add_edge(user_key, merchant_key)

    @property
    def n_users(self) -> int:
        """Users registered so far."""
        return len(self._user_keys)

    @property
    def n_merchants(self) -> int:
        """Merchants registered so far."""
        return len(self._merchant_keys)

    @property
    def n_edges(self) -> int:
        """Edges recorded so far."""
        return len(self._edge_users)

    def _check_not_built(self) -> None:
        if self._built:
            raise GraphError("GraphBuilder cannot be reused after build()")

    def build(self) -> BuiltGraph:
        """Freeze the accumulated records into a :class:`BuiltGraph`."""
        self._check_not_built()
        self._built = True
        weights = np.array(self._weights, dtype=np.float64) if self._any_weight else None
        graph = BipartiteGraph(
            n_users=len(self._user_keys),
            n_merchants=len(self._merchant_keys),
            edge_users=np.array(self._edge_users, dtype=np.int64),
            edge_merchants=np.array(self._edge_merchants, dtype=np.int64),
            edge_weights=weights,
        )
        return BuiltGraph(
            graph=graph,
            user_keys=self._user_keys,
            merchant_keys=self._merchant_keys,
            user_index=self._user_index,
            merchant_index=self._merchant_index,
        )


class GraphAccumulator:
    """Grow a bipartite graph by appending edge batches, out-of-core style.

    Unlike :class:`GraphBuilder` (per-record, arbitrary hashable keys,
    single ``build()``), the accumulator is array-oriented and re-usable:
    each :meth:`append` takes whole numpy batches of **integer labels**
    (global node ids, as stored in ``BipartiteGraph.user_labels``), interns
    only the labels it has not seen before, and :meth:`graph` snapshots the
    current state at any time through ``BipartiteGraph._from_trusted`` —
    the already-appended prefix is never copied back out of arrays nor
    re-validated.

    >>> acc = GraphAccumulator()
    >>> acc.append([10, 10], [7, 8])
    (0, 2)
    >>> acc.append([11], [7], weights=[2.0])
    (2, 3)
    >>> acc.graph().n_edges
    3

    ``append`` returns the ``(start, stop)`` edge-index range of the batch,
    which is what incremental detectors use to locate the delta.

    Windowed mode
    -------------
    Constructed with a :class:`~repro.graph.window.WindowConfig`, the
    accumulator additionally tracks per-edge *liveness*: every appended
    edge gets a permanent append id, :meth:`expire` tombstones edges that
    fall out of the rolling window (by batch count and/or timestamp
    horizon), :meth:`retract` tombstones explicitly deleted edges, and
    :meth:`compact` reclaims tombstoned rows once :attr:`dead_fraction`
    crosses the configured threshold — ids survive compaction, physical
    rows do not. :meth:`window` snapshots the state as a
    :class:`~repro.graph.window.LiveWindow`. In windowed mode ``append``
    returns the batch's *id* range, which equals the physical range only
    until the first compaction.
    """

    def __init__(self, window: WindowConfig | None = None) -> None:
        self._user_index: dict[int, int] = {}
        self._merchant_index: dict[int, int] = {}
        self._user_labels: list[int] = []
        self._merchant_labels: list[int] = []
        # consolidated prefix + pending (not yet concatenated) batches
        self._edge_users = np.empty(0, dtype=np.int64)
        self._edge_merchants = np.empty(0, dtype=np.int64)
        self._weights: np.ndarray | None = None
        self._pending_users: list[np.ndarray] = []
        self._pending_merchants: list[np.ndarray] = []
        self._pending_weights: list[np.ndarray | None] = []
        self._pending_edges = 0
        self._any_weighted = False
        # windowed-mode state (maintained only when _window is set)
        self._window = window
        self._alive = np.empty(0, dtype=bool)
        self._edge_ids = np.empty(0, dtype=np.int64)
        self._watermark = 0
        self._batches: list[list[float]] = []  # [start_id, stop_id, timestamp]

    @classmethod
    def from_graph(
        cls,
        graph: BipartiteGraph,
        window: WindowConfig | None = None,
        timestamp: float = 0.0,
    ) -> "GraphAccumulator":
        """Seed an accumulator with an existing graph's nodes and edges.

        Later batches append *after* the graph's edges (indices
        ``graph.n_edges`` onwards) and intern against its labels, so a
        detector state fitted on ``graph`` can keep growing it in place.
        With ``window`` set, the graph becomes batch 0 of the rolling
        window (all edges live, ids ``0..n_edges``) at ``timestamp``.
        """
        acc = cls(window=window)
        acc._user_labels = graph.user_labels.tolist()
        acc._merchant_labels = graph.merchant_labels.tolist()
        acc._user_index = {label: i for i, label in enumerate(acc._user_labels)}
        acc._merchant_index = {label: i for i, label in enumerate(acc._merchant_labels)}
        if len(acc._user_index) != len(acc._user_labels):
            raise GraphError("graph has duplicate user labels; cannot accumulate onto it")
        if len(acc._merchant_index) != len(acc._merchant_labels):
            raise GraphError("graph has duplicate merchant labels; cannot accumulate onto it")
        acc._edge_users = graph.edge_users
        acc._edge_merchants = graph.edge_merchants
        acc._weights = graph.edge_weights
        acc._any_weighted = graph.edge_weights is not None
        if window is not None:
            acc._alive = np.ones(graph.n_edges, dtype=bool)
            acc._edge_ids = np.arange(graph.n_edges, dtype=np.int64)
            acc._watermark = graph.n_edges
            acc._batches = [[0, graph.n_edges, float(timestamp)]]
        return acc

    @classmethod
    def restore_window(
        cls,
        graph: BipartiteGraph,
        window: WindowConfig,
        *,
        edge_ids: np.ndarray,
        watermark: int,
        batches: Sequence[Sequence[float]],
    ) -> "GraphAccumulator":
        """Rebuild a windowed accumulator from persisted state.

        ``graph`` must hold only live edges (states are compacted before
        saving), ``edge_ids`` their original append ids (strictly
        increasing), ``watermark`` the id-space bound, and ``batches`` the
        surviving ``[start_id, stop_id, timestamp]`` records.
        """
        if window is None:
            raise GraphError("restore_window requires a WindowConfig")
        acc = cls.from_graph(graph, window=window)
        ids = np.asarray(edge_ids, dtype=np.int64)
        if ids.shape != (graph.n_edges,):
            raise GraphError(
                f"edge_ids length {ids.size} does not match graph edges {graph.n_edges}"
            )
        if ids.size and not bool(np.all(ids[1:] > ids[:-1])):
            raise GraphError("window edge ids must be strictly increasing")
        watermark = int(watermark)
        floor = int(ids[-1]) + 1 if ids.size else 0
        if watermark < floor:
            raise GraphError(f"window watermark {watermark} below newest edge id {floor - 1}")
        records = [[int(b[0]), int(b[1]), float(b[2])] for b in batches]
        for prev, cur in zip(records, records[1:]):
            if cur[0] < prev[1] or cur[2] < prev[2]:
                raise GraphError("window batch records must be ordered and non-overlapping")
        if records and records[-1][1] > watermark:
            raise GraphError("window batch records extend past the watermark")
        acc._edge_ids = ids
        acc._alive = np.ones(ids.size, dtype=bool)
        acc._watermark = watermark
        acc._batches = records
        return acc

    @property
    def n_users(self) -> int:
        """Distinct user labels interned so far."""
        return len(self._user_labels)

    @property
    def n_merchants(self) -> int:
        """Distinct merchant labels interned so far."""
        return len(self._merchant_labels)

    @property
    def n_edges(self) -> int:
        """Edges appended so far."""
        return int(self._edge_users.size) + self._pending_edges

    @property
    def is_weighted(self) -> bool:
        """``True`` once any batch carried an explicit weight column."""
        return self._any_weighted

    def _intern_batch(
        self, raw: np.ndarray, index: dict[int, int], labels: list[int]
    ) -> np.ndarray:
        """Map raw labels to dense indices, interning unseen labels.

        Vectorised through the batch's unique values: the python dict is
        consulted once per *distinct* label, not once per edge.
        """
        unique, inverse = np.unique(raw, return_inverse=True)
        lut = np.empty(unique.size, dtype=np.int64)
        get = index.get
        for position, label in enumerate(unique.tolist()):
            node = get(label)
            if node is None:
                node = len(labels)
                index[label] = node
                labels.append(label)
            lut[position] = node
        return lut[inverse]

    def append(
        self,
        users: Sequence[int] | np.ndarray,
        merchants: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        timestamp: float | None = None,
    ) -> tuple[int, int]:
        """Append one batch of ``(user_label, merchant_label[, weight])`` edges.

        Only the incoming batch is validated; the existing prefix is left
        untouched. Returns the half-open edge-index range ``(start, stop)``
        the batch now occupies — append *ids* in windowed mode, where the
        batch is also recorded at ``timestamp`` (defaults to the previous
        batch's timestamp + 1, i.e. ordinal time; explicit timestamps must
        be non-decreasing). ``timestamp`` is rejected outside windowed
        mode, where there is no clock to attach it to.
        """
        raw_users = np.asarray(users, dtype=np.int64)
        raw_merchants = np.asarray(merchants, dtype=np.int64)
        if raw_users.ndim != 1 or raw_merchants.ndim != 1:
            raise GraphError("edge batches must be one-dimensional label arrays")
        if raw_users.shape != raw_merchants.shape:
            raise GraphError(
                f"batch endpoint arrays differ in length: {raw_users.size} vs {raw_merchants.size}"
            )
        batch_weights: np.ndarray | None = None
        if weights is not None:
            batch_weights = np.asarray(weights, dtype=np.float64)
            if batch_weights.shape != raw_users.shape:
                raise GraphError("batch weights length does not match batch edge count")
        if timestamp is not None and self._window is None:
            raise GraphError("append timestamps are only meaningful in windowed mode")

        start = self._watermark if self._window is not None else self.n_edges
        if batch_weights is not None:
            self._any_weighted = True
        if raw_users.size:
            self._pending_users.append(
                self._intern_batch(raw_users, self._user_index, self._user_labels)
            )
            self._pending_merchants.append(
                self._intern_batch(raw_merchants, self._merchant_index, self._merchant_labels)
            )
            # None placeholder for unweighted batches — unit weights are only
            # materialised at consolidation, and only if the stream ever
            # turns weighted
            self._pending_weights.append(batch_weights)
            self._pending_edges += int(raw_users.size)
        if self._window is None:
            return start, self.n_edges

        # windowed bookkeeping: eager consolidation keeps the liveness
        # columns aligned with the physical rows at all times
        if self._batches:
            ts = self._batches[-1][2] + 1.0 if timestamp is None else float(timestamp)
            if ts < self._batches[-1][2]:
                raise GraphError(
                    f"batch timestamps must be non-decreasing: {ts} after {self._batches[-1][2]}"
                )
        else:
            ts = 0.0 if timestamp is None else float(timestamp)
        self._consolidate()
        stop = start + int(raw_users.size)
        if raw_users.size:
            self._alive = np.concatenate([self._alive, np.ones(raw_users.size, dtype=bool)])
            self._edge_ids = np.concatenate(
                [self._edge_ids, np.arange(start, stop, dtype=np.int64)]
            )
        self._watermark = stop
        self._batches.append([start, stop, ts])
        return start, stop

    def _consolidate(self) -> None:
        if self._any_weighted and self._weights is None:
            # a weighted batch arrived after an unweighted prefix: give the
            # prefix explicit unit weights so the arrays stay parallel
            self._weights = np.ones(self._edge_users.size, dtype=np.float64)
        if not self._pending_edges:
            return
        self._edge_users = np.concatenate([self._edge_users, *self._pending_users])
        self._edge_merchants = np.concatenate(
            [self._edge_merchants, *self._pending_merchants]
        )
        if self._any_weighted:
            filled = [
                weights if weights is not None else np.ones(users.size, dtype=np.float64)
                for weights, users in zip(self._pending_weights, self._pending_users)
            ]
            self._weights = np.concatenate([self._weights, *filled])
        self._pending_users.clear()
        self._pending_merchants.clear()
        self._pending_weights.clear()
        self._pending_edges = 0

    def graph(self) -> BipartiteGraph:
        """Snapshot the accumulated state as an immutable graph.

        Uses the trusted constructor: interning guarantees every endpoint
        index is in range, so the O(|E|) validation scan is skipped — the
        cost of a snapshot is one concatenation of the batches appended
        since the previous snapshot.
        """
        self._consolidate()
        return BipartiteGraph._from_trusted(
            n_users=len(self._user_labels),
            n_merchants=len(self._merchant_labels),
            edge_users=self._edge_users,
            edge_merchants=self._edge_merchants,
            edge_weights=self._weights,
            user_labels=np.array(self._user_labels, dtype=np.int64),
            merchant_labels=np.array(self._merchant_labels, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # windowed mode: liveness, expiry, deletion, compaction
    # ------------------------------------------------------------------

    def _require_window(self) -> WindowConfig:
        if self._window is None:
            raise GraphError(
                "this operation needs a windowed accumulator "
                "(construct with a WindowConfig)"
            )
        return self._window

    @property
    def window_config(self) -> WindowConfig | None:
        """The retention policy, or ``None`` in append-only mode."""
        return self._window

    @property
    def watermark(self) -> int:
        """Total edges ever appended (the exclusive append-id bound)."""
        return self._watermark if self._window is not None else self.n_edges

    @property
    def n_live(self) -> int:
        """Edges currently inside the window (all of them when append-only)."""
        if self._window is None:
            return self.n_edges
        return int(np.count_nonzero(self._alive))

    @property
    def dead_fraction(self) -> float:
        """Fraction of physical rows that are tombstones awaiting compaction."""
        if self._window is None or not self._alive.size:
            return 0.0
        return 1.0 - int(np.count_nonzero(self._alive)) / int(self._alive.size)

    def _lookup_batch(self, raw: np.ndarray, index: dict[int, int], side: str) -> np.ndarray:
        """Map raw labels to dense indices without interning; unknown raises."""
        unique, inverse = np.unique(raw, return_inverse=True)
        lut = np.empty(unique.size, dtype=np.int64)
        get = index.get
        for position, label in enumerate(unique.tolist()):
            node = get(label)
            if node is None:
                raise GraphError(f"cannot retract edge of unknown {side} label {label}")
            lut[position] = node
        return lut[inverse]

    def retract(
        self,
        users: Sequence[int] | np.ndarray,
        merchants: Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """Tombstone one live edge per ``(user_label, merchant_label)`` pair.

        Deletion deltas name edges by endpoint labels, not append ids; each
        occurrence retracts the *oldest* still-live matching edge (so a
        delta listing a pair twice retracts the two oldest copies). Raises
        :class:`GraphError` if any pair has no live edge left. Returns the
        retracted append ids, ascending.
        """
        self._require_window()
        raw_users = np.asarray(users, dtype=np.int64)
        raw_merchants = np.asarray(merchants, dtype=np.int64)
        if raw_users.ndim != 1 or raw_merchants.ndim != 1:
            raise GraphError("retract batches must be one-dimensional label arrays")
        if raw_users.shape != raw_merchants.shape:
            raise GraphError(
                f"retract endpoint arrays differ in length: "
                f"{raw_users.size} vs {raw_merchants.size}"
            )
        if not raw_users.size:
            return np.empty(0, dtype=np.int64)
        u_idx = self._lookup_batch(raw_users, self._user_index, "user")
        m_idx = self._lookup_batch(raw_merchants, self._merchant_index, "merchant")

        span = np.int64(max(len(self._merchant_labels), 1))
        delta_keys = u_idx * span + m_idx
        rows = np.nonzero(self._alive)[0]
        live_keys = self._edge_users[rows] * span + self._edge_merchants[rows]
        # stable sort: within a key, live rows stay in id order (oldest first)
        order = np.argsort(live_keys, kind="stable")
        sorted_keys = live_keys[order]
        # rank each delta occurrence among its equal-key run, so the k-th
        # occurrence of a pair matches the k-th oldest live copy
        delta_order = np.argsort(delta_keys, kind="stable")
        delta_sorted = delta_keys[delta_order]
        run_starts = np.nonzero(np.r_[True, delta_sorted[1:] != delta_sorted[:-1]])[0]
        run_lengths = np.diff(np.r_[run_starts, delta_sorted.size])
        ranks = np.arange(delta_sorted.size) - np.repeat(run_starts, run_lengths)
        positions = np.searchsorted(sorted_keys, delta_sorted, side="left") + ranks
        in_bounds = positions < sorted_keys.size
        matched = in_bounds.copy()
        matched[in_bounds] &= sorted_keys[positions[in_bounds]] == delta_sorted[in_bounds]
        if not bool(matched.all()):
            offender = int(delta_order[np.nonzero(~matched)[0][0]])
            raise GraphError(
                "no live edge to retract for "
                f"({int(raw_users[offender])}, {int(raw_merchants[offender])})"
            )
        hit_rows = rows[order[positions]]
        self._alive[hit_rows] = False
        return np.sort(self._edge_ids[hit_rows])

    def expire(self, now: float | None = None) -> np.ndarray:
        """Tombstone every live edge that has fallen out of the window.

        The cutoff is the tighter of the two configured bounds: edges
        outside the last ``max_batches`` batches, and edges of batches
        older than ``horizon`` before the newest timestamp (or ``now``).
        Fully-expired batch records are pruned. Returns the newly expired
        append ids, ascending.
        """
        window = self._require_window()
        self._consolidate()
        cutoff = 0
        if window.max_batches is not None and len(self._batches) > window.max_batches:
            cutoff = max(cutoff, int(self._batches[-window.max_batches][0]))
        if window.horizon is not None and self._batches:
            latest = float(self._batches[-1][2]) if now is None else float(now)
            oldest_live = latest - float(window.horizon)
            stale_stop = self._watermark  # if every batch is stale
            for start, _stop, ts in self._batches:
                if ts >= oldest_live:
                    stale_stop = int(start)
                    break
            cutoff = max(cutoff, stale_stop)
        if not cutoff:
            return np.empty(0, dtype=np.int64)
        newly = self._alive & (self._edge_ids < cutoff)
        expired = self._edge_ids[newly]
        self._alive[newly] = False
        # drop fully-expired records; an empty batch at the cutoff is the
        # newest tick of the clock and must survive
        self._batches = [
            record for record in self._batches if record[0] >= cutoff or record[1] > cutoff
        ]
        return expired

    def compact(self) -> int:
        """Drop tombstoned physical rows; append ids are preserved.

        Returns the number of rows reclaimed. The ``window.compact``
        fault point fires *before* any mutation, so an injected failure
        leaves the accumulator consistent (just uncompacted).
        """
        self._require_window()
        self._consolidate()
        dead = int(self._alive.size) - int(np.count_nonzero(self._alive))
        fault_point("window.compact", watermark=self._watermark, dead=dead)
        if not dead:
            return 0
        keep = self._alive
        self._edge_users = self._edge_users[keep]
        self._edge_merchants = self._edge_merchants[keep]
        if self._weights is not None:
            self._weights = self._weights[keep]
        self._edge_ids = self._edge_ids[keep]
        self._alive = np.ones(self._edge_ids.size, dtype=bool)
        return dead

    def maybe_compact(self) -> bool:
        """Compact once :attr:`dead_fraction` exceeds the threshold.

        Compaction is a pure memory optimisation — every read honors the
        liveness mask either way — so an injected fault or allocation
        failure just defers it to the next threshold crossing.
        """
        window = self._window
        if window is None or self.dead_fraction <= window.compact_threshold:
            return False
        try:
            self.compact()
        except (InjectedFault, MemoryError):
            return False
        return True

    def window(self) -> LiveWindow:
        """Snapshot the windowed state (graph + liveness overlay).

        The snapshot is immutable: later retract/expire calls mutate the
        accumulator's own mask, never a previously returned window, and
        compaction swaps in fresh arrays rather than editing shared ones.
        """
        self._require_window()
        return LiveWindow(
            graph=self.graph(),
            alive=self._alive.copy(),
            edge_ids=self._edge_ids.copy(),
            watermark=self._watermark,
        )

    def live_graph(self) -> BipartiteGraph:
        """The live edges only, keeping the full node set and labels."""
        return self.window().live_graph()

    def window_state(self) -> dict:
        """Persistable form of the windowed state (DetectionState v3).

        Filters to live rows with pure array ops (no fault points, no
        mutation), so saving never interacts with compaction chaos plans.
        """
        window = self._require_window()
        self._consolidate()
        keep = self._alive
        weights = self._weights[keep] if self._weights is not None else None
        graph = BipartiteGraph._from_trusted(
            n_users=len(self._user_labels),
            n_merchants=len(self._merchant_labels),
            edge_users=self._edge_users[keep],
            edge_merchants=self._edge_merchants[keep],
            edge_weights=weights,
            user_labels=np.array(self._user_labels, dtype=np.int64),
            merchant_labels=np.array(self._merchant_labels, dtype=np.int64),
        )
        return {
            "config": window.as_dict(),
            "watermark": int(self._watermark),
            "batches": [[int(s), int(e), float(t)] for s, e, t in self._batches],
            "graph": graph,
            "edge_ids": self._edge_ids[keep].copy(),
        }
