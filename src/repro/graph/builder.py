"""Incremental construction of :class:`~repro.graph.bipartite.BipartiteGraph`.

Real transaction logs arrive as ``(PIN, merchant)`` records with arbitrary
keys (strings, database ids). :class:`GraphBuilder` interns those keys into
dense indices in insertion order, optionally collapses duplicate purchases,
and produces an immutable graph plus the key↔index mappings needed to report
detections back in terms of the original identifiers.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import numpy as np

from ..errors import GraphError
from .bipartite import BipartiteGraph

__all__ = ["GraphBuilder", "BuiltGraph"]


class BuiltGraph:
    """Result of :meth:`GraphBuilder.build`.

    Attributes
    ----------
    graph:
        The immutable bipartite graph.
    user_keys, merchant_keys:
        ``index -> original key`` lists.
    user_index, merchant_index:
        ``original key -> index`` mappings.
    """

    __slots__ = ("graph", "user_keys", "merchant_keys", "user_index", "merchant_index")

    def __init__(
        self,
        graph: BipartiteGraph,
        user_keys: list[Hashable],
        merchant_keys: list[Hashable],
        user_index: Mapping[Hashable, int],
        merchant_index: Mapping[Hashable, int],
    ) -> None:
        self.graph = graph
        self.user_keys = user_keys
        self.merchant_keys = merchant_keys
        self.user_index = user_index
        self.merchant_index = merchant_index

    def users_from_indices(self, indices: Iterable[int]) -> list[Hashable]:
        """Translate user indices back to the original keys."""
        return [self.user_keys[i] for i in indices]

    def merchants_from_indices(self, indices: Iterable[int]) -> list[Hashable]:
        """Translate merchant indices back to the original keys."""
        return [self.merchant_keys[i] for i in indices]


class GraphBuilder:
    """Accumulate ``(user_key, merchant_key[, weight])`` purchase records.

    >>> builder = GraphBuilder()
    >>> builder.add_edge("pin-7", "shop-a")
    >>> builder.add_edge("pin-7", "shop-b", weight=2.0)
    >>> built = builder.build()
    >>> built.graph.n_edges
    2
    """

    def __init__(self, deduplicate: bool = False) -> None:
        self._deduplicate = deduplicate
        self._user_index: dict[Hashable, int] = {}
        self._merchant_index: dict[Hashable, int] = {}
        self._user_keys: list[Hashable] = []
        self._merchant_keys: list[Hashable] = []
        self._edge_users: list[int] = []
        self._edge_merchants: list[int] = []
        self._weights: list[float] = []
        self._any_weight = False
        self._seen: set[tuple[int, int]] | None = set() if deduplicate else None
        self._built = False

    def _intern(
        self, key: Hashable, index: dict[Hashable, int], keys: list[Hashable]
    ) -> int:
        node = index.get(key)
        if node is None:
            node = len(keys)
            index[key] = node
            keys.append(key)
        return node

    def add_user(self, key: Hashable) -> int:
        """Register a user key (possibly isolated); return its index."""
        self._check_not_built()
        return self._intern(key, self._user_index, self._user_keys)

    def add_merchant(self, key: Hashable) -> int:
        """Register a merchant key (possibly isolated); return its index."""
        self._check_not_built()
        return self._intern(key, self._merchant_index, self._merchant_keys)

    def add_edge(self, user_key: Hashable, merchant_key: Hashable, weight: float = 1.0) -> None:
        """Record one purchase of ``user_key`` at ``merchant_key``."""
        self._check_not_built()
        u = self.add_user(user_key)
        v = self.add_merchant(merchant_key)
        if self._seen is not None:
            if (u, v) in self._seen:
                return
            self._seen.add((u, v))
        self._edge_users.append(u)
        self._edge_merchants.append(v)
        self._weights.append(float(weight))
        if weight != 1.0:
            self._any_weight = True

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Record many unweighted purchases."""
        for user_key, merchant_key in edges:
            self.add_edge(user_key, merchant_key)

    @property
    def n_users(self) -> int:
        """Users registered so far."""
        return len(self._user_keys)

    @property
    def n_merchants(self) -> int:
        """Merchants registered so far."""
        return len(self._merchant_keys)

    @property
    def n_edges(self) -> int:
        """Edges recorded so far."""
        return len(self._edge_users)

    def _check_not_built(self) -> None:
        if self._built:
            raise GraphError("GraphBuilder cannot be reused after build()")

    def build(self) -> BuiltGraph:
        """Freeze the accumulated records into a :class:`BuiltGraph`."""
        self._check_not_built()
        self._built = True
        weights = np.array(self._weights, dtype=np.float64) if self._any_weight else None
        graph = BipartiteGraph(
            n_users=len(self._user_keys),
            n_merchants=len(self._merchant_keys),
            edge_users=np.array(self._edge_users, dtype=np.int64),
            edge_merchants=np.array(self._edge_merchants, dtype=np.int64),
            edge_weights=weights,
        )
        return BuiltGraph(
            graph=graph,
            user_keys=self._user_keys,
            merchant_keys=self._merchant_keys,
            user_index=self._user_index,
            merchant_index=self._merchant_index,
        )
