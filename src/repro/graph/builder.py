"""Incremental construction of :class:`~repro.graph.bipartite.BipartiteGraph`.

Real transaction logs arrive as ``(PIN, merchant)`` records with arbitrary
keys (strings, database ids). :class:`GraphBuilder` interns those keys into
dense indices in insertion order, optionally collapses duplicate purchases,
and produces an immutable graph plus the key↔index mappings needed to report
detections back in terms of the original identifiers.

:class:`GraphAccumulator` is the streaming sibling: it grows a graph by
appending whole edge *batches* (numpy arrays of integer labels, e.g. the
chunks yielded by :func:`repro.graph.io.iter_edge_batches`), interning
labels across batches, and snapshots the current graph through the trusted
constructor — the already-validated prefix is never re-scanned.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from ..errors import GraphError
from .bipartite import BipartiteGraph

__all__ = ["GraphBuilder", "BuiltGraph", "GraphAccumulator"]


class BuiltGraph:
    """Result of :meth:`GraphBuilder.build`.

    Attributes
    ----------
    graph:
        The immutable bipartite graph.
    user_keys, merchant_keys:
        ``index -> original key`` lists.
    user_index, merchant_index:
        ``original key -> index`` mappings.
    """

    __slots__ = ("graph", "user_keys", "merchant_keys", "user_index", "merchant_index")

    def __init__(
        self,
        graph: BipartiteGraph,
        user_keys: list[Hashable],
        merchant_keys: list[Hashable],
        user_index: Mapping[Hashable, int],
        merchant_index: Mapping[Hashable, int],
    ) -> None:
        self.graph = graph
        self.user_keys = user_keys
        self.merchant_keys = merchant_keys
        self.user_index = user_index
        self.merchant_index = merchant_index

    def users_from_indices(self, indices: Iterable[int]) -> list[Hashable]:
        """Translate user indices back to the original keys."""
        return [self.user_keys[i] for i in indices]

    def merchants_from_indices(self, indices: Iterable[int]) -> list[Hashable]:
        """Translate merchant indices back to the original keys."""
        return [self.merchant_keys[i] for i in indices]


class GraphBuilder:
    """Accumulate ``(user_key, merchant_key[, weight])`` purchase records.

    >>> builder = GraphBuilder()
    >>> builder.add_edge("pin-7", "shop-a")
    >>> builder.add_edge("pin-7", "shop-b", weight=2.0)
    >>> built = builder.build()
    >>> built.graph.n_edges
    2
    """

    def __init__(self, deduplicate: bool = False) -> None:
        self._deduplicate = deduplicate
        self._user_index: dict[Hashable, int] = {}
        self._merchant_index: dict[Hashable, int] = {}
        self._user_keys: list[Hashable] = []
        self._merchant_keys: list[Hashable] = []
        self._edge_users: list[int] = []
        self._edge_merchants: list[int] = []
        self._weights: list[float] = []
        self._any_weight = False
        self._seen: set[tuple[int, int]] | None = set() if deduplicate else None
        self._built = False

    def _intern(
        self, key: Hashable, index: dict[Hashable, int], keys: list[Hashable]
    ) -> int:
        node = index.get(key)
        if node is None:
            node = len(keys)
            index[key] = node
            keys.append(key)
        return node

    def add_user(self, key: Hashable) -> int:
        """Register a user key (possibly isolated); return its index."""
        self._check_not_built()
        return self._intern(key, self._user_index, self._user_keys)

    def add_merchant(self, key: Hashable) -> int:
        """Register a merchant key (possibly isolated); return its index."""
        self._check_not_built()
        return self._intern(key, self._merchant_index, self._merchant_keys)

    def add_edge(self, user_key: Hashable, merchant_key: Hashable, weight: float = 1.0) -> None:
        """Record one purchase of ``user_key`` at ``merchant_key``."""
        self._check_not_built()
        u = self.add_user(user_key)
        v = self.add_merchant(merchant_key)
        if self._seen is not None:
            if (u, v) in self._seen:
                return
            self._seen.add((u, v))
        self._edge_users.append(u)
        self._edge_merchants.append(v)
        self._weights.append(float(weight))
        if weight != 1.0:
            self._any_weight = True

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Record many unweighted purchases."""
        for user_key, merchant_key in edges:
            self.add_edge(user_key, merchant_key)

    @property
    def n_users(self) -> int:
        """Users registered so far."""
        return len(self._user_keys)

    @property
    def n_merchants(self) -> int:
        """Merchants registered so far."""
        return len(self._merchant_keys)

    @property
    def n_edges(self) -> int:
        """Edges recorded so far."""
        return len(self._edge_users)

    def _check_not_built(self) -> None:
        if self._built:
            raise GraphError("GraphBuilder cannot be reused after build()")

    def build(self) -> BuiltGraph:
        """Freeze the accumulated records into a :class:`BuiltGraph`."""
        self._check_not_built()
        self._built = True
        weights = np.array(self._weights, dtype=np.float64) if self._any_weight else None
        graph = BipartiteGraph(
            n_users=len(self._user_keys),
            n_merchants=len(self._merchant_keys),
            edge_users=np.array(self._edge_users, dtype=np.int64),
            edge_merchants=np.array(self._edge_merchants, dtype=np.int64),
            edge_weights=weights,
        )
        return BuiltGraph(
            graph=graph,
            user_keys=self._user_keys,
            merchant_keys=self._merchant_keys,
            user_index=self._user_index,
            merchant_index=self._merchant_index,
        )


class GraphAccumulator:
    """Grow a bipartite graph by appending edge batches, out-of-core style.

    Unlike :class:`GraphBuilder` (per-record, arbitrary hashable keys,
    single ``build()``), the accumulator is array-oriented and re-usable:
    each :meth:`append` takes whole numpy batches of **integer labels**
    (global node ids, as stored in ``BipartiteGraph.user_labels``), interns
    only the labels it has not seen before, and :meth:`graph` snapshots the
    current state at any time through ``BipartiteGraph._from_trusted`` —
    the already-appended prefix is never copied back out of arrays nor
    re-validated.

    >>> acc = GraphAccumulator()
    >>> acc.append([10, 10], [7, 8])
    (0, 2)
    >>> acc.append([11], [7], weights=[2.0])
    (2, 3)
    >>> acc.graph().n_edges
    3

    ``append`` returns the ``(start, stop)`` edge-index range of the batch,
    which is what incremental detectors use to locate the delta.
    """

    def __init__(self) -> None:
        self._user_index: dict[int, int] = {}
        self._merchant_index: dict[int, int] = {}
        self._user_labels: list[int] = []
        self._merchant_labels: list[int] = []
        # consolidated prefix + pending (not yet concatenated) batches
        self._edge_users = np.empty(0, dtype=np.int64)
        self._edge_merchants = np.empty(0, dtype=np.int64)
        self._weights: np.ndarray | None = None
        self._pending_users: list[np.ndarray] = []
        self._pending_merchants: list[np.ndarray] = []
        self._pending_weights: list[np.ndarray | None] = []
        self._pending_edges = 0
        self._any_weighted = False

    @classmethod
    def from_graph(cls, graph: BipartiteGraph) -> "GraphAccumulator":
        """Seed an accumulator with an existing graph's nodes and edges.

        Later batches append *after* the graph's edges (indices
        ``graph.n_edges`` onwards) and intern against its labels, so a
        detector state fitted on ``graph`` can keep growing it in place.
        """
        acc = cls()
        acc._user_labels = graph.user_labels.tolist()
        acc._merchant_labels = graph.merchant_labels.tolist()
        acc._user_index = {label: i for i, label in enumerate(acc._user_labels)}
        acc._merchant_index = {label: i for i, label in enumerate(acc._merchant_labels)}
        if len(acc._user_index) != len(acc._user_labels):
            raise GraphError("graph has duplicate user labels; cannot accumulate onto it")
        if len(acc._merchant_index) != len(acc._merchant_labels):
            raise GraphError("graph has duplicate merchant labels; cannot accumulate onto it")
        acc._edge_users = graph.edge_users
        acc._edge_merchants = graph.edge_merchants
        acc._weights = graph.edge_weights
        acc._any_weighted = graph.edge_weights is not None
        return acc

    @property
    def n_users(self) -> int:
        """Distinct user labels interned so far."""
        return len(self._user_labels)

    @property
    def n_merchants(self) -> int:
        """Distinct merchant labels interned so far."""
        return len(self._merchant_labels)

    @property
    def n_edges(self) -> int:
        """Edges appended so far."""
        return int(self._edge_users.size) + self._pending_edges

    @property
    def is_weighted(self) -> bool:
        """``True`` once any batch carried an explicit weight column."""
        return self._any_weighted

    def _intern_batch(
        self, raw: np.ndarray, index: dict[int, int], labels: list[int]
    ) -> np.ndarray:
        """Map raw labels to dense indices, interning unseen labels.

        Vectorised through the batch's unique values: the python dict is
        consulted once per *distinct* label, not once per edge.
        """
        unique, inverse = np.unique(raw, return_inverse=True)
        lut = np.empty(unique.size, dtype=np.int64)
        get = index.get
        for position, label in enumerate(unique.tolist()):
            node = get(label)
            if node is None:
                node = len(labels)
                index[label] = node
                labels.append(label)
            lut[position] = node
        return lut[inverse]

    def append(
        self,
        users: Sequence[int] | np.ndarray,
        merchants: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> tuple[int, int]:
        """Append one batch of ``(user_label, merchant_label[, weight])`` edges.

        Only the incoming batch is validated; the existing prefix is left
        untouched. Returns the half-open edge-index range ``(start, stop)``
        the batch now occupies.
        """
        raw_users = np.asarray(users, dtype=np.int64)
        raw_merchants = np.asarray(merchants, dtype=np.int64)
        if raw_users.ndim != 1 or raw_merchants.ndim != 1:
            raise GraphError("edge batches must be one-dimensional label arrays")
        if raw_users.shape != raw_merchants.shape:
            raise GraphError(
                f"batch endpoint arrays differ in length: {raw_users.size} vs {raw_merchants.size}"
            )
        batch_weights: np.ndarray | None = None
        if weights is not None:
            batch_weights = np.asarray(weights, dtype=np.float64)
            if batch_weights.shape != raw_users.shape:
                raise GraphError("batch weights length does not match batch edge count")

        start = self.n_edges
        if batch_weights is not None:
            self._any_weighted = True
        if raw_users.size:
            self._pending_users.append(
                self._intern_batch(raw_users, self._user_index, self._user_labels)
            )
            self._pending_merchants.append(
                self._intern_batch(raw_merchants, self._merchant_index, self._merchant_labels)
            )
            # None placeholder for unweighted batches — unit weights are only
            # materialised at consolidation, and only if the stream ever
            # turns weighted
            self._pending_weights.append(batch_weights)
            self._pending_edges += int(raw_users.size)
        return start, self.n_edges

    def _consolidate(self) -> None:
        if self._any_weighted and self._weights is None:
            # a weighted batch arrived after an unweighted prefix: give the
            # prefix explicit unit weights so the arrays stay parallel
            self._weights = np.ones(self._edge_users.size, dtype=np.float64)
        if not self._pending_edges:
            return
        self._edge_users = np.concatenate([self._edge_users, *self._pending_users])
        self._edge_merchants = np.concatenate(
            [self._edge_merchants, *self._pending_merchants]
        )
        if self._any_weighted:
            filled = [
                weights if weights is not None else np.ones(users.size, dtype=np.float64)
                for weights, users in zip(self._pending_weights, self._pending_users)
            ]
            self._weights = np.concatenate([self._weights, *filled])
        self._pending_users.clear()
        self._pending_merchants.clear()
        self._pending_weights.clear()
        self._pending_edges = 0

    def graph(self) -> BipartiteGraph:
        """Snapshot the accumulated state as an immutable graph.

        Uses the trusted constructor: interning guarantees every endpoint
        index is in range, so the O(|E|) validation scan is skipped — the
        cost of a snapshot is one concatenation of the batches appended
        since the previous snapshot.
        """
        self._consolidate()
        return BipartiteGraph._from_trusted(
            n_users=len(self._user_labels),
            n_merchants=len(self._merchant_labels),
            edge_users=self._edge_users,
            edge_merchants=self._edge_merchants,
            edge_weights=self._weights,
            user_labels=np.array(self._user_labels, dtype=np.int64),
            merchant_labels=np.array(self._merchant_labels, dtype=np.int64),
        )
