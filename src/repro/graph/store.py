"""Frozen columnar graph store, exportable to POSIX shared memory.

The ensemble fan-out needs the *parent* graph in every worker process, but
pickling a :class:`~repro.graph.BipartiteGraph` per sampled subgraph is
exactly the O(N·S·|E|) serialization wall the paper's "perfectly parallel"
claim ignores. A :class:`GraphStore` is the flat-array alternative: the five
columns of a graph (edge endpoints, optional weights, node labels) packed
back to back in one buffer that can live in a
:mod:`multiprocessing.shared_memory` segment. Workers attach to the segment
**once per process**, wrap the buffer zero-copy as read-only numpy views,
and materialize each compact :class:`~repro.sampling.SamplePlan` locally —
no graph bytes cross the process boundary.

Lifecycle contract
------------------
* the parent calls :meth:`GraphStore.export_shared` and owns the returned
  :class:`SharedGraphStore`; its :meth:`~SharedGraphStore.dispose` (or
  ``with`` exit, or the ``weakref.finalize`` backstop) unlinks the segment,
* workers call :func:`attached_store` with the picklable
  :class:`StoreLayout`; attachments are cached per process and the previous
  segment's mapping is dropped whenever a new segment arrives, so a
  long-lived :class:`~repro.parallel.ReusablePool` worker holds at most one
  stale mapping,
* unlinking in the parent removes the segment name immediately (Linux
  keeps live mappings valid), so no ``/dev/shm`` entry outlives the fit.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import GraphError
from ..faults import fault_point
from .bipartite import BipartiteGraph
from .window import EdgeWindow

__all__ = [
    "GraphStore",
    "SharedGraphStore",
    "StoreLayout",
    "attached_store",
    "detach_all",
]

_INT = np.dtype(np.int64)
_FLOAT = np.dtype(np.float64)
_BOOL = np.dtype(np.bool_)


@dataclass(frozen=True)
class StoreLayout:
    """Picklable descriptor of a shared graph segment (~100 bytes).

    The five columns live at fixed, derivable offsets — ``edge_users``,
    ``edge_merchants``, ``user_labels``, ``merchant_labels`` (all int64),
    then ``edge_weights`` (float64) when ``weighted`` — so the layout only
    needs the partition sizes, not per-array bookkeeping. ``windowed``
    appends the two rolling-window columns, ``edge_ids`` (int64 append
    ids) and ``edge_alive`` (bool liveness mask), so windowed fits ship
    their liveness overlay through the same zero-copy segment.
    """

    segment: str
    n_users: int
    n_merchants: int
    n_edges: int
    weighted: bool
    windowed: bool = False

    @property
    def nbytes(self) -> int:
        """Total payload size of the segment in bytes."""
        total = _INT.itemsize * (2 * self.n_edges + self.n_users + self.n_merchants)
        if self.weighted:
            total += _FLOAT.itemsize * self.n_edges
        if self.windowed:
            total += (_INT.itemsize + _BOOL.itemsize) * self.n_edges
        return total

    def slots(self) -> list[tuple[str, int, np.dtype, int]]:
        """``(column, offset, dtype, length)`` for every stored column."""
        columns = [
            ("edge_users", self.n_edges, _INT),
            ("edge_merchants", self.n_edges, _INT),
            ("user_labels", self.n_users, _INT),
            ("merchant_labels", self.n_merchants, _INT),
        ]
        if self.weighted:
            columns.append(("edge_weights", self.n_edges, _FLOAT))
        if self.windowed:
            columns.append(("edge_ids", self.n_edges, _INT))
            columns.append(("edge_alive", self.n_edges, _BOOL))
        out = []
        offset = 0
        for name, length, dtype in columns:
            out.append((name, offset, dtype, length))
            offset += dtype.itemsize * length
        return out


class GraphStore:
    """The frozen columnar form of one bipartite graph.

    Wraps the parent graph's arrays **zero-copy** (:meth:`from_graph`) or a
    shared segment's buffer (:meth:`attach`); :meth:`to_graph` goes back to
    a :class:`BipartiteGraph` through the trusted constructor, again without
    copying, so a store round-trip costs O(1).
    """

    __slots__ = (
        "n_users",
        "n_merchants",
        "edge_users",
        "edge_merchants",
        "edge_weights",
        "user_labels",
        "merchant_labels",
        "edge_ids",
        "edge_alive",
        "__weakref__",
    )

    def __init__(
        self,
        n_users: int,
        n_merchants: int,
        edge_users: np.ndarray,
        edge_merchants: np.ndarray,
        edge_weights: np.ndarray | None,
        user_labels: np.ndarray,
        merchant_labels: np.ndarray,
        edge_ids: np.ndarray | None = None,
        edge_alive: np.ndarray | None = None,
    ) -> None:
        self.n_users = int(n_users)
        self.n_merchants = int(n_merchants)
        self.edge_users = edge_users
        self.edge_merchants = edge_merchants
        self.edge_weights = edge_weights
        self.user_labels = user_labels
        self.merchant_labels = merchant_labels
        self.edge_ids = edge_ids
        self.edge_alive = edge_alive

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: BipartiteGraph, window: EdgeWindow | None = None) -> "GraphStore":
        """Wrap ``graph``'s columns (and a liveness overlay) without copying."""
        if window is not None and window.alive.shape != (graph.n_edges,):
            raise GraphError(
                f"window columns cover {window.alive.shape[0]} rows, "
                f"graph has {graph.n_edges}"
            )
        return cls(
            n_users=graph.n_users,
            n_merchants=graph.n_merchants,
            edge_users=graph.edge_users,
            edge_merchants=graph.edge_merchants,
            edge_weights=graph.edge_weights,
            user_labels=graph.user_labels,
            merchant_labels=graph.merchant_labels,
            edge_ids=None if window is None else window.edge_ids,
            edge_alive=None if window is None else window.alive,
        )

    def edge_window(self) -> EdgeWindow | None:
        """The liveness overlay, when this store carries one."""
        if self.edge_alive is None or self.edge_ids is None:
            return None
        return EdgeWindow(alive=self.edge_alive, edge_ids=self.edge_ids)

    def to_graph(self) -> BipartiteGraph:
        """A :class:`BipartiteGraph` view over the stored columns.

        Uses the trusted constructor — the columns came from an already
        validated graph (or a segment exported from one), so the O(|E|)
        bounds scan is skipped.
        """
        return BipartiteGraph._from_trusted(
            n_users=self.n_users,
            n_merchants=self.n_merchants,
            edge_users=self.edge_users,
            edge_merchants=self.edge_merchants,
            edge_weights=self.edge_weights,
            user_labels=self.user_labels,
            merchant_labels=self.merchant_labels,
        )

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return int(self.edge_users.shape[0])

    @property
    def nbytes(self) -> int:
        """Total size of the stored columns in bytes."""
        total = self.edge_users.nbytes + self.edge_merchants.nbytes
        total += self.user_labels.nbytes + self.merchant_labels.nbytes
        if self.edge_weights is not None:
            total += self.edge_weights.nbytes
        if self.edge_ids is not None:
            total += self.edge_ids.nbytes
        if self.edge_alive is not None:
            total += self.edge_alive.nbytes
        return total

    # ------------------------------------------------------------------
    # shared-memory export / attach
    # ------------------------------------------------------------------

    def export_shared(self) -> "SharedGraphStore":
        """Copy the columns into one fresh shared-memory segment.

        The returned handle owns the segment; dispose it (explicitly or via
        ``with``) once the fan-out that uses it has completed.
        """
        layout = StoreLayout(
            segment=f"repro_gs_{os.getpid():x}_{secrets.token_hex(6)}",
            n_users=self.n_users,
            n_merchants=self.n_merchants,
            n_edges=self.n_edges,
            weighted=self.edge_weights is not None,
            windowed=self.edge_alive is not None and self.edge_ids is not None,
        )
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, layout.nbytes), name=layout.segment
        )
        try:
            for name, offset, dtype, length in layout.slots():
                view = np.ndarray(length, dtype=dtype, buffer=shm.buf, offset=offset)
                view[:] = getattr(self, name)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return SharedGraphStore(layout, shm)

    @classmethod
    def attach(
        cls, layout: StoreLayout
    ) -> tuple["GraphStore", shared_memory.SharedMemory]:
        """Worker-side attach: read-only views over an existing segment.

        Returns the store plus the mapping that must be kept alive (and
        eventually closed) alongside it. Prefer :func:`attached_store`,
        which caches per process.
        """
        try:
            shm = _attach_untracked(layout.segment)
        except FileNotFoundError as exc:
            raise GraphError(
                f"shared graph segment {layout.segment!r} does not exist "
                "(already disposed by the parent?)"
            ) from exc
        columns: dict[str, np.ndarray] = {}
        for name, offset, dtype, length in layout.slots():
            view = np.ndarray(length, dtype=dtype, buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            columns[name] = view
        return (
            cls(
                n_users=layout.n_users,
                n_merchants=layout.n_merchants,
                edge_users=columns["edge_users"],
                edge_merchants=columns["edge_merchants"],
                edge_weights=columns.get("edge_weights"),
                user_labels=columns["user_labels"],
                merchant_labels=columns["merchant_labels"],
                edge_ids=columns.get("edge_ids"),
                edge_alive=columns.get("edge_alive"),
            ),
            shm,
        )


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering with the resource tracker.

    Only the creator (parent) process owns the segment's lifetime. Until
    Python 3.13's ``track=False``, attaching also registers the name with
    the shared resource-tracker daemon — whose per-type cache is a *set*,
    so the duplicate entry collapses with the parent's and the eventual
    double-unregister raises inside the tracker. Suppressing registration
    for the attach call sidesteps both that and the bogus
    "leaked shared_memory" warnings at worker exit.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - exotic platform
        return shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedGraphStore:
    """Parent-side handle of one exported segment (owns its lifetime).

    ``dispose()`` closes the mapping and unlinks the name; it is idempotent
    and also wired as a ``weakref.finalize`` backstop, so dropping the last
    reference can never leak a ``/dev/shm`` entry.
    """

    def __init__(self, layout: StoreLayout, shm: shared_memory.SharedMemory) -> None:
        self.layout = layout
        self._shm: shared_memory.SharedMemory | None = shm
        self._finalizer = weakref.finalize(self, _dispose_segment, shm)

    @property
    def disposed(self) -> bool:
        """``True`` once the segment has been unlinked."""
        return self._shm is None

    def dispose(self) -> None:
        """Close the parent's mapping and unlink the segment (idempotent)."""
        if self._shm is not None:
            self._shm = None
            self._finalizer()

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.dispose()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "disposed" if self.disposed else f"{self.layout.nbytes} bytes"
        return f"SharedGraphStore({self.layout.segment}, {state})"


def _dispose_segment(shm: shared_memory.SharedMemory) -> None:
    # unlink before close: removing the name can never fail on live views,
    # whereas mmap.close() raises BufferError while numpy views are exported
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a view outlived the handle
        pass


# ------------------------------------------------------------------
# worker-side attachment cache (one live segment per process)
# ------------------------------------------------------------------

_ATTACHED: dict[str, tuple[GraphStore, shared_memory.SharedMemory]] = {}


def attached_store(layout: StoreLayout) -> GraphStore:
    """The process-local :class:`GraphStore` for ``layout``, attached once.

    The first call in a worker maps the segment; subsequent calls for the
    same segment (later chunks of the same fit, later fits on the same
    store) are dictionary hits. Attaching a *different* segment drops the
    previous mapping first — fits are sequential, so a worker never needs
    two parents at once and stale mappings would otherwise accumulate in a
    long-lived pool.
    """
    cached = _ATTACHED.get(layout.segment)
    if cached is not None:
        return cached[0]
    fault_point("shm.attach", segment=layout.segment)
    detach_all()
    store, shm = GraphStore.attach(layout)
    _ATTACHED[layout.segment] = (store, shm)
    return store


def detach_all() -> None:
    """Close every cached attachment (worker shutdown / test hygiene)."""
    while _ATTACHED:
        _, entry = _ATTACHED.popitem()
        shm = entry[1]
        del entry  # drop the store (and its buffer views) before closing
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a materialized view lingers
            pass
