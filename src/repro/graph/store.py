"""Frozen columnar graph store, exportable to POSIX shared memory or disk.

The ensemble fan-out needs the *parent* graph in every worker process, but
pickling a :class:`~repro.graph.BipartiteGraph` per sampled subgraph is
exactly the O(N·S·|E|) serialization wall the paper's "perfectly parallel"
claim ignores. A :class:`GraphStore` is the flat-array alternative: the five
columns of a graph (edge endpoints, optional weights, node labels) packed
back to back in one buffer that can live in a
:mod:`multiprocessing.shared_memory` segment **or a memory-mapped file**.
Workers attach to the segment (or map the file) **once per process**, wrap
the buffer zero-copy as read-only numpy views, and materialize each compact
:class:`~repro.sampling.SamplePlan` locally — no graph bytes cross the
process boundary.

Transports
----------
* **shared memory** — :meth:`GraphStore.export_shared` copies the columns
  into one ``/dev/shm`` segment; fastest for graphs that fit in RAM.
* **file / mmap** — :meth:`GraphStore.save` writes the same column layout
  to a flat file (magic + JSON header + 8-byte-aligned columns) and
  :meth:`GraphStore.open` maps it back lazily with :class:`numpy.memmap`,
  so graphs larger than RAM never fully materialize: fancy indexing on a
  mapped column touches only the pages it reads. Workers receive the same
  picklable :class:`StoreLayout` either way — ``kind`` selects the branch
  inside :func:`attached_store`.

Compact dtypes
--------------
:meth:`GraphStore.compact` (applied by default on :meth:`save`) narrows the
storage dtypes losslessly: node/edge ids to int32 whenever they fit, edge
weights to float32 only when the float64 round-trip is bit-exact. All
*compute* stays int64/float64 — gathers upcast at the boundary — so vote
tables are bitwise identical between wide and compact storage. Anything
that would silently wrap int32 raises :class:`~repro.errors.GraphError`
instead (see :meth:`StoreLayout.validate` and :class:`StoreFileWriter`).

Lifecycle contract
------------------
* the parent calls :meth:`GraphStore.export_shared` and owns the returned
  :class:`SharedGraphStore`; its :meth:`~SharedGraphStore.dispose` (or
  ``with`` exit, or the ``weakref.finalize`` backstop) unlinks the segment,
* workers call :func:`attached_store` with the picklable
  :class:`StoreLayout`; attachments are cached per process and the previous
  segment's mapping is dropped whenever a new segment arrives, so a
  long-lived :class:`~repro.parallel.ReusablePool` worker holds at most one
  stale mapping,
* unlinking in the parent removes the segment name immediately (Linux
  keeps live mappings valid), so no ``/dev/shm`` entry outlives the fit;
  file-backed stores are plain files owned by whoever created them.
"""

from __future__ import annotations

import json
import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import GraphError
from ..faults import fault_point
from .bipartite import BipartiteGraph
from .window import EdgeWindow

__all__ = [
    "GraphStore",
    "SharedGraphStore",
    "StoreFileWriter",
    "StoreLayout",
    "attached_store",
    "detach_all",
    "read_file_layout",
]

_INT = np.dtype(np.int64)
_INT32 = np.dtype(np.int32)
_FLOAT = np.dtype(np.float64)
_FLOAT32 = np.dtype(np.float32)
_BOOL = np.dtype(np.bool_)

#: largest value an int32 id/label/count may take before compaction refuses
INT32_MAX = int(np.iinfo(np.int32).max)

_INT_DTYPES = {"int32": _INT32, "int64": _INT}
_FLOAT_DTYPES = {"float32": _FLOAT32, "float64": _FLOAT}

#: on-disk format: magic, then an 8-byte little-endian header length, then
#: the JSON header; columns start at a fixed page-aligned offset
_MAGIC = b"REPROGS1"
_DATA_OFFSET = 4096


def _named_dtype(name: str, table: dict[str, np.dtype], field: str) -> np.dtype:
    try:
        return table[name]
    except KeyError:
        raise GraphError(
            f"unsupported store {field} {name!r} (expected one of {sorted(table)})"
        ) from None


@dataclass(frozen=True)
class StoreLayout:
    """Picklable descriptor of a shared graph segment or store file (~100 B).

    The five columns live at fixed, derivable offsets — ``edge_users``,
    ``edge_merchants`` (``id_dtype``), ``user_labels``, ``merchant_labels``
    (``label_dtype``), then ``edge_weights`` (``weight_dtype``) when
    ``weighted`` — so the layout only needs the partition sizes and dtype
    names, not per-array bookkeeping. ``windowed`` appends the two
    rolling-window columns, ``edge_ids`` (``eid_dtype`` append ids) and
    ``edge_alive`` (bool liveness mask), so windowed fits ship their
    liveness overlay through the same zero-copy buffer.

    ``kind`` selects the transport: ``"shm"`` (``segment`` names a POSIX
    shared-memory segment) or ``"file"`` (``segment`` is the store file's
    path, mapped lazily worker-side). Every column offset is rounded up to
    8 bytes so mixed-width layouts stay aligned for mmap views.
    """

    segment: str
    n_users: int
    n_merchants: int
    n_edges: int
    weighted: bool
    windowed: bool = False
    kind: str = "shm"
    id_dtype: str = "int64"
    label_dtype: str = "int64"
    eid_dtype: str = "int64"
    weight_dtype: str = "float64"

    @property
    def nbytes(self) -> int:
        """Total payload size of the buffer in bytes."""
        slots = self.slots()
        if not slots:  # pragma: no cover - layouts always have >= 4 columns
            return 0
        name, offset, dtype, length = slots[-1]
        return offset + dtype.itemsize * length

    def slots(self) -> list[tuple[str, int, np.dtype, int]]:
        """``(column, offset, dtype, length)`` for every stored column."""
        columns = [
            ("edge_users", self.n_edges, _named_dtype(self.id_dtype, _INT_DTYPES, "id_dtype")),
            ("edge_merchants", self.n_edges, _named_dtype(self.id_dtype, _INT_DTYPES, "id_dtype")),
            ("user_labels", self.n_users, _named_dtype(self.label_dtype, _INT_DTYPES, "label_dtype")),
            ("merchant_labels", self.n_merchants, _named_dtype(self.label_dtype, _INT_DTYPES, "label_dtype")),
        ]
        if self.weighted:
            columns.append(
                ("edge_weights", self.n_edges, _named_dtype(self.weight_dtype, _FLOAT_DTYPES, "weight_dtype"))
            )
        if self.windowed:
            columns.append(
                ("edge_ids", self.n_edges, _named_dtype(self.eid_dtype, _INT_DTYPES, "eid_dtype"))
            )
            columns.append(("edge_alive", self.n_edges, _BOOL))
        out = []
        offset = 0
        for name, length, dtype in columns:
            offset = (offset + 7) & ~7  # 8-byte alignment for mmap views
            out.append((name, offset, dtype, length))
            offset += dtype.itemsize * length
        return out

    def validate(self) -> None:
        """Reject layouts that could silently wrap compact int32 storage.

        int32 node ids can address at most ``2**31`` nodes; a layout
        declaring more would make the endpoint columns wrap on write, so
        it raises :class:`~repro.errors.GraphError` instead (the explicit
        overflow guard of the compact-dtype contract). Also validates the
        transport kind and dtype names, so a corrupted file header fails
        loudly here rather than as a garbage mapping.
        """
        if self.kind not in ("shm", "file"):
            raise GraphError(f"unknown store transport kind {self.kind!r}")
        if min(self.n_users, self.n_merchants, self.n_edges) < 0:
            raise GraphError("store layout sizes must be non-negative")
        _named_dtype(self.id_dtype, _INT_DTYPES, "id_dtype")
        _named_dtype(self.label_dtype, _INT_DTYPES, "label_dtype")
        _named_dtype(self.eid_dtype, _INT_DTYPES, "eid_dtype")
        _named_dtype(self.weight_dtype, _FLOAT_DTYPES, "weight_dtype")
        largest_side = max(self.n_users, self.n_merchants)
        if self.id_dtype == "int32" and largest_side > INT32_MAX + 1:
            raise GraphError(
                f"int32 node ids cannot address {largest_side} nodes "
                f"(max {INT32_MAX + 1}); use id_dtype='int64'"
            )

    def as_header(self) -> dict:
        """JSON-able file-header form (``segment``/``kind`` are implicit)."""
        return {
            "n_users": self.n_users,
            "n_merchants": self.n_merchants,
            "n_edges": self.n_edges,
            "weighted": self.weighted,
            "windowed": self.windowed,
            "id_dtype": self.id_dtype,
            "label_dtype": self.label_dtype,
            "eid_dtype": self.eid_dtype,
            "weight_dtype": self.weight_dtype,
        }


def _narrow_index_column(array: np.ndarray, bound: int) -> np.ndarray:
    """int32 copy of an index column when its bound fits, else unchanged."""
    if array.dtype == _INT32:
        return array
    if bound <= INT32_MAX + 1:  # max index bound-1 fits int32
        return array.astype(_INT32)
    return array


def _narrow_value_column(array: np.ndarray) -> np.ndarray:
    """int32 copy of a value column (labels, append ids) when values fit."""
    if array.dtype == _INT32:
        return array
    if array.dtype != _INT:
        return array
    if array.size == 0:
        return array.astype(_INT32)
    lo, hi = int(array.min()), int(array.max())
    if lo >= -(INT32_MAX + 1) and hi <= INT32_MAX:
        return array.astype(_INT32)
    return array


def _narrow_weight_column(array: np.ndarray | None) -> np.ndarray | None:
    """float32 weights only when the float64 round-trip is bit-exact."""
    if array is None or array.dtype == _FLOAT32:
        return array
    if array.dtype != _FLOAT:
        return array
    narrowed = array.astype(_FLOAT32)
    if np.array_equal(narrowed.astype(_FLOAT), array):
        return narrowed
    return array


def _int_dtype_name(*arrays: np.ndarray) -> str:
    return "int32" if all(a.dtype == _INT32 for a in arrays) else "int64"


class GraphStore:
    """The frozen columnar form of one bipartite graph.

    Wraps the parent graph's arrays **zero-copy** (:meth:`from_graph`), a
    shared segment's buffer (:meth:`attach`) or a mapped store file
    (:meth:`open`); :meth:`to_graph` goes back to a :class:`BipartiteGraph`
    through the trusted constructor, again without copying, so a store
    round-trip costs O(1). ``layout`` is set only on file-backed stores
    (the descriptor workers re-map the same file from).
    """

    __slots__ = (
        "n_users",
        "n_merchants",
        "edge_users",
        "edge_merchants",
        "edge_weights",
        "user_labels",
        "merchant_labels",
        "edge_ids",
        "edge_alive",
        "layout",
        "__weakref__",
    )

    def __init__(
        self,
        n_users: int,
        n_merchants: int,
        edge_users: np.ndarray,
        edge_merchants: np.ndarray,
        edge_weights: np.ndarray | None,
        user_labels: np.ndarray,
        merchant_labels: np.ndarray,
        edge_ids: np.ndarray | None = None,
        edge_alive: np.ndarray | None = None,
    ) -> None:
        self.n_users = int(n_users)
        self.n_merchants = int(n_merchants)
        self.edge_users = edge_users
        self.edge_merchants = edge_merchants
        self.edge_weights = edge_weights
        self.user_labels = user_labels
        self.merchant_labels = merchant_labels
        self.edge_ids = edge_ids
        self.edge_alive = edge_alive
        self.layout: StoreLayout | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: BipartiteGraph, window: EdgeWindow | None = None) -> "GraphStore":
        """Wrap ``graph``'s columns (and a liveness overlay) without copying."""
        if window is not None and window.alive.shape != (graph.n_edges,):
            raise GraphError(
                f"window columns cover {window.alive.shape[0]} rows, "
                f"graph has {graph.n_edges}"
            )
        return cls(
            n_users=graph.n_users,
            n_merchants=graph.n_merchants,
            edge_users=graph.edge_users,
            edge_merchants=graph.edge_merchants,
            edge_weights=graph.edge_weights,
            user_labels=graph.user_labels,
            merchant_labels=graph.merchant_labels,
            edge_ids=None if window is None else window.edge_ids,
            edge_alive=None if window is None else window.alive,
        )

    def edge_window(self) -> EdgeWindow | None:
        """The liveness overlay, when this store carries one."""
        if self.edge_alive is None or self.edge_ids is None:
            return None
        return EdgeWindow(alive=self.edge_alive, edge_ids=self.edge_ids)

    def to_graph(self) -> BipartiteGraph:
        """A :class:`BipartiteGraph` view over the stored columns.

        Uses the trusted constructor — the columns came from an already
        validated graph (or a segment/file exported from one), so the
        O(|E|) bounds scan is skipped. Compact int32/float32 columns ride
        through as-is; every compute path upcasts at its gather points.
        """
        return BipartiteGraph._from_trusted(
            n_users=self.n_users,
            n_merchants=self.n_merchants,
            edge_users=self.edge_users,
            edge_merchants=self.edge_merchants,
            edge_weights=self.edge_weights,
            user_labels=self.user_labels,
            merchant_labels=self.merchant_labels,
        )

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return int(self.edge_users.shape[0])

    @property
    def nbytes(self) -> int:
        """Total size of the stored columns in bytes."""
        total = self.edge_users.nbytes + self.edge_merchants.nbytes
        total += self.user_labels.nbytes + self.merchant_labels.nbytes
        if self.edge_weights is not None:
            total += self.edge_weights.nbytes
        if self.edge_ids is not None:
            total += self.edge_ids.nbytes
        if self.edge_alive is not None:
            total += self.edge_alive.nbytes
        return total

    # ------------------------------------------------------------------
    # compact dtypes
    # ------------------------------------------------------------------

    def compact(self) -> "GraphStore":
        """A store with the narrowest **lossless** storage dtypes.

        Endpoint ids narrow to int32 when the partition sizes fit; labels
        and append ids narrow when their actual values fit; weights narrow
        to float32 only when the float64 round-trip is bit-exact (so the
        kernel's ``(double)w`` load reproduces the wide weights exactly).
        Columns that already have the target dtype are shared, not copied.
        Both endpoint (and both label) columns always share one dtype so
        one layout field describes them.
        """
        edge_users = _narrow_index_column(self.edge_users, self.n_users)
        edge_merchants = _narrow_index_column(self.edge_merchants, self.n_merchants)
        if edge_users.dtype != edge_merchants.dtype:
            edge_users, edge_merchants = self.edge_users, self.edge_merchants
        user_labels = _narrow_value_column(self.user_labels)
        merchant_labels = _narrow_value_column(self.merchant_labels)
        if user_labels.dtype != merchant_labels.dtype:
            user_labels, merchant_labels = self.user_labels, self.merchant_labels
        return GraphStore(
            n_users=self.n_users,
            n_merchants=self.n_merchants,
            edge_users=edge_users,
            edge_merchants=edge_merchants,
            edge_weights=_narrow_weight_column(self.edge_weights),
            user_labels=user_labels,
            merchant_labels=merchant_labels,
            edge_ids=None if self.edge_ids is None else _narrow_value_column(self.edge_ids),
            edge_alive=self.edge_alive,
        )

    def _layout_for(self, segment: str, kind: str) -> StoreLayout:
        """The layout describing this store's actual column dtypes."""
        return StoreLayout(
            segment=segment,
            n_users=self.n_users,
            n_merchants=self.n_merchants,
            n_edges=self.n_edges,
            weighted=self.edge_weights is not None,
            windowed=self.edge_alive is not None and self.edge_ids is not None,
            kind=kind,
            id_dtype=_int_dtype_name(self.edge_users, self.edge_merchants),
            label_dtype=_int_dtype_name(self.user_labels, self.merchant_labels),
            eid_dtype="int64" if self.edge_ids is None else _int_dtype_name(self.edge_ids),
            weight_dtype=(
                "float32"
                if self.edge_weights is not None and self.edge_weights.dtype == _FLOAT32
                else "float64"
            ),
        )

    # ------------------------------------------------------------------
    # shared-memory export / attach
    # ------------------------------------------------------------------

    def export_shared(self) -> "SharedGraphStore":
        """Copy the columns into one fresh shared-memory segment.

        The returned handle owns the segment; dispose it (explicitly or via
        ``with``) once the fan-out that uses it has completed. A compacted
        store exports compact columns — half the segment bytes.
        """
        layout = self._layout_for(
            f"repro_gs_{os.getpid():x}_{secrets.token_hex(6)}", "shm"
        )
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, layout.nbytes), name=layout.segment
        )
        try:
            for name, offset, dtype, length in layout.slots():
                view = np.ndarray(length, dtype=dtype, buffer=shm.buf, offset=offset)
                view[:] = getattr(self, name)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return SharedGraphStore(layout, shm)

    @classmethod
    def attach(
        cls, layout: StoreLayout
    ) -> tuple["GraphStore", shared_memory.SharedMemory]:
        """Worker-side attach: read-only views over an existing segment.

        Returns the store plus the mapping that must be kept alive (and
        eventually closed) alongside it. Prefer :func:`attached_store`,
        which caches per process and also handles file-backed layouts.
        """
        try:
            shm = _attach_untracked(layout.segment)
        except FileNotFoundError as exc:
            raise GraphError(
                f"shared graph segment {layout.segment!r} does not exist "
                "(already disposed by the parent?)"
            ) from exc
        columns: dict[str, np.ndarray] = {}
        for name, offset, dtype, length in layout.slots():
            view = np.ndarray(length, dtype=dtype, buffer=shm.buf, offset=offset)
            view.flags.writeable = False
            columns[name] = view
        return (
            cls(
                n_users=layout.n_users,
                n_merchants=layout.n_merchants,
                edge_users=columns["edge_users"],
                edge_merchants=columns["edge_merchants"],
                edge_weights=columns.get("edge_weights"),
                user_labels=columns["user_labels"],
                merchant_labels=columns["merchant_labels"],
                edge_ids=columns.get("edge_ids"),
                edge_alive=columns.get("edge_alive"),
            ),
            shm,
        )

    # ------------------------------------------------------------------
    # file export / mmap open
    # ------------------------------------------------------------------

    def save(self, path: str | os.PathLike[str], compact: bool = True) -> StoreLayout:
        """Write the store to one flat, mmap-able file.

        The on-disk layout mirrors the shared-memory one: the same columns
        at the same derivable offsets, preceded by a fixed 4 KiB header
        (magic + JSON :meth:`StoreLayout.as_header`). ``compact=True``
        (the default) narrows storage dtypes losslessly first — int32 ids
        and labels when they fit, float32 weights when bit-exact.

        Returns the ``kind="file"`` :class:`StoreLayout` — the picklable
        descriptor :func:`attached_store` maps the file back from, which
        is what :func:`~repro.ensemble.runner.detect_on_plans` ships to
        workers instead of copying columns.
        """
        store = self.compact() if compact else self
        path = os.path.abspath(os.fspath(path))
        layout = store._layout_for(path, "file")
        layout.validate()
        header = json.dumps({"format": 1, **layout.as_header()}, sort_keys=True).encode("utf-8")
        if len(header) > _DATA_OFFSET - len(_MAGIC) - 8:  # pragma: no cover - fixed keys
            raise GraphError("graph store file header too large")
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(len(header).to_bytes(8, "little"))
            handle.write(header)
            for name, offset, dtype, length in layout.slots():
                handle.seek(_DATA_OFFSET + offset)
                np.ascontiguousarray(getattr(store, name), dtype=dtype).tofile(handle)
            handle.truncate(_DATA_OFFSET + layout.nbytes)
            handle.flush()
            os.fsync(handle.fileno())
        return layout

    @classmethod
    def open(cls, path: str | os.PathLike[str], mmap: bool = True) -> "GraphStore":
        """Open a store file written by :meth:`save` / :class:`StoreFileWriter`.

        ``mmap=True`` (the default) wraps each column as a read-only
        :class:`numpy.memmap` view — nothing is read until touched, so a
        store larger than RAM opens in O(1) and fancy indexing on a column
        reads only the pages it needs. ``mmap=False`` loads resident
        copies (small stores, or when the file will be deleted while the
        graph is still in use). The returned store carries its file
        ``layout``, which process fan-outs ship instead of graph bytes.
        """
        return cls._from_file(read_file_layout(path), mmap=mmap)

    @classmethod
    def _from_file(cls, layout: StoreLayout, mmap: bool) -> "GraphStore":
        columns: dict[str, np.ndarray] = {}
        buffer = None
        if mmap and layout.nbytes:
            buffer = np.memmap(
                layout.segment,
                dtype=np.uint8,
                mode="r",
                offset=_DATA_OFFSET,
                shape=(layout.nbytes,),
            )
        handle = None
        try:
            if not mmap:
                handle = open(layout.segment, "rb")
            for name, offset, dtype, length in layout.slots():
                if not length:
                    columns[name] = np.empty(0, dtype=dtype)
                elif mmap:
                    columns[name] = buffer[offset : offset + dtype.itemsize * length].view(dtype)
                else:
                    handle.seek(_DATA_OFFSET + offset)
                    column = np.fromfile(handle, dtype=dtype, count=length)
                    if column.shape[0] != length:
                        raise GraphError(
                            f"{layout.segment}: graph store file truncated in column {name!r}"
                        )
                    column.flags.writeable = False
                    columns[name] = column
        finally:
            if handle is not None:
                handle.close()
        store = cls(
            n_users=layout.n_users,
            n_merchants=layout.n_merchants,
            edge_users=columns["edge_users"],
            edge_merchants=columns["edge_merchants"],
            edge_weights=columns.get("edge_weights"),
            user_labels=columns["user_labels"],
            merchant_labels=columns["merchant_labels"],
            edge_ids=columns.get("edge_ids"),
            edge_alive=columns.get("edge_alive"),
        )
        store.layout = layout
        return store


def read_file_layout(path: str | os.PathLike[str]) -> StoreLayout:
    """Parse and validate the header of a graph store file.

    Raises :class:`~repro.errors.GraphError` for a missing file, wrong
    magic, unreadable header, unsupported dtypes, or a file shorter than
    the header promises — never a raw decoder exception.
    """
    path = os.path.abspath(os.fspath(path))
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                raise GraphError(f"{path!r} is not a graph store file (bad magic)")
            header_len = int.from_bytes(handle.read(8), "little")
            if not 0 < header_len <= _DATA_OFFSET - len(_MAGIC) - 8:
                raise GraphError(f"{path!r}: graph store file header length {header_len} is corrupt")
            raw = handle.read(header_len)
            if len(raw) != header_len:
                raise GraphError(f"{path!r}: graph store file truncated inside its header")
            header = json.loads(raw.decode("utf-8"))
    except FileNotFoundError as exc:
        raise GraphError(
            f"graph store file {path!r} does not exist (deleted while workers ran?)"
        ) from exc
    except (ValueError, UnicodeDecodeError) as exc:
        raise GraphError(f"{path!r}: corrupt graph store file header ({exc})") from exc
    try:
        layout = StoreLayout(
            segment=path,
            n_users=int(header["n_users"]),
            n_merchants=int(header["n_merchants"]),
            n_edges=int(header["n_edges"]),
            weighted=bool(header["weighted"]),
            windowed=bool(header.get("windowed", False)),
            kind="file",
            id_dtype=str(header.get("id_dtype", "int64")),
            label_dtype=str(header.get("label_dtype", "int64")),
            eid_dtype=str(header.get("eid_dtype", "int64")),
            weight_dtype=str(header.get("weight_dtype", "float64")),
        )
    except KeyError as exc:
        raise GraphError(f"{path!r}: graph store file header is missing {exc}") from None
    layout.validate()
    actual = os.path.getsize(path)
    expected = _DATA_OFFSET + layout.nbytes
    if actual < expected:
        raise GraphError(
            f"{path!r}: graph store file truncated ({actual} bytes, header promises {expected})"
        )
    return layout


class StoreFileWriter:
    """Stream a graph store file chunk by chunk, with bounded RAM.

    The chunked dataset emitters use this to write 10M+-edge benchmark
    graphs straight to an mmap-able store without ever materializing the
    full edge set: edges arrive in batches (:meth:`append`), labels
    default to identity, and each batch is bounds-checked against the
    declared partition sizes before the narrow-dtype cast — an
    out-of-range or int32-overflowing value raises
    :class:`~repro.errors.GraphError` instead of wrapping silently.

    ``id_dtype="auto"`` (the default) picks int32 whenever the declared
    partition sizes fit, int64 otherwise — the same policy as
    :meth:`GraphStore.compact`.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        n_users: int,
        n_merchants: int,
        n_edges: int,
        weighted: bool = False,
        id_dtype: str = "auto",
        weight_dtype: str = "float64",
    ) -> None:
        if min(n_users, n_merchants, n_edges) < 0:
            raise GraphError("store sizes must be non-negative")
        if id_dtype == "auto":
            id_dtype = "int32" if max(n_users, n_merchants) <= INT32_MAX + 1 else "int64"
        path = os.path.abspath(os.fspath(path))
        self._layout = StoreLayout(
            segment=path,
            n_users=int(n_users),
            n_merchants=int(n_merchants),
            n_edges=int(n_edges),
            weighted=bool(weighted),
            windowed=False,
            kind="file",
            id_dtype=id_dtype,
            label_dtype=id_dtype,
            eid_dtype="int64",
            weight_dtype=weight_dtype,
        )
        self._layout.validate()
        self._slots = {
            name: (offset, dtype, length) for name, offset, dtype, length in self._layout.slots()
        }
        header = json.dumps({"format": 1, **self._layout.as_header()}, sort_keys=True).encode("utf-8")
        self._handle = open(path, "w+b")
        try:
            self._handle.write(_MAGIC)
            self._handle.write(len(header).to_bytes(8, "little"))
            self._handle.write(header)
            self._handle.truncate(_DATA_OFFSET + self._layout.nbytes)
        except BaseException:
            self._handle.close()
            raise
        self._written = 0
        self._labels_set = {"user_labels": False, "merchant_labels": False}
        self._closed = False

    @property
    def layout(self) -> StoreLayout:
        """The file layout being written (valid to open after :meth:`close`)."""
        return self._layout

    @property
    def n_pending(self) -> int:
        """Edges still to be appended before :meth:`close` will succeed."""
        return self._layout.n_edges - self._written

    def _write_column(self, name: str, start: int, values: np.ndarray) -> None:
        offset, dtype, length = self._slots[name]
        self._handle.seek(_DATA_OFFSET + offset + start * dtype.itemsize)
        np.ascontiguousarray(values, dtype=dtype).tofile(self._handle)

    def append(
        self,
        users: np.ndarray,
        merchants: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Append one chunk of edges (endpoint arrays, optional weights)."""
        if self._closed:
            raise GraphError("cannot append to a closed StoreFileWriter")
        users = np.ascontiguousarray(users)
        merchants = np.ascontiguousarray(merchants)
        if users.shape != merchants.shape or users.ndim != 1:
            raise GraphError("edge endpoint chunks must be 1-D arrays of equal length")
        n = int(users.shape[0])
        if self._written + n > self._layout.n_edges:
            raise GraphError(
                f"chunk of {n} edges overflows the declared edge count "
                f"{self._layout.n_edges} ({self._written} already written)"
            )
        if (weights is not None) != self._layout.weighted:
            raise GraphError(
                "chunk weights must be provided exactly when the store is weighted"
            )
        if n:
            if int(users.min()) < 0 or int(users.max()) >= self._layout.n_users:
                raise GraphError(
                    f"edge_users chunk contains an out-of-range index "
                    f"(valid range 0..{self._layout.n_users - 1})"
                )
            if int(merchants.min()) < 0 or int(merchants.max()) >= self._layout.n_merchants:
                raise GraphError(
                    f"edge_merchants chunk contains an out-of-range index "
                    f"(valid range 0..{self._layout.n_merchants - 1})"
                )
        self._write_column("edge_users", self._written, users)
        self._write_column("edge_merchants", self._written, merchants)
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != users.shape:
                raise GraphError("chunk weights length does not match its edge count")
            if self._slots["edge_weights"][1] == _FLOAT32:
                narrowed = weights.astype(_FLOAT32)
                if not np.array_equal(narrowed.astype(_FLOAT), weights):
                    raise GraphError(
                        "chunk weights do not survive the store's float32 weight "
                        "dtype bit-exactly; write with weight_dtype='float64'"
                    )
            self._write_column("edge_weights", self._written, weights)
        self._written += n

    def _set_labels(self, name: str, labels: np.ndarray, n: int) -> None:
        labels = np.ascontiguousarray(labels)
        if labels.shape != (n,):
            raise GraphError(f"{name} must have length {n}, got {labels.shape}")
        offset, dtype, length = self._slots[name]
        if dtype == _INT32 and labels.size:
            lo, hi = int(labels.min()), int(labels.max())
            if lo < -(INT32_MAX + 1) or hi > INT32_MAX:
                raise GraphError(
                    f"{name} value {hi if hi > INT32_MAX else lo} does not fit the "
                    "store's int32 label dtype; write with id_dtype='int64'"
                )
        self._write_column(name, 0, labels)
        self._labels_set[name] = True

    def set_user_labels(self, labels: np.ndarray) -> None:
        """Replace the default identity user labels."""
        self._set_labels("user_labels", labels, self._layout.n_users)

    def set_merchant_labels(self, labels: np.ndarray) -> None:
        """Replace the default identity merchant labels."""
        self._set_labels("merchant_labels", labels, self._layout.n_merchants)

    def close(self) -> StoreLayout:
        """Finish the file (default labels, fsync) and return its layout."""
        if self._closed:
            return self._layout
        if self._written != self._layout.n_edges:
            raise GraphError(
                f"store file incomplete: {self._written} of "
                f"{self._layout.n_edges} declared edges appended"
            )
        chunk = 1 << 20
        for name, n in (
            ("user_labels", self._layout.n_users),
            ("merchant_labels", self._layout.n_merchants),
        ):
            if self._labels_set[name]:
                continue
            for start in range(0, n, chunk):
                stop = min(start + chunk, n)
                self._write_column(name, start, np.arange(start, stop, dtype=np.int64))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True
        return self._layout

    def abort(self) -> None:
        """Drop an unfinished write: close the handle, remove the partial file."""
        if not self._closed:
            self._closed = True
            self._handle.close()
            try:
                os.unlink(self._layout.segment)
            except OSError:
                pass

    def __enter__(self) -> "StoreFileWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering with the resource tracker.

    Only the creator (parent) process owns the segment's lifetime. Until
    Python 3.13's ``track=False``, attaching also registers the name with
    the shared resource-tracker daemon — whose per-type cache is a *set*,
    so the duplicate entry collapses with the parent's and the eventual
    double-unregister raises inside the tracker. Suppressing registration
    for the attach call sidesteps both that and the bogus
    "leaked shared_memory" warnings at worker exit.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - exotic platform
        return shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedGraphStore:
    """Parent-side handle of one exported segment (owns its lifetime).

    ``dispose()`` closes the mapping and unlinks the name; it is idempotent
    and also wired as a ``weakref.finalize`` backstop, so dropping the last
    reference can never leak a ``/dev/shm`` entry.
    """

    def __init__(self, layout: StoreLayout, shm: shared_memory.SharedMemory) -> None:
        self.layout = layout
        self._shm: shared_memory.SharedMemory | None = shm
        self._finalizer = weakref.finalize(self, _dispose_segment, shm)

    @property
    def disposed(self) -> bool:
        """``True`` once the segment has been unlinked."""
        return self._shm is None

    def dispose(self) -> None:
        """Close the parent's mapping and unlink the segment (idempotent)."""
        if self._shm is not None:
            self._shm = None
            self._finalizer()

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.dispose()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "disposed" if self.disposed else f"{self.layout.nbytes} bytes"
        return f"SharedGraphStore({self.layout.segment}, {state})"


def _dispose_segment(shm: shared_memory.SharedMemory) -> None:
    # unlink before close: removing the name can never fail on live views,
    # whereas mmap.close() raises BufferError while numpy views are exported
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a view outlived the handle
        pass


# ------------------------------------------------------------------
# worker-side attachment cache (one live segment/file per process)
# ------------------------------------------------------------------

_ATTACHED: dict[str, tuple[GraphStore, shared_memory.SharedMemory | None]] = {}


def attached_store(layout: StoreLayout) -> GraphStore:
    """The process-local :class:`GraphStore` for ``layout``, attached once.

    The first call in a worker maps the segment (``kind="shm"``) or the
    store file (``kind="file"``, lazily via :class:`numpy.memmap`);
    subsequent calls for the same source (later chunks of the same fit,
    later fits on the same store) are dictionary hits. Attaching a
    *different* source drops the previous mapping first — fits are
    sequential, so a worker never needs two parents at once and stale
    mappings would otherwise accumulate in a long-lived pool.
    """
    cached = _ATTACHED.get(layout.segment)
    if cached is not None:
        return cached[0]
    if layout.kind == "file":
        fault_point("mmap.open", path=layout.segment)
        detach_all()
        store = GraphStore._from_file(read_file_layout(layout.segment), mmap=True)
        _ATTACHED[layout.segment] = (store, None)
        return store
    fault_point("shm.attach", segment=layout.segment)
    detach_all()
    store, shm = GraphStore.attach(layout)
    _ATTACHED[layout.segment] = (store, shm)
    return store


def detach_all() -> None:
    """Close every cached attachment (worker shutdown / test hygiene)."""
    while _ATTACHED:
        _, entry = _ATTACHED.popitem()
        shm = entry[1]
        del entry  # drop the store (and its buffer views) before closing
        if shm is None:
            continue  # file mapping: released when the views are collected
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a materialized view lingers
            pass
