"""Rolling-window liveness model for streaming graphs.

The append-only :class:`~repro.graph.builder.GraphAccumulator` treats the
transaction log as immortal: every edge ever appended votes forever. Real
fraud moves in time — attacks ramp up, go dormant, and sometimes delete
their own traces — and stale honest history dilutes the vote scores of
everything that follows. The windowed mode bounds the graph to *live*
edges only:

* :class:`WindowConfig` — the retention policy: keep the last
  ``max_batches`` appended batches, or every batch within a ``horizon``
  of the newest timestamp (or both; an edge must satisfy every configured
  bound to stay live).
* :class:`LiveWindow` — an immutable snapshot of the windowed state: the
  full *stored* graph (which may still contain tombstoned rows awaiting
  compaction), the liveness mask over its physical rows, and the
  **original append ids** of those rows. Stripe-hash sampling keys stripe
  membership by append id, so expiring or compacting other edges can
  never move a surviving edge between samples.
* :class:`EdgeWindow` — the two per-row columns (`alive`, `edge_ids`) in
  a picklable form, shipped to workers next to a
  :class:`~repro.graph.store.StoreLayout` so the zero-copy fan-out stays
  zero-copy.

The watermark is the total number of edges ever appended — the exclusive
upper bound of the id space. It only grows; compaction reclaims physical
rows but never reuses ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..errors import GraphError
from .bipartite import BipartiteGraph

__all__ = ["WindowConfig", "EdgeWindow", "LiveWindow"]


@dataclass(frozen=True)
class WindowConfig:
    """Retention policy of a rolling edge window.

    At least one of ``max_batches`` / ``horizon`` must be set. When both
    are, the *tighter* cutoff wins (an edge must be within the last
    ``max_batches`` batches **and** within ``horizon`` of the newest
    timestamp to stay live). ``compact_threshold`` is the dead-row
    fraction above which the accumulator compacts its physical arrays.
    """

    max_batches: int | None = None
    horizon: float | None = None
    compact_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.max_batches is None and self.horizon is None:
            raise GraphError("WindowConfig needs max_batches and/or horizon")
        if self.max_batches is not None and int(self.max_batches) < 1:
            raise GraphError(f"max_batches must be >= 1, got {self.max_batches}")
        if self.horizon is not None and not float(self.horizon) > 0.0:
            raise GraphError(f"horizon must be > 0, got {self.horizon}")
        if not 0.0 < float(self.compact_threshold) <= 1.0:
            raise GraphError(
                f"compact_threshold must be in (0, 1], got {self.compact_threshold}"
            )

    def as_dict(self) -> dict:
        """JSON-able form (DetectionState v3 ``window_json``)."""
        return {
            "max_batches": None if self.max_batches is None else int(self.max_batches),
            "horizon": None if self.horizon is None else float(self.horizon),
            "compact_threshold": float(self.compact_threshold),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowConfig":
        """Inverse of :meth:`as_dict` (validates via the constructor)."""
        if not isinstance(payload, dict):
            raise GraphError(f"window config must be a mapping, got {type(payload).__name__}")
        known = {"max_batches", "horizon", "compact_threshold"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise GraphError(f"unknown window config keys: {', '.join(unknown)}")
        kwargs = dict(payload)
        kwargs.setdefault("compact_threshold", 0.5)
        return cls(**kwargs)


class EdgeWindow(NamedTuple):
    """Per-physical-row liveness columns, in picklable/shippable form.

    ``alive[i]`` says whether stored edge row ``i`` is inside the window;
    ``edge_ids[i]`` is its original append id (monotone along the rows —
    appends are sequential and compaction preserves order).
    """

    alive: np.ndarray
    edge_ids: np.ndarray


@dataclass(frozen=True)
class LiveWindow:
    """Immutable snapshot of a windowed accumulator.

    ``graph`` is the full stored graph *including* tombstoned rows — the
    shape the zero-copy fan-out ships — while ``alive`` / ``edge_ids``
    carry the liveness overlay. ``watermark`` is the exclusive upper
    bound of the append-id space (total edges ever appended).
    """

    graph: BipartiteGraph
    alive: np.ndarray
    edge_ids: np.ndarray
    watermark: int

    def __post_init__(self) -> None:
        if self.alive.shape != (self.graph.n_edges,) or self.alive.dtype != np.bool_:
            raise GraphError("window alive mask must be bool of length n_edges")
        if self.edge_ids.shape != (self.graph.n_edges,) or self.edge_ids.dtype != np.int64:
            raise GraphError("window edge_ids must be int64 of length n_edges")
        if self.graph.n_edges and int(self.edge_ids[-1]) >= int(self.watermark):
            raise GraphError("window watermark below the newest edge id")

    @property
    def n_live(self) -> int:
        """Number of live edges in the window."""
        return int(np.count_nonzero(self.alive))

    def edge_window(self) -> EdgeWindow:
        """The picklable ``(alive, edge_ids)`` column pair."""
        return EdgeWindow(alive=self.alive, edge_ids=self.edge_ids)

    def live_graph(self) -> BipartiteGraph:
        """The live edges only, keeping the full node set and labels.

        Node indexing matches ``graph`` exactly, so detections computed on
        the live graph speak the same label space as windowed sampling
        over the stored graph — this is what makes a cold fit on
        ``live_graph()`` comparable bit-for-bit with windowed updates.
        """
        if bool(self.alive.all()):
            return self.graph
        return self.graph.remove_edges(np.nonzero(~self.alive)[0])
