"""Serialisation of bipartite graphs.

Two formats:

* **edge-list TSV** — ``user<TAB>merchant[<TAB>weight]`` rows with a ``#``
  header carrying partition sizes; interoperable with awk/cut pipelines.
* **npz** — a compact numpy archive preserving labels and weights exactly.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..errors import GraphError
from .bipartite import BipartiteGraph

__all__ = ["save_edge_list", "load_edge_list", "save_npz", "load_npz"]

_HEADER_PREFIX = "# bipartite"


def save_edge_list(graph: BipartiteGraph, path: str | os.PathLike[str]) -> None:
    """Write the graph as TSV with a size header.

    Node *labels* (original ids), not local indices, are written so that a
    saved subgraph remains interpretable against its parent graph.
    """
    path = Path(path)
    weights = graph.edge_weights
    with path.open("w", encoding="utf-8") as fh:
        fh.write(
            f"{_HEADER_PREFIX} users={graph.n_users} merchants={graph.n_merchants} "
            f"edges={graph.n_edges} weighted={int(graph.is_weighted)}\n"
        )
        user_labels = graph.user_labels
        merchant_labels = graph.merchant_labels
        for i in range(graph.n_edges):
            u = user_labels[graph.edge_users[i]]
            v = merchant_labels[graph.edge_merchants[i]]
            if weights is None:
                fh.write(f"{u}\t{v}\n")
            else:
                fh.write(f"{u}\t{v}\t{float(weights[i])!r}\n")


def load_edge_list(path: str | os.PathLike[str]) -> BipartiteGraph:
    """Read a TSV written by :func:`save_edge_list`.

    Labels are re-interned into dense local indices; the original labels are
    preserved in ``user_labels`` / ``merchant_labels``.
    """
    path = Path(path)
    edge_users: list[int] = []
    edge_merchants: list[int] = []
    weights: list[float] = []
    weighted = False
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith(_HEADER_PREFIX):
            raise GraphError(f"{path}: missing '{_HEADER_PREFIX}' header")
        fields = dict(item.split("=") for item in header.strip().split()[2:])
        weighted = bool(int(fields.get("weighted", "0")))
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_no}: expected at least two columns")
            edge_users.append(int(parts[0]))
            edge_merchants.append(int(parts[1]))
            if weighted:
                if len(parts) < 3:
                    raise GraphError(f"{path}:{line_no}: weighted file missing weight column")
                weights.append(float(parts[2]))

    user_labels, local_users = np.unique(
        np.array(edge_users, dtype=np.int64), return_inverse=True
    )
    merchant_labels, local_merchants = np.unique(
        np.array(edge_merchants, dtype=np.int64), return_inverse=True
    )
    return BipartiteGraph(
        n_users=user_labels.size,
        n_merchants=merchant_labels.size,
        edge_users=local_users,
        edge_merchants=local_merchants,
        edge_weights=np.array(weights, dtype=np.float64) if weighted else None,
        user_labels=user_labels,
        merchant_labels=merchant_labels,
    )


def save_npz(graph: BipartiteGraph, path: str | os.PathLike[str]) -> None:
    """Save the full graph (including labels) to a ``.npz`` archive."""
    arrays = {
        "n_users": np.array([graph.n_users], dtype=np.int64),
        "n_merchants": np.array([graph.n_merchants], dtype=np.int64),
        "edge_users": graph.edge_users,
        "edge_merchants": graph.edge_merchants,
        "user_labels": graph.user_labels,
        "merchant_labels": graph.merchant_labels,
    }
    if graph.edge_weights is not None:
        arrays["edge_weights"] = graph.edge_weights
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | os.PathLike[str]) -> BipartiteGraph:
    """Load a graph saved by :func:`save_npz` (exact round-trip)."""
    with np.load(Path(path)) as data:
        return BipartiteGraph(
            n_users=int(data["n_users"][0]),
            n_merchants=int(data["n_merchants"][0]),
            edge_users=data["edge_users"],
            edge_merchants=data["edge_merchants"],
            edge_weights=data["edge_weights"] if "edge_weights" in data else None,
            user_labels=data["user_labels"],
            merchant_labels=data["merchant_labels"],
        )
