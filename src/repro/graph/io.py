"""Serialisation of bipartite graphs.

Two formats:

* **edge-list TSV** — ``user<TAB>merchant[<TAB>weight]`` rows with a ``#``
  header carrying partition sizes; interoperable with awk/cut pipelines.
* **npz** — a compact numpy archive preserving labels and weights exactly.

Both formats also expose a **chunked** read path for streaming ingestion:
:func:`iter_edge_batches` / :func:`iter_npz_batches` yield fixed-size
:class:`EdgeBatch` chunks of raw global labels without ever holding the
whole file's parsed rows, and :func:`load_edge_list_chunked` feeds them
through a :class:`~repro.graph.builder.GraphAccumulator` to reconstruct a
graph bitwise-identical to :func:`load_edge_list`'s.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, Iterator, NamedTuple

import numpy as np

from ..errors import GraphError
from .bipartite import BipartiteGraph
from .builder import GraphAccumulator

__all__ = [
    "EdgeBatch",
    "save_edge_list",
    "load_edge_list",
    "load_edge_list_chunked",
    "iter_edge_batches",
    "iter_npz_batches",
    "save_npz",
    "load_npz",
]

_HEADER_PREFIX = "# bipartite"

#: default number of edges per chunk for the streaming readers
DEFAULT_BATCH_SIZE = 65_536


class EdgeBatch(NamedTuple):
    """One chunk of edges in **raw label** space (not interned indices)."""

    users: np.ndarray
    merchants: np.ndarray
    weights: np.ndarray | None

    @property
    def n_edges(self) -> int:
        """Edges in this batch."""
        return int(self.users.size)


def _parse_header(header: str, path: Path) -> dict[str, str]:
    if not header.startswith(_HEADER_PREFIX):
        raise GraphError(f"{path}: missing '{_HEADER_PREFIX}' header")
    fields: dict[str, str] = {}
    for item in header.strip().split()[2:]:
        key, sep, value = item.partition("=")
        if not sep or not key:
            # e.g. the writer crashed mid-header and left "mer" or "=5"
            raise GraphError(
                f"{path}: malformed header token {item!r} "
                "(truncated or corrupted file?)"
            )
        fields[key] = value
    return fields


def _weighted_flag(fields: dict[str, str], path: Path) -> bool:
    flag = fields.get("weighted", "0")
    try:
        return bool(int(flag))
    except ValueError:
        raise GraphError(f"{path}: malformed weighted= flag {flag!r} in header") from None


def _declared_edges(fields: dict[str, str], path: Path) -> int | None:
    declared = fields.get("edges")
    if declared is None:
        return None
    try:
        return int(declared)
    except ValueError:
        raise GraphError(f"{path}: malformed edges= count {declared!r} in header") from None


def _check_declared_edges(declared: int | None, parsed: int, path: Path) -> None:
    """Cross-check the header's ``edges=`` count against the parsed body.

    A truncated or concatenated file must not load silently as a smaller
    (still structurally valid) graph.
    """
    if declared is not None and parsed != declared:
        raise GraphError(
            f"{path}: header declares edges={declared} but the body has {parsed} "
            "edge rows (truncated or corrupted file?)"
        )


def save_edge_list(graph: BipartiteGraph, path: str | os.PathLike[str]) -> None:
    """Write the graph as TSV with a size header.

    Node *labels* (original ids), not local indices, are written so that a
    saved subgraph remains interpretable against its parent graph.
    """
    path = Path(path)
    weights = graph.edge_weights
    with path.open("w", encoding="utf-8") as fh:
        fh.write(
            f"{_HEADER_PREFIX} users={graph.n_users} merchants={graph.n_merchants} "
            f"edges={graph.n_edges} weighted={int(graph.is_weighted)}\n"
        )
        user_labels = graph.user_labels
        merchant_labels = graph.merchant_labels
        for i in range(graph.n_edges):
            u = user_labels[graph.edge_users[i]]
            v = merchant_labels[graph.edge_merchants[i]]
            if weights is None:
                fh.write(f"{u}\t{v}\n")
            else:
                fh.write(f"{u}\t{v}\t{float(weights[i])!r}\n")


def _iter_rows(
    fh: IO[str], path: Path, weighted: bool, start_line: int = 2
) -> Iterator[tuple[int, int, float]]:
    """Yield ``(user, merchant, weight)`` per data row; shared by both loaders."""
    for line_no, line in enumerate(fh, start=start_line):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) < 2:
            raise GraphError(f"{path}:{line_no}: expected at least two columns")
        try:
            weight = 1.0
            if weighted:
                if len(parts) < 3:
                    raise GraphError(
                        f"{path}:{line_no}: weighted file missing weight column"
                    )
                weight = float(parts[2])
            yield int(parts[0]), int(parts[1]), weight
        except ValueError as exc:
            # a row cut mid-write ("123\t45" → "123\t4") parses as the wrong
            # edge silently only if every token survives; a half token must
            # surface as a parse error, not a bare ValueError
            raise GraphError(
                f"{path}:{line_no}: unparsable edge row {line!r} "
                f"({exc}); truncated or corrupted file?"
            ) from exc


def load_edge_list(path: str | os.PathLike[str]) -> BipartiteGraph:
    """Read a TSV written by :func:`save_edge_list`.

    Labels are re-interned into dense local indices; the original labels are
    preserved in ``user_labels`` / ``merchant_labels``. The header's
    ``edges=`` count is cross-checked against the rows actually parsed.
    """
    path = Path(path)
    edge_users: list[int] = []
    edge_merchants: list[int] = []
    weights: list[float] = []
    with path.open("r", encoding="utf-8") as fh:
        fields = _parse_header(fh.readline(), path)
        weighted = _weighted_flag(fields, path)
        for user, merchant, weight in _iter_rows(fh, path, weighted):
            edge_users.append(user)
            edge_merchants.append(merchant)
            if weighted:
                weights.append(weight)
    _check_declared_edges(_declared_edges(fields, path), len(edge_users), path)

    user_labels, local_users = np.unique(
        np.array(edge_users, dtype=np.int64), return_inverse=True
    )
    merchant_labels, local_merchants = np.unique(
        np.array(edge_merchants, dtype=np.int64), return_inverse=True
    )
    return BipartiteGraph(
        n_users=user_labels.size,
        n_merchants=merchant_labels.size,
        edge_users=local_users,
        edge_merchants=local_merchants,
        edge_weights=np.array(weights, dtype=np.float64) if weighted else None,
        user_labels=user_labels,
        merchant_labels=merchant_labels,
    )


def iter_edge_batches(
    path: str | os.PathLike[str],
    batch_size: int = DEFAULT_BATCH_SIZE,
    strict: bool = True,
) -> Iterator[EdgeBatch]:
    """Stream an edge-list TSV as fixed-size :class:`EdgeBatch` chunks.

    Memory stays constant in the file size: only ``batch_size`` parsed rows
    are alive at any moment. Labels are yielded raw (not interned) — feed
    the batches to a :class:`~repro.graph.builder.GraphAccumulator`, which
    interns across chunks.

    Parameters
    ----------
    path:
        Edge-list TSV with the ``# bipartite`` header.
    batch_size:
        Maximum edges per yielded batch.
    strict:
        When ``True`` (default), the header's ``edges=`` count is verified
        against the total rows streamed once the file is exhausted — the
        same truncation guard as :func:`load_edge_list`. Pass ``False``
        for append-in-progress files (e.g. the ``watch`` CLI tailing a
        growing log) whose header count is expected to lag.
    """
    if batch_size < 1:
        raise GraphError(f"batch_size must be >= 1, got {batch_size}")
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        fields = _parse_header(fh.readline(), path)
        weighted = _weighted_flag(fields, path)
        users: list[int] = []
        merchants: list[int] = []
        weights: list[float] = []
        total = 0

        def flush() -> EdgeBatch:
            batch = EdgeBatch(
                users=np.array(users, dtype=np.int64),
                merchants=np.array(merchants, dtype=np.int64),
                weights=np.array(weights, dtype=np.float64) if weighted else None,
            )
            users.clear()
            merchants.clear()
            weights.clear()
            return batch

        for user, merchant, weight in _iter_rows(fh, path, weighted):
            users.append(user)
            merchants.append(merchant)
            if weighted:
                weights.append(weight)
            total += 1
            if len(users) >= batch_size:
                yield flush()
        if users:
            yield flush()
    if strict:
        _check_declared_edges(_declared_edges(fields, path), total, path)


def _canonical_labels(graph: BipartiteGraph) -> BipartiteGraph:
    """Re-index so labels are sorted ascending (the ``np.unique`` convention).

    The accumulator interns labels in first-appearance order; the whole-file
    loader sorts them. Re-ranking the label arrays makes the chunked path's
    output bitwise-identical to :func:`load_edge_list`'s.
    """
    user_order = np.argsort(graph.user_labels, kind="stable")
    merchant_order = np.argsort(graph.merchant_labels, kind="stable")
    user_rank = np.empty_like(user_order)
    merchant_rank = np.empty_like(merchant_order)
    user_rank[user_order] = np.arange(user_order.size, dtype=np.int64)
    merchant_rank[merchant_order] = np.arange(merchant_order.size, dtype=np.int64)
    return BipartiteGraph._from_trusted(
        n_users=graph.n_users,
        n_merchants=graph.n_merchants,
        edge_users=user_rank[graph.edge_users],
        edge_merchants=merchant_rank[graph.edge_merchants],
        edge_weights=graph.edge_weights,
        user_labels=graph.user_labels[user_order],
        merchant_labels=graph.merchant_labels[merchant_order],
    )


def load_edge_list_chunked(
    path: str | os.PathLike[str],
    batch_size: int = DEFAULT_BATCH_SIZE,
    strict: bool = True,
) -> BipartiteGraph:
    """Constant-memory equivalent of :func:`load_edge_list`.

    Streams the file in ``batch_size`` chunks through a
    :class:`~repro.graph.builder.GraphAccumulator` (so peak memory is the
    output graph plus one chunk) and returns a graph **bitwise-identical**
    to the whole-file loader's: same edge order, same sorted label arrays,
    same dtypes.

    ``strict=False`` skips the header ``edges=`` cross-check, for files
    still being appended to (the loaded graph then reflects whatever
    complete rows were present). A row cut mid-write still raises
    :class:`~repro.errors.GraphError` — a half-written token must never
    load as a different edge.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        fields = _parse_header(fh.readline(), path)
    weighted = _weighted_flag(fields, path)
    accumulator = GraphAccumulator()
    for batch in iter_edge_batches(path, batch_size=batch_size, strict=strict):
        accumulator.append(batch.users, batch.merchants, batch.weights)
    graph = _canonical_labels(accumulator.graph())
    if weighted and graph.edge_weights is None:
        # zero-edge weighted file: match the whole-file loader's empty array
        graph = graph.with_weights(np.empty(0, dtype=np.float64))
    return graph


def save_npz(graph: BipartiteGraph, path: str | os.PathLike[str]) -> None:
    """Save the full graph (including labels) to a ``.npz`` archive."""
    arrays = {
        "n_users": np.array([graph.n_users], dtype=np.int64),
        "n_merchants": np.array([graph.n_merchants], dtype=np.int64),
        "edge_users": graph.edge_users,
        "edge_merchants": graph.edge_merchants,
        "user_labels": graph.user_labels,
        "merchant_labels": graph.merchant_labels,
    }
    if graph.edge_weights is not None:
        arrays["edge_weights"] = graph.edge_weights
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | os.PathLike[str]) -> BipartiteGraph:
    """Load a graph saved by :func:`save_npz` (exact round-trip)."""
    with np.load(Path(path)) as data:
        return BipartiteGraph(
            n_users=int(data["n_users"][0]),
            n_merchants=int(data["n_merchants"][0]),
            edge_users=data["edge_users"],
            edge_merchants=data["edge_merchants"],
            edge_weights=data["edge_weights"] if "edge_weights" in data else None,
            user_labels=data["user_labels"],
            merchant_labels=data["merchant_labels"],
        )


def iter_npz_batches(
    path: str | os.PathLike[str], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[EdgeBatch]:
    """Stream a saved ``.npz`` graph as :class:`EdgeBatch` chunks.

    Edges come out in stored order with endpoints translated back to
    **global labels**, so the batches are interchangeable with
    :func:`iter_edge_batches` output — e.g. both can seed the same
    :class:`~repro.graph.builder.GraphAccumulator` or be replayed into an
    incremental detector.
    """
    if batch_size < 1:
        raise GraphError(f"batch_size must be >= 1, got {batch_size}")
    with np.load(Path(path)) as data:
        edge_users = data["edge_users"]
        edge_merchants = data["edge_merchants"]
        user_labels = data["user_labels"]
        merchant_labels = data["merchant_labels"]
        weights = data["edge_weights"] if "edge_weights" in data else None
        for start in range(0, int(edge_users.size), batch_size):
            stop = min(start + batch_size, int(edge_users.size))
            yield EdgeBatch(
                users=user_labels[edge_users[start:stop]],
                merchants=merchant_labels[edge_merchants[start:stop]],
                weights=None if weights is None else weights[start:stop],
            )
