"""Deep structural validation of bipartite graphs.

:class:`BipartiteGraph` validates array shapes and index ranges on
construction; this module adds the *expensive* checks (label uniqueness,
subgraph containment) that tests and data-ingestion paths want but hot loops
must not pay for.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphValidationError
from .bipartite import BipartiteGraph

__all__ = ["validate_graph", "assert_subgraph_of", "has_duplicate_edges"]


def validate_graph(graph: BipartiteGraph, require_unique_labels: bool = True) -> None:
    """Raise :class:`GraphValidationError` on any deep inconsistency."""
    if graph.edge_weights is not None:
        if not np.all(np.isfinite(graph.edge_weights)):
            raise GraphValidationError("edge_weights contains non-finite values")
        if np.any(graph.edge_weights < 0):
            raise GraphValidationError("edge_weights contains negative values")
    if require_unique_labels:
        if np.unique(graph.user_labels).size != graph.n_users:
            raise GraphValidationError("user_labels are not unique")
        if np.unique(graph.merchant_labels).size != graph.n_merchants:
            raise GraphValidationError("merchant_labels are not unique")
    # adjacency consistency: CSR partitions must cover each edge exactly once
    indptr, edge_index = graph.user_adjacency()
    if int(indptr[-1]) != graph.n_edges or np.unique(edge_index).size != graph.n_edges:
        raise GraphValidationError("user adjacency does not partition the edge set")
    indptr, edge_index = graph.merchant_adjacency()
    if int(indptr[-1]) != graph.n_edges or np.unique(edge_index).size != graph.n_edges:
        raise GraphValidationError("merchant adjacency does not partition the edge set")


def has_duplicate_edges(graph: BipartiteGraph) -> bool:
    """``True`` when some ``(user, merchant)`` pair appears more than once."""
    if graph.is_empty:
        return False
    pairs = graph.edge_users.astype(np.int64) * graph.n_merchants + graph.edge_merchants
    return np.unique(pairs).size != graph.n_edges


def _label_edge_set(graph: BipartiteGraph) -> set[tuple[int, int]]:
    return {
        (int(graph.user_labels[u]), int(graph.merchant_labels[v]))
        for u, v in zip(graph.edge_users.tolist(), graph.edge_merchants.tolist())
    }


def assert_subgraph_of(sub: BipartiteGraph, parent: BipartiteGraph) -> None:
    """Check that ``sub``'s labelled nodes/edges all exist in ``parent``.

    Samplers must only ever *remove* structure; this is the invariant the
    property tests lean on.
    """
    parent_users = set(parent.user_labels.tolist())
    parent_merchants = set(parent.merchant_labels.tolist())
    sub_users = set(sub.user_labels.tolist())
    sub_merchants = set(sub.merchant_labels.tolist())
    if not sub_users <= parent_users:
        raise GraphValidationError("subgraph has user labels absent from parent")
    if not sub_merchants <= parent_merchants:
        raise GraphValidationError("subgraph has merchant labels absent from parent")
    if not _label_edge_set(sub) <= _label_edge_set(parent):
        raise GraphValidationError("subgraph has edges absent from parent")
