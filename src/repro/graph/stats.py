"""Descriptive statistics for bipartite graphs.

These power the Table-I style dataset summaries and the sampling analysis
(average side degrees decide which side ONS should sample, §IV-A3 of the
paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteGraph

__all__ = ["GraphStats", "describe", "degree_histogram", "edge_density", "degree_gini"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one bipartite graph."""

    n_users: int
    n_merchants: int
    n_edges: int
    avg_user_degree: float
    avg_merchant_degree: float
    max_user_degree: int
    max_merchant_degree: int
    edge_density: float
    isolated_users: int
    isolated_merchants: int

    def as_row(self) -> dict[str, float | int]:
        """Flat dict suitable for a report table row."""
        return {
            "users": self.n_users,
            "merchants": self.n_merchants,
            "edges": self.n_edges,
            "avg_deg_user": round(self.avg_user_degree, 3),
            "avg_deg_merchant": round(self.avg_merchant_degree, 3),
            "max_deg_user": self.max_user_degree,
            "max_deg_merchant": self.max_merchant_degree,
            "edge_density": self.edge_density,
            "isolated_users": self.isolated_users,
            "isolated_merchants": self.isolated_merchants,
        }


def describe(graph: BipartiteGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    du = graph.user_degrees()
    dv = graph.merchant_degrees()
    return GraphStats(
        n_users=graph.n_users,
        n_merchants=graph.n_merchants,
        n_edges=graph.n_edges,
        avg_user_degree=float(du.mean()) if du.size else 0.0,
        avg_merchant_degree=float(dv.mean()) if dv.size else 0.0,
        max_user_degree=int(du.max()) if du.size else 0,
        max_merchant_degree=int(dv.max()) if dv.size else 0,
        edge_density=edge_density(graph),
        isolated_users=int((du == 0).sum()),
        isolated_merchants=int((dv == 0).sum()),
    )


def edge_density(graph: BipartiteGraph) -> float:
    """``|E| / (|U| · |V|)`` — fraction of possible bipartite edges present."""
    cells = graph.n_users * graph.n_merchants
    if cells == 0:
        return 0.0
    return graph.n_edges / cells


def degree_histogram(degrees: np.ndarray) -> dict[int, int]:
    """``degree -> node count`` map (``f_D(q)`` in the paper's Lemma 1)."""
    if degrees.size == 0:
        return {}
    values, counts = np.unique(degrees, return_counts=True)
    return {int(q): int(c) for q, c in zip(values, counts)}


def degree_gini(degrees: np.ndarray) -> float:
    """Gini coefficient of a degree distribution (0 = uniform, →1 = skewed).

    Useful to confirm the synthetic backgrounds are heavy-tailed like real
    transaction data.
    """
    if degrees.size == 0:
        return 0.0
    sorted_deg = np.sort(degrees.astype(np.float64))
    total = sorted_deg.sum()
    if total == 0:
        return 0.0
    n = sorted_deg.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * sorted_deg).sum()) / (n * total) - (n + 1) / n)
