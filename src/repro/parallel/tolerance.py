"""Fault-tolerance policy for the ensemble fan-out.

One frozen value object, :class:`FaultTolerance`, holds every degraded-mode
knob: per-member wall-clock timeout, bounded retry with deterministic
backoff, the backend-degradation ladder, and the minimum voting quorum.
The runner (:func:`repro.ensemble.runner.run_members`) consumes it; the
ensemble config embeds it and persists it with detection state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["FaultTolerance"]


@dataclass(frozen=True)
class FaultTolerance:
    """Degraded-mode policy for one ensemble fit/update.

    Attributes
    ----------
    member_timeout:
        Wall-clock budget per ensemble member, in seconds. A chunk of
        ``k`` members gets ``k × member_timeout``; exceeding it kills the
        (process-backend) workers and marks the chunk's members failed
        for that attempt. ``None`` disables timeouts.
    max_retries:
        How many extra rounds failed members are re-run (0 = fail fast).
        Retried members re-materialize the same deterministic plan, so a
        recovered retry is bitwise-identical to a fault-free run.
    backoff_seconds:
        Deterministic backoff before retry round ``r``:
        ``backoff_seconds × 2**(r-1)`` (no jitter — retry schedules must
        reproduce exactly under a fixed fault plan).
    degrade:
        Walk the backend ladder on retries: the first retry keeps the
        configured backend (a respawned pool often just works), later
        retries fall back process → thread → serial so the final round
        cannot be taken down by pool infrastructure at all. Shared-memory
        attach failures likewise fall back to the pickled-store transport
        on the next round.
    min_quorum:
        Minimum surviving fraction of the ensemble (``0 < q ≤ 1``) for a
        vote to be meaningful. With fewer survivors the fit raises
        :class:`repro.errors.QuorumError` instead of returning a
        silently-weak detection.
    """

    member_timeout: float | None = None
    max_retries: int = 2
    backoff_seconds: float = 0.0
    degrade: bool = True
    min_quorum: float = 0.5

    def __post_init__(self) -> None:
        if self.member_timeout is not None and self.member_timeout <= 0:
            raise ReproError(
                f"member_timeout must be positive or None, got {self.member_timeout}"
            )
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0:
            raise ReproError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if not 0.0 < self.min_quorum <= 1.0:
            raise ReproError(f"min_quorum must be in (0, 1], got {self.min_quorum}")

    def required_survivors(self, n_samples: int) -> int:
        """Smallest surviving member count that still meets the quorum."""
        return max(1, math.ceil(self.min_quorum * n_samples))

    def backoff_for(self, retry_round: int) -> float:
        """Deterministic backoff before retry round ``retry_round`` (1-based)."""
        if self.backoff_seconds == 0.0 or retry_round < 1:
            return 0.0
        return self.backoff_seconds * (2.0 ** (retry_round - 1))

    @classmethod
    def strict(cls) -> "FaultTolerance":
        """No retries, no degradation, full quorum — fail on first error."""
        return cls(max_retries=0, degrade=False, min_quorum=1.0)

    def as_dict(self) -> dict:
        """JSON-able form for state persistence."""
        return {
            "member_timeout": self.member_timeout,
            "max_retries": self.max_retries,
            "backoff_seconds": self.backoff_seconds,
            "degrade": self.degrade,
            "min_quorum": self.min_quorum,
        }

    @classmethod
    def from_dict(cls, payload: dict | None) -> "FaultTolerance":
        """Inverse of :meth:`as_dict` (``None`` → defaults, for old states)."""
        if payload is None:
            return cls()
        return cls(**payload)
