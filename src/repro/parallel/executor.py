"""Execution backends for the embarrassingly-parallel ensemble stage.

EnsemFDet's selling point (paper §IV-C, Table III) is that the ``N`` FDET
runs over sampled subgraphs are independent, so they parallelise perfectly.
This module gives the ensemble one call — :func:`parallel_map` — with three
interchangeable backends:

* ``serial``  — plain loop; reference semantics, easiest to debug.
* ``thread``  — ``ThreadPoolExecutor``; cheap, but the peeling loop is pure
  Python so the GIL caps speedup. Kept for IO-bound maps and ablations.
* ``process`` — ``ProcessPoolExecutor`` (fork context where available);
  real multi-core speedup, requires picklable functions/arguments.

All three preserve input order and propagate the first worker exception.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..errors import ReproError

__all__ = ["ExecutorMode", "parallel_map", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


class ExecutorMode:
    """Names of the available execution backends."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"
    ALL = (SERIAL, THREAD, PROCESS)


def default_workers(n_items: int | None = None) -> int:
    """Worker count: CPU count, capped by the number of items (if known)."""
    workers = os.cpu_count() or 1
    if n_items is not None:
        workers = max(1, min(workers, n_items))
    return workers


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
) -> list[R]:
    """Apply ``func`` to every item, preserving order.

    Parameters
    ----------
    func:
        The per-item work. Must be picklable (module-level) for
        ``mode="process"``.
    items:
        Work items; consumed eagerly.
    mode:
        One of :class:`ExecutorMode`.
    n_workers:
        Pool size; defaults to :func:`default_workers`.
    """
    work = list(items)
    if mode not in ExecutorMode.ALL:
        raise ReproError(f"unknown executor mode {mode!r}; expected one of {ExecutorMode.ALL}")
    if not work:
        return []
    if mode == ExecutorMode.SERIAL or len(work) == 1:
        return [func(item) for item in work]

    workers = n_workers or default_workers(len(work))
    if workers <= 1:
        return [func(item) for item in work]

    if mode == ExecutorMode.THREAD:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(func, work))

    # process mode: prefer fork (cheap, shares the parent's loaded modules);
    # fall back to the platform default where fork is unavailable.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(func, work))
