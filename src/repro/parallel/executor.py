"""Execution backends for the embarrassingly-parallel ensemble stage.

EnsemFDet's selling point (paper §IV-C, Table III) is that the ``N`` FDET
runs over sampled subgraphs are independent, so they parallelise perfectly.
This module gives the ensemble one call — :func:`parallel_map` — with three
interchangeable backends:

* ``serial``  — plain loop; reference semantics, easiest to debug.
* ``thread``  — ``ThreadPoolExecutor``; cheap, useful for IO-bound maps and
  ablations (the peeling hot loop now runs in a GIL-releasing native kernel
  under the ``fast`` engine, but per-sample numpy prep still contends).
* ``process`` — ``ProcessPoolExecutor`` (fork context where available);
  real multi-core speedup, requires picklable functions/arguments.

For repeated fan-outs, :class:`ReusablePool` keeps one pool of workers
alive across ``parallel_map`` calls so each ensemble fit stops paying
process start-up costs.

Both the one-shot process path and :class:`ReusablePool` accept an
``initializer`` run once per worker process at spawn — the shared-memory
fan-out uses it to attach workers to the parent graph's segment exactly
once instead of per task (see :func:`repro.graph.attached_store`).

All backends preserve input order and propagate the first worker exception.
Worker counts honour the ``REPRO_WORKERS`` environment variable so CI and
benchmarks can pin parallelism deterministically.

Failure semantics: pool-infrastructure failures (a worker SIGKILLed mid
chunk, an unpicklable task) surface as typed
:class:`~repro.errors.ParallelError` subclasses carrying the indices of
the work items that did not complete, never as a raw
``BrokenProcessPool``/``PicklingError`` traceback; task-level exceptions
(the function itself raising) still propagate unchanged. After a crash a
:class:`ReusablePool` respawns its executor automatically, so the next
``map`` runs on fresh workers.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
from concurrent.futures import BrokenExecutor, Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..errors import ParallelError, ReproError, WorkerCrashError

__all__ = [
    "ExecutorMode",
    "ReusablePool",
    "parallel_map",
    "default_workers",
    "kill_executor_workers",
]

T = TypeVar("T")
R = TypeVar("R")


class ExecutorMode:
    """Names of the available execution backends."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"
    ALL = (SERIAL, THREAD, PROCESS)


def default_workers(n_items: int | None = None) -> int:
    """Worker count: CPU count, capped by the number of items (if known).

    Set ``REPRO_WORKERS`` to pin the count explicitly (CI, benchmarks);
    values below 1 clamp to 1, non-integers raise :class:`ReproError`.
    """
    pinned = os.environ.get("REPRO_WORKERS")
    if pinned is not None and pinned.strip():
        try:
            workers = int(pinned)
        except ValueError:
            raise ReproError(f"REPRO_WORKERS must be an integer, got {pinned!r}") from None
        workers = max(1, workers)
    else:
        workers = os.cpu_count() or 1
    if n_items is not None:
        workers = max(1, min(workers, n_items))
    return workers


def _process_context():
    # prefer fork (cheap, shares the parent's loaded modules); fall back to
    # the platform default where fork is unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def kill_executor_workers(executor: Executor) -> int:
    """SIGKILL every live worker of a ``ProcessPoolExecutor``.

    The only way to reclaim a *hung* worker — ``shutdown()`` joins it (and
    hangs with it) and futures of running tasks cannot be cancelled.
    Returns the number of processes signalled; a no-op for thread pools
    (threads cannot be killed, but injected hangs are bounded sleeps).
    """
    processes = getattr(executor, "_processes", None)
    if not processes:
        return 0
    killed = 0
    for process in list(processes.values()):
        if process.is_alive():
            try:
                os.kill(process.pid, signal.SIGKILL)
                killed += 1
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass
    return killed


def _incomplete_indices(futures: Sequence[Future]) -> tuple[int, ...]:
    """Indices whose future holds no usable result (pool died under them)."""
    out = []
    for index, future in enumerate(futures):
        if not future.done() or future.cancelled() or future.exception() is not None:
            out.append(index)
    return tuple(out)


class ReusablePool:
    """A worker pool that survives across ``parallel_map`` calls.

    ``parallel_map`` tears its pool down after every call; that is correct
    but wasteful when the ensemble fits many times (threshold sweeps, the
    figure experiments, long-running services). A ``ReusablePool`` owns one
    ``ProcessPoolExecutor``/``ThreadPoolExecutor`` created lazily on first
    use and keeps it warm until :meth:`close`.

    >>> with ReusablePool(ExecutorMode.THREAD, n_workers=2) as pool:
    ...     pool.map(abs, [-1, -2])
    [1, 2]

    ``initializer``/``initargs`` run once in every worker when the pool
    spawns (both backends). The pool must be told *at construction*, since
    workers outlive any single ``map`` call.
    """

    def __init__(
        self,
        mode: str = ExecutorMode.PROCESS,
        n_workers: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        if mode not in (ExecutorMode.THREAD, ExecutorMode.PROCESS):
            raise ReproError(
                f"ReusablePool mode must be 'thread' or 'process', got {mode!r}"
            )
        self.mode = mode
        self.n_workers = n_workers or default_workers()
        self.initializer = initializer
        self.initargs = initargs
        self._executor: Executor | None = None
        #: how many times the executor was respawned after a worker crash
        self.restarts = 0

    def _ensure(self) -> Executor:
        if self._executor is None:
            if self.mode == ExecutorMode.THREAD:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=self.initializer,
                    initargs=self.initargs,
                )
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=_process_context(),
                    initializer=self.initializer,
                    initargs=self.initargs,
                )
        return self._executor

    def submit(self, func: Callable[[T], R], item: T) -> Future:
        """Submit one task to the (lazily created) pool."""
        return self._ensure().submit(func, item)

    def map(self, func: Callable[[T], R], items: Sequence[T] | Iterable[T]) -> list[R]:
        """Apply ``func`` to every item on the pool, preserving order.

        A dead worker (SIGKILL/OOM/segfault) raises
        :class:`~repro.errors.WorkerCrashError` listing the item indices
        that did not complete, and the pool respawns its executor so the
        next call runs on fresh workers. Unpicklable tasks raise
        :class:`~repro.errors.ParallelError` with a remediation hint.
        Exceptions raised *by* ``func`` propagate unchanged.
        """
        from ..faults import fault_point

        work = list(items)
        if not work:
            return []
        fault_point("pool.map", n_items=len(work))
        futures: list[Future] = []
        try:
            futures = [self._ensure().submit(func, item) for item in work]
            return [future.result() for future in futures]
        except BrokenExecutor as exc:
            # items with no submitted future never started either
            incomplete = _incomplete_indices(futures) + tuple(
                range(len(futures), len(work))
            )
            self.respawn()
            raise WorkerCrashError(
                f"a {self.mode} pool worker died before finishing its chunk "
                f"(items {list(incomplete)} incomplete); the pool has been "
                "respawned — retry the failed items, or run with "
                "executor='serial' to isolate the failing member",
                member_indices=incomplete,
            ) from exc
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # CPython reports unpicklable tasks inconsistently: PicklingError,
            # or AttributeError/TypeError saying "Can('t| not) pickle ..." —
            # anything else is a genuine task exception and propagates as-is
            if not isinstance(exc, pickle.PicklingError) and "pickle" not in str(exc).lower():
                raise
            raise ParallelError(
                f"chunk submission to the {self.mode} pool failed to pickle: "
                f"{exc}; task functions and their arguments must be "
                "module-level picklable for the process backend (use "
                "executor='thread' or 'serial' for closures)",
            ) from exc

    def kill_workers(self) -> int:
        """SIGKILL live process-backend workers (reclaims hung chunks)."""
        if self._executor is None:
            return 0
        return kill_executor_workers(self._executor)

    def respawn(self) -> None:
        """Discard the current executor; the next use spawns fresh workers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.restarts += 1

    def close(self) -> None:
        """Shut the workers down; the pool may not be used afterwards."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ReusablePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    mode: str = ExecutorMode.SERIAL,
    n_workers: int | None = None,
    pool: ReusablePool | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> list[R]:
    """Apply ``func`` to every item, preserving order.

    Parameters
    ----------
    func:
        The per-item work. Must be picklable (module-level) for
        ``mode="process"``.
    items:
        Work items; consumed eagerly.
    mode:
        One of :class:`ExecutorMode`; ignored when ``pool`` is given.
    n_workers:
        Pool size; defaults to :func:`default_workers`.
    pool:
        An existing :class:`ReusablePool` to run on (kept alive afterwards)
        instead of spinning up and tearing down a fresh pool.
    initializer, initargs:
        Run once per spawned worker when this call creates its own pool
        (ignored for serial fallbacks and for an externally-owned ``pool``,
        whose workers already exist).
    """
    work = list(items)
    if mode not in ExecutorMode.ALL:
        raise ReproError(f"unknown executor mode {mode!r}; expected one of {ExecutorMode.ALL}")
    if not work:
        return []
    if pool is not None:
        return pool.map(func, work)
    if mode == ExecutorMode.SERIAL or len(work) == 1:
        return [func(item) for item in work]

    workers = n_workers or default_workers(len(work))
    if workers <= 1:
        return [func(item) for item in work]

    if mode == ExecutorMode.THREAD:
        with ThreadPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as executor:
            return list(executor.map(func, work))

    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_process_context(),
        initializer=initializer,
        initargs=initargs,
    ) as executor:
        return list(executor.map(func, work))
