"""Wall-clock timing (and peak-memory) helpers for the Table-III style
speedup measurements and the memory-aware benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

__all__ = ["Timer", "Timing", "time_callable", "peak_rss_bytes"]


def peak_rss_bytes(include_children: bool = False) -> int:
    """High-water resident-set size of this process, in bytes.

    Reads ``getrusage`` (``ru_maxrss`` is KiB on Linux, bytes on macOS);
    returns 0 on platforms without :mod:`resource`. The counter is
    monotonic for the process lifetime — benchmarks that want a
    per-scenario peak run each scenario in a fresh subprocess.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    import sys

    usage = resource.getrusage(
        resource.RUSAGE_CHILDREN if include_children else resource.RUSAGE_SELF
    )
    scale = 1 if sys.platform == "darwin" else 1024
    return int(usage.ru_maxrss) * scale

R = TypeVar("R")


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


@dataclass(frozen=True)
class Timing:
    """Result + duration of one timed call."""

    value: Any
    seconds: float


def time_callable(func: Callable[..., R], *args: Any, **kwargs: Any) -> Timing:
    """Run ``func(*args, **kwargs)`` and capture its wall-clock duration."""
    with Timer() as timer:
        value = func(*args, **kwargs)
    return Timing(value=value, seconds=timer.elapsed)
