"""Parallel-execution substrate for the ensemble stage."""

from .executor import (
    ExecutorMode,
    ReusablePool,
    default_workers,
    kill_executor_workers,
    parallel_map,
)
from .timing import Timer, Timing, peak_rss_bytes, time_callable
from .tolerance import FaultTolerance

__all__ = [
    "ExecutorMode",
    "FaultTolerance",
    "ReusablePool",
    "parallel_map",
    "default_workers",
    "kill_executor_workers",
    "Timer",
    "Timing",
    "time_callable",
    "peak_rss_bytes",
]
