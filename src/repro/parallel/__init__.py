"""Parallel-execution substrate for the ensemble stage."""

from .executor import ExecutorMode, ReusablePool, default_workers, parallel_map
from .timing import Timer, Timing, peak_rss_bytes, time_callable

__all__ = [
    "ExecutorMode",
    "ReusablePool",
    "parallel_map",
    "default_workers",
    "Timer",
    "Timing",
    "time_callable",
    "peak_rss_bytes",
]
