"""EnsemFDet reproduction: ensemble fraud detection on bipartite graphs.

Reproduction of Ren et al., *"EnsemFDet: An Ensemble Approach to Fraud
Detection based on Bipartite Graph"* (ICDE 2021). See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import EnsemFDet, EnsemFDetConfig, RandomEdgeSampler, toy_dataset

    dataset = toy_dataset()
    config = EnsemFDetConfig(sampler=RandomEdgeSampler(0.2), n_samples=20, seed=0)
    result = EnsemFDet(config).fit(dataset.graph)
    flagged = result.detect(threshold=10)
    print(f"flagged {flagged.n_users} suspicious users")
"""

from .baselines import DegreeDetector, FBoxDetector, FraudarDetector, SpokenDetector
from .detectors import (
    DETECTOR_NAMES,
    Detection,
    Detector,
    DetectorContext,
    available_detectors,
    canonical_detector_spec,
    make_detector,
)
from .datasets import (
    Blacklist,
    Dataset,
    FraudBlockSpec,
    chung_lu_bipartite,
    inject_fraud_blocks,
    make_all_jd_datasets,
    make_jd_dataset,
    toy_dataset,
)
from .ensemble import (
    DetectionResult,
    EnsemFDet,
    EnsemFDetConfig,
    EnsemFDetResult,
    IncrementalEnsemFDet,
    UpdateReport,
    VoteTable,
    majority_vote,
)
from .errors import ReproError
from .fdet import (
    Fdet,
    FdetConfig,
    FdetResult,
    FixedKRule,
    LogWeightedDensity,
    SecondDifferenceRule,
)
from .graph import BipartiteGraph, GraphAccumulator, GraphBuilder
from .metrics import (
    Confusion,
    CurvePoint,
    auc_pr,
    best_f1,
    confusion_from_sets,
    detection_confusion,
    detection_curve,
    ensemble_threshold_curve,
    evaluate_detection,
    fraudar_block_curve,
    max_detected_gap,
    score_curve,
)
from .sampling import (
    OneSideNodeSampler,
    RandomEdgeSampler,
    Sampler,
    StableEdgeSampler,
    TwoSideNodeSampler,
    make_sampler,
)
from .scenarios import (
    Scenario,
    ScenarioGridConfig,
    ScenarioResult,
    make_scenario,
    run_grid,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # graph
    "BipartiteGraph",
    "GraphBuilder",
    "GraphAccumulator",
    # sampling
    "Sampler",
    "RandomEdgeSampler",
    "StableEdgeSampler",
    "OneSideNodeSampler",
    "TwoSideNodeSampler",
    "make_sampler",
    # fdet
    "Fdet",
    "FdetConfig",
    "FdetResult",
    "LogWeightedDensity",
    "SecondDifferenceRule",
    "FixedKRule",
    # ensemble
    "EnsemFDet",
    "EnsemFDetConfig",
    "EnsemFDetResult",
    "IncrementalEnsemFDet",
    "UpdateReport",
    "DetectionResult",
    "VoteTable",
    "majority_vote",
    # baselines
    "FraudarDetector",
    "SpokenDetector",
    "FBoxDetector",
    "DegreeDetector",
    # detector layer
    "Detection",
    "Detector",
    "DetectorContext",
    "DETECTOR_NAMES",
    "available_detectors",
    "canonical_detector_spec",
    "make_detector",
    # datasets
    "Dataset",
    "Blacklist",
    "FraudBlockSpec",
    "inject_fraud_blocks",
    "chung_lu_bipartite",
    "make_jd_dataset",
    "make_all_jd_datasets",
    "toy_dataset",
    # metrics
    "Confusion",
    "confusion_from_sets",
    "CurvePoint",
    "detection_confusion",
    "detection_curve",
    "evaluate_detection",
    "ensemble_threshold_curve",
    "fraudar_block_curve",
    "score_curve",
    "auc_pr",
    "best_f1",
    "max_detected_gap",
    # scenarios
    "Scenario",
    "ScenarioResult",
    "ScenarioGridConfig",
    "make_scenario",
    "run_grid",
]
