"""``ensemfdet`` command-line interface.

Subcommands::

    ensemfdet detect <edges.tsv> [--ratio S] [--samples N] [--threshold T]
    ensemfdet dataset <outdir> [--index I] [--scale X] [--seed K]
    ensemfdet stats <edges.tsv>
    ensemfdet experiments [ids...] [--scale ...] [--outdir ...]
"""

from __future__ import annotations

import argparse
import sys

from .datasets import make_jd_dataset, save_dataset
from .ensemble import EnsemFDet, EnsemFDetConfig
from .experiments.runner import main as experiments_main
from .fdet import FdetConfig, PeelEngine
from .graph import describe, load_edge_list
from .sampling import RandomEdgeSampler

__all__ = ["main"]


def _cmd_detect(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    config = EnsemFDetConfig(
        sampler=RandomEdgeSampler(args.ratio),
        n_samples=args.samples,
        fdet=FdetConfig(max_blocks=args.max_blocks, engine=args.engine),
        executor=args.executor,
        seed=args.seed,
    )
    result = EnsemFDet(config).fit(graph)
    threshold = args.threshold or max(1, args.samples // 4)
    detection = result.detect(threshold)
    print(f"# EnsemFDet: S={args.ratio} N={args.samples} T={threshold}")
    print(f"# detected {detection.n_users} users, {detection.n_merchants} merchants")
    for label in detection.user_labels.tolist():
        print(f"user\t{label}")
    for label in detection.merchant_labels.tolist():
        print(f"merchant\t{label}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    dataset = make_jd_dataset(args.index, scale=args.scale, seed=args.seed)
    save_dataset(dataset, args.outdir)
    print(
        f"wrote {dataset.name} to {args.outdir}: "
        f"{dataset.graph.n_users} users, {dataset.graph.n_merchants} merchants, "
        f"{dataset.graph.n_edges} edges, {dataset.n_blacklisted} blacklisted"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    for key, value in describe(graph).as_row().items():
        print(f"{key}\t{value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also installed as the ``ensemfdet`` script)."""
    parser = argparse.ArgumentParser(prog="ensemfdet", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run EnsemFDet on an edge-list TSV")
    detect.add_argument("edges")
    detect.add_argument("--ratio", type=float, default=0.2, help="sample ratio S")
    detect.add_argument("--samples", type=int, default=40, help="ensemble size N")
    detect.add_argument("--threshold", type=int, default=None, help="voting threshold T")
    detect.add_argument("--max-blocks", type=int, default=15)
    detect.add_argument(
        "--engine",
        choices=PeelEngine.ALL,
        default=PeelEngine.DEFAULT,
        help="peeling backend: 'fast' (vectorised + native core) or 'reference'",
    )
    detect.add_argument("--executor", choices=("serial", "thread", "process"), default="process")
    detect.add_argument("--seed", type=int, default=0)
    detect.set_defaults(func=_cmd_detect)

    dataset = sub.add_parser("dataset", help="generate and save a JD-like dataset")
    dataset.add_argument("outdir")
    dataset.add_argument("--index", type=int, choices=(1, 2, 3), default=1)
    dataset.add_argument("--scale", type=float, default=0.3)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.set_defaults(func=_cmd_dataset)

    stats = sub.add_parser("stats", help="print statistics of an edge-list TSV")
    stats.add_argument("edges")
    stats.set_defaults(func=_cmd_stats)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures", add_help=False
    )
    experiments.add_argument("rest", nargs=argparse.REMAINDER)
    experiments.set_defaults(func=lambda a: experiments_main(a.rest))

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
